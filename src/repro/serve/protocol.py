"""The advisory wire format: queries in, advisories out.

A :class:`ShapeQuery` asks one configuration-time question — the kind
the paper argues should be answered *before* training starts:

- ``evaluate`` — full modeled performance of one (batched) GEMM shape
  (latency, TFLOP/s, selected tile, compute/memory bound, waves).
- ``latency`` / ``tflops`` — the single-number projections of the same.
- ``kernel_params`` — the tuned kernel parameters for one GEMM: best
  (tile, wave) from the loaded per-(GPU, dtype) tables
  (:mod:`repro.kernels`), analytical fallback on a table miss.
- ``lint`` — the co-design shape linter's verdict for a transformer
  config (preset name or inline JSON object), including the quantified
  nearest-compliant fix-its.

Queries are frozen and hashable; :meth:`ShapeQuery.batch_key` is the
coalescing identity (two requests with the same batch key are answered
by one engine row) and deliberately excludes the request id, so the
dispatcher dedups identical shapes across concurrent callers.

An :class:`Advisory` is the typed answer: a status (``ok`` /
``rejected`` / ``failed``), the payload dict for JSON output, the
error type name when not ok (matching the :class:`~repro.errors.
ServeError` family), and serving metadata (source, shard, queue wait,
batch size) so load tests can assert on the serving path itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError, ShapeError

__all__ = [
    "KERNEL_KINDS",
    "QUERY_KINDS",
    "SHAPE_KINDS",
    "Advisory",
    "ShapeQuery",
]

#: Kinds answered through the batched engine path.
SHAPE_KINDS = ("evaluate", "latency", "tflops")

#: Kinds answered from the tuned kernel-parameter tables (GEMM-dim
#: queries like the shape kinds, but resolved per-query through the
#: :class:`~repro.kernels.registry.KernelParamResolver`, not coalesced
#: into engine batches).
KERNEL_KINDS = ("kernel_params",)

#: Every kind the service answers.
QUERY_KINDS = SHAPE_KINDS + KERNEL_KINDS + ("lint",)


@dataclass(frozen=True)
class ShapeQuery:
    """One advisory request.

    Shape kinds use ``m``/``n``/``k``/``batch`` (GEMM dims); ``lint``
    uses ``model`` — a preset name or a frozen tuple of config items
    (see :meth:`lint_config`).  ``gpu`` and ``dtype`` select the target
    hardware for every kind.
    """

    kind: str = "evaluate"
    m: int = 0
    n: int = 0
    k: int = 0
    batch: int = 1
    gpu: str = "A100"
    dtype: str = "fp16"
    model: Optional[str] = None
    config_items: Tuple[Tuple[str, Any], ...] = ()
    pipeline_stages: int = 1
    #: Load-shedding class: 0 = best-effort (shed first under sustained
    #: backpressure), larger = more important.  Never part of the batch
    #: or cache key — priority changes *whether* a query is admitted,
    #: not what the answer is.
    priority: int = 1

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ConfigError(
                f"unknown query kind {self.kind!r}; "
                f"expected one of {', '.join(QUERY_KINDS)}"
            )
        if self.is_shape_query or self.is_kernel_query:
            if min(self.m, self.n, self.k, self.batch) <= 0:
                raise ShapeError(
                    f"GEMM dims must be positive: "
                    f"{(self.batch, self.m, self.n, self.k)}"
                )
        else:
            if self.model is None and not self.config_items:
                raise ConfigError(
                    "lint query needs 'model' (preset name) or 'config' "
                    "(inline config object)"
                )
        if self.pipeline_stages < 1:
            raise ConfigError(
                f"pipeline_stages must be >= 1, got {self.pipeline_stages}"
            )
        if not 0 <= self.priority <= 9:
            raise ConfigError(
                f"priority must be in [0, 9], got {self.priority}"
            )

    @property
    def is_shape_query(self) -> bool:
        return self.kind in SHAPE_KINDS

    @property
    def is_kernel_query(self) -> bool:
        return self.kind in KERNEL_KINDS

    def shape_tuple(self) -> Tuple[int, int, int, int]:
        """The engine row this query evaluates: ``(batch, m, n, k)``."""
        return (self.batch, self.m, self.n, self.k)

    def batch_key(self) -> Tuple[Any, ...]:
        """Coalescing identity: queries sharing it share one engine row.

        The ``kind`` is *not* part of the key — ``latency`` and
        ``tflops`` for the same shape read different columns of the
        same evaluated row.
        """
        return (self.shape_tuple(), self.gpu, self.dtype)

    def cache_key(self) -> Tuple[Any, ...]:
        """Response-cache identity (kind-specific, unlike the batch key)."""
        if self.is_shape_query:
            return ("shape", self.kind) + self.batch_key()
        if self.is_kernel_query:
            return ("kernel",) + self.batch_key()
        return (
            "lint",
            self.model,
            self.config_items,
            self.gpu,
            self.dtype,
            self.pipeline_stages,
        )

    def lint_config(self) -> Dict[str, Any]:
        """The inline lint config as a plain dict (empty for presets)."""
        return dict(self.config_items)

    # -- JSON ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "gpu": self.gpu, "dtype": self.dtype}
        if self.is_shape_query or self.is_kernel_query:
            out.update(m=self.m, n=self.n, k=self.k, batch=self.batch)
        else:
            if self.model is not None:
                out["model"] = self.model
            if self.config_items:
                out["config"] = self.lint_config()
            out["pipeline_stages"] = self.pipeline_stages
        if self.priority != 1:
            out["priority"] = self.priority
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShapeQuery":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"query must be an object, got {type(data).__name__}"
            )
        kind = data.get("kind", "evaluate")
        try:
            common = {
                "gpu": str(data.get("gpu", "A100")),
                "dtype": str(data.get("dtype", "fp16")),
                "priority": int(data.get("priority", 1)),
            }
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad query priority: {exc}") from exc
        if kind in SHAPE_KINDS or kind in KERNEL_KINDS:
            try:
                return cls(
                    kind=kind,
                    m=int(data.get("m", 0)),
                    n=int(data.get("n", 0)),
                    k=int(data.get("k", 0)),
                    batch=int(data.get("batch", 1)),
                    **common,
                )
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"bad shape query: {exc}") from exc
        config = data.get("config")
        items: Tuple[Tuple[str, Any], ...] = ()
        if config is not None:
            if not isinstance(config, Mapping):
                raise ConfigError("'config' must be an object")
            items = tuple(sorted(config.items()))
        return cls(
            kind=str(kind),
            model=data.get("model"),
            config_items=items,
            pipeline_stages=int(data.get("pipeline_stages", 1)),
            **common,
        )


@dataclass
class Advisory:
    """The service's answer to one query.

    ``status`` is ``"ok"`` (payload valid), ``"rejected"`` (admission
    control, load shedding, or a deadline dropped it; ``error_type``
    names the :class:`~repro.errors.ServeError` subclass) or
    ``"failed"`` (the engine evaluation behind it exhausted retries).
    ``source`` is ``"engine"`` for a batch-dispatched answer,
    ``"cache"`` for a TTL-cache hit, and ``"degraded"`` when the
    cluster front-end answered from its in-process fallback engine
    because every worker was down.  ``queue_wait_s`` / ``batch_size``
    / ``shard`` describe the serving path for observability
    assertions.  ``retryable`` is set on non-ok advisories crossing
    the network: ``True`` for transient conditions (backpressure,
    shedding, worker churn) where a client should back off and retry,
    ``False`` for deterministic failures (bad query, model error)
    where retrying can never help.
    """

    query: ShapeQuery
    status: str = "ok"
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    source: str = "engine"
    shard: int = 0
    queue_wait_s: float = 0.0
    batch_size: int = 0
    retryable: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "query": self.query.to_dict(),
            "status": self.status,
            "source": self.source,
            "shard": self.shard,
            "queue_wait_s": self.queue_wait_s,
            "batch_size": self.batch_size,
        }
        if self.ok:
            out["payload"] = self.payload
        else:
            out["error"] = self.error
            out["error_type"] = self.error_type
            if self.retryable is not None:
                out["retryable"] = self.retryable
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Advisory":
        """Decode one advisory from its wire dict (inverse of to_dict)."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"advisory must be an object, got {type(data).__name__}"
            )
        query_raw = data.get("query")
        if query_raw is None:
            raise ConfigError("advisory missing 'query'")
        try:
            return cls(
                query=ShapeQuery.from_dict(query_raw),
                status=str(data.get("status", "ok")),
                payload=dict(data.get("payload") or {}),
                error=data.get("error"),
                error_type=data.get("error_type"),
                source=str(data.get("source", "engine")),
                shard=int(data.get("shard", 0)),
                queue_wait_s=float(data.get("queue_wait_s", 0.0)),
                batch_size=int(data.get("batch_size", 0)),
                retryable=data.get("retryable"),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad advisory object: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def describe(self) -> str:
        if self.ok:
            return (
                f"{self.query.kind} {self.query.shape_tuple()} on "
                f"{self.query.gpu}: ok ({self.source}, batch {self.batch_size})"
            )
        return (
            f"{self.query.kind} on {self.query.gpu}: {self.status} "
            f"({self.error_type}: {self.error})"
        )
