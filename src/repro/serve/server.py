"""The in-process async shape-advisory server.

:class:`AdvisoryServer` turns the PR-1 engine, PR-2 linter, PR-3
resilience policies, and PR-4 observability into a serving path: the
queryable configuration-time advisor the paper argues for (the niche
tritonBLAS fills for GEMM kernel parameters).  Requests are submitted
asynchronously (:meth:`~AdvisoryServer.submit` returns a
``concurrent.futures.Future``) and answered by **dynamic batching**:

1. **Admission control** — each worker shard owns a bounded
   :class:`~repro.serve.batcher.RequestQueue`; a full queue rejects
   with :class:`~repro.errors.QueueFullError` (typed backpressure, so
   overload is visible instead of buffered into latency).
2. **Sharding** — requests are partitioned across ``workers`` shards
   by their *canonical* GPU spec (stable SHA-256 of the spec name), so
   each shard's engine traffic stays cache-local per GPU.
3. **Coalescing** — the shard dispatcher drains up to ``max_batch``
   requests (lingering ``linger_s`` for stragglers), dedups identical
   shapes, and merges distinct ones into single vectorized
   :meth:`~repro.engine.core.ShapeEngine.evaluate` calls
   (:func:`~repro.serve.batcher.plan_batch`).  Row independence of the
   vectorized model makes merged answers bit-identical to one-off
   evaluations — the load wall asserts it.
4. **Resilience** — every batched engine call runs under
   :func:`~repro.resilience.execute.run_one` with the configured
   :class:`~repro.resilience.execute.RetryPolicy` and per-attempt
   watchdog deadline; requests whose own deadline lapsed in the queue
   are dropped with :class:`~repro.errors.DeadlineExceededError`
   before wasting a batch slot.
5. **TTL response cache** — answers are cached per query
   ``cache_key`` (folding in the engine model version) for
   ``cache_ttl_s`` seconds, so repeat advisory traffic short-circuits
   the queue entirely.

Every dispatch emits a ``serve.batch`` span and the registry counters/
histograms (queue wait, batch size, coalesce counts, rejections), so a
traced load run's ``repro report`` shows the serving phases alongside
engine and task phases.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.core import ShapeEngine, default_engine
from repro.engine import cache as _engine_cache
from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServeError,
    ServerClosedError,
)
from repro.observability import event as _event
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.resilience.execute import RetryPolicy, run_one
from repro.serve.batcher import PendingRequest, RequestQueue, plan_batch
from repro.serve.config import ServeConfig
from repro.serve.dispatch import RETRYABLE_ERRORS, is_retryable
from repro.serve.protocol import Advisory, ShapeQuery

__all__ = ["AdvisoryServer", "ServerStats", "shard_for"]

#: Batch-size histogram edges (requests per dispatch).
_BATCH_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def shard_for(gpu_name: str, workers: int) -> int:
    """Stable shard index for a canonical GPU spec name.

    SHA-256 based so the partition is identical across processes and
    runs (Python's ``hash`` is salted per process, which would make
    shard assignment — and therefore batch composition — irreproducible).
    """
    digest = hashlib.sha256(gpu_name.encode()).digest()
    return int.from_bytes(digest[:4], "big") % workers


class _TTLCache:
    """Thread-safe response cache with per-entry expiry and a size cap.

    Entries are ``(expires_at monotonic seconds, value)``; reads past
    expiry miss and evict.  Size-capped FIFO on insertion order —
    advisory payloads are small, so plain boundedness is enough.
    """

    def __init__(self, maxsize: int, ttl_s: float) -> None:
        self.maxsize = maxsize
        self.ttl_s = ttl_s
        self._data: "OrderedDict[Any, Tuple[float, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Any) -> Optional[Any]:
        if self.ttl_s <= 0:
            return None
        now = time.monotonic()
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                return None
            expires_at, value = entry
            if now >= expires_at:
                del self._data[key]
                return None
            return value

    def put(self, key: Any, value: Any) -> None:
        if self.ttl_s <= 0:
            return
        with self._lock:
            self._data[key] = (time.monotonic() + self.ttl_s, value)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


@dataclass
class ServerStats:
    """Monotonic serving counters, snapshotted by :meth:`AdvisoryServer.stats`.

    ``coalesce_ratio`` is shape requests dispatched through batches per
    vectorized engine call — the dynamic-batching win; > 1 means the
    batcher is folding concurrent traffic into fewer engine
    evaluations than requests.
    """

    requests: int = 0
    cache_hits: int = 0
    dispatched: int = 0
    shape_dispatched: int = 0
    served: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_deadline: int = 0
    rejected_closed: int = 0
    engine_calls: int = 0
    engine_rows: int = 0
    coalesced_duplicates: int = 0
    batches: int = 0
    max_batch_size: int = 0
    lint_served: int = 0
    kernel_served: int = 0

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_deadline
            + self.rejected_closed
        )

    @property
    def coalesce_ratio(self) -> float:
        if not self.engine_calls:
            return 0.0
        return self.shape_dispatched / self.engine_calls

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.dispatched / self.batches

    def to_dict(self) -> Dict[str, Any]:
        out = {
            k: getattr(self, k)
            for k in (
                "requests", "cache_hits", "dispatched", "shape_dispatched",
                "served", "failed", "rejected_queue_full", "rejected_deadline",
                "rejected_closed", "engine_calls", "engine_rows",
                "coalesced_duplicates", "batches", "max_batch_size",
                "lint_served", "kernel_served",
            )
        }
        out["coalesce_ratio"] = round(self.coalesce_ratio, 3)
        out["mean_batch_size"] = round(self.mean_batch_size, 3)
        return out

    def describe(self) -> str:
        return (
            f"{self.requests} requests: {self.served} served "
            f"({self.cache_hits} cache hits), {self.failed} failed, "
            f"{self.rejected} rejected; {self.engine_calls} engine calls "
            f"over {self.batches} batches "
            f"(coalesce ratio {self.coalesce_ratio:.2f}, "
            f"{self.coalesced_duplicates} duplicate shapes folded)"
        )


class AdvisoryServer:
    """Dynamically-batching, GPU-sharded shape-advisory service.

    Parameters
    ----------
    config:
        Serving knobs; defaults to ``ServeConfig()``.
    engine:
        The shape engine answering batched queries; defaults to the
        process-wide :func:`~repro.engine.core.default_engine`.

    Usable as a context manager (``with AdvisoryServer() as server:``).
    Requests may be submitted before :meth:`start` — they queue (and
    admission control applies), which tests use to build deterministic
    backlogs.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        engine: Optional[ShapeEngine] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._engine = engine if engine is not None else default_engine()
        self._queues = [
            RequestQueue(self.config.max_queue)
            for _ in range(self.config.workers)
        ]
        self._threads: List[threading.Thread] = []
        self._cache = _TTLCache(self.config.cache_entries, self.config.cache_ttl_s)
        self._stats = ServerStats()
        self._stats_lock = threading.Lock()
        self._batch_seq = 0
        self._closed = False
        self._started = False
        # kernel_params resolver: built on first use (tables come from
        # REPRO_KERNEL_TABLES); a load failure is remembered and served
        # as a typed failed advisory instead of crash-looping a worker.
        self._kernel_lock = threading.Lock()
        self._kernel_resolver: Optional[Any] = None
        self._kernel_error: Optional[ReproError] = None
        self._policy = RetryPolicy(
            retries=self.config.retries,
            backoff_s=self.config.retry_backoff_s,
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "AdvisoryServer":
        """Spawn the worker shards (idempotent)."""
        if self._closed:
            raise ServerClosedError("cannot start a closed server")
        if self._started:
            return self
        self._started = True
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker, args=(i,), name=f"repro-serve-{i}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def close(self) -> None:
        """Stop accepting requests, drain the queues, join the workers.

        Requests still queued when the workers exit (submitted while
        close raced, or never started) are rejected with
        :class:`~repro.errors.ServerClosedError` rather than dropped.
        """
        if self._closed:
            return
        self._closed = True
        for queue in self._queues:
            queue.close()
        for thread in self._threads:
            thread.join()
        # Anything a never-started (or racing) server still holds.
        for queue in self._queues:
            for item in queue.take_batch(self.config.max_queue, 0.0):
                self._reject(
                    item, ServerClosedError("server closed before dispatch"),
                    counter="rejected_closed",
                )

    def __enter__(self) -> "AdvisoryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit(self, query: ShapeQuery) -> "Future[Advisory]":
        """Asynchronously submit one query; returns a future advisory.

        Raises :class:`~repro.errors.ServerClosedError` on a closed
        server and :class:`~repro.errors.QueueFullError` when the
        target shard is at its depth cap (both are also counted in the
        metrics registry).  Invalid queries (unknown GPU/dtype) resolve
        to a *failed* advisory rather than raising, so one bad request
        in a stream never kills the callers sharing the server.
        """
        if self._closed:
            self._count("rejected_closed")
            _metrics().counter("serve.rejected.closed").inc()
            raise ServerClosedError("server is closed")
        self._count("requests")
        _metrics().counter("serve.requests").inc()

        try:
            shard = self.shard_of(query)
        except ReproError as exc:
            return self._failed_future(query, exc)

        cached = self._cache.get(self._cache_key(query))
        if cached is not None:
            self._count("cache_hits")
            _metrics().counter("serve.cache_hits").inc()
            future: "Future[Advisory]" = Future()
            future.set_result(
                Advisory(
                    query=query, status="ok", payload=dict(cached),
                    source="cache", shard=shard,
                )
            )
            return future

        future = Future()
        deadline = (
            time.monotonic() + self.config.deadline_s
            if self.config.deadline_s is not None
            else None
        )
        item = PendingRequest(query=query, future=future, deadline_at_s=deadline)
        try:
            self._queues[shard].put(item)
        except QueueFullError:
            self._count("rejected_queue_full")
            _metrics().counter("serve.rejected.queue_full").inc()
            _event("serve.reject", reason="queue_full", shard=shard)
            raise
        return future

    def request(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """Submit and block for the advisory (the synchronous path)."""
        return self.submit(query).result(timeout=timeout_s)

    def shard_of(self, query: ShapeQuery) -> int:
        """The worker shard a query routes to (canonical GPU spec)."""
        from repro.gpu.specs import get_gpu

        return shard_for(get_gpu(query.gpu).name, self.config.workers)

    def stats(self) -> ServerStats:
        """A consistent snapshot of the serving counters."""
        with self._stats_lock:
            return ServerStats(**vars(self._stats))

    @property
    def closed(self) -> bool:
        return self._closed

    # -- internals ----------------------------------------------------------

    def _cache_key(self, query: ShapeQuery) -> Tuple[Any, ...]:
        return query.cache_key() + (_engine_cache.model_version(),)

    def _count(self, field_name: str, n: int = 1) -> None:
        with self._stats_lock:
            setattr(self._stats, field_name, getattr(self._stats, field_name) + n)

    def _failed_future(
        self, query: ShapeQuery, exc: BaseException
    ) -> "Future[Advisory]":
        self._count("failed")
        _metrics().counter("serve.failed").inc()
        future: "Future[Advisory]" = Future()
        future.set_result(
            Advisory(
                query=query, status="failed", error=str(exc),
                error_type=type(exc).__name__, source="validation",
                retryable=is_retryable(exc),
            )
        )
        return future

    def _resolve(self, item: PendingRequest, advisory: Advisory) -> None:
        try:
            item.future.set_result(advisory)
        except Exception:  # future cancelled by an abandoning caller
            pass

    def _reject(
        self, item: PendingRequest, exc: ServeError, counter: str
    ) -> None:
        self._count(counter)
        # "rejected_deadline" -> "serve.rejected.deadline", matching the
        # submit path's "serve.rejected.queue_full" naming.
        suffix = counter[len("rejected_"):]
        _metrics().counter(f"serve.rejected.{suffix}").inc()
        _event("serve.reject", reason=suffix)
        self._resolve(
            item,
            Advisory(
                query=item.query, status="rejected", error=str(exc),
                error_type=type(exc).__name__, retryable=is_retryable(exc),
            ),
        )

    def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            batch = queue.take_batch(self.config.max_batch, self.config.linger_s)
            if not batch:
                return  # closed and drained
            self._dispatch(shard, batch)

    def _dispatch(self, shard: int, batch: List[PendingRequest]) -> None:
        now = time.monotonic()
        live: List[PendingRequest] = []
        for item in batch:
            if item.expired(now):
                self._reject(
                    item,
                    DeadlineExceededError(
                        f"request waited past its "
                        f"{self.config.deadline_s:g}s deadline"
                    ),
                    counter="rejected_deadline",
                )
            else:
                live.append(item)
        if not live:
            return

        queue_waits = [now - item.enqueued_at_s for item in live]
        wait_hist = _metrics().histogram("serve.queue_wait_s")
        for wait in queue_waits:
            wait_hist.observe(wait)
        _metrics().histogram("serve.batch_size", edges=_BATCH_EDGES).observe(
            len(live)
        )

        calls, passthrough = plan_batch(live)
        with self._stats_lock:
            self._stats.dispatched += len(live)
            self._stats.batches += 1
            self._stats.max_batch_size = max(
                self._stats.max_batch_size, len(live)
            )
            self._batch_seq += 1
            batch_no = self._batch_seq
        _metrics().counter("serve.batches").inc()

        with _span(
            "serve.batch",
            shard=shard,
            size=len(live),
            engine_calls=len(calls),
            rows=sum(c.rows for c in calls),
            duplicates=sum(c.duplicates for c in calls),
        ):
            for call in calls:
                self._run_engine_call(shard, batch_no, call, len(live))
            for item in passthrough:
                if item.query.is_kernel_query:
                    self._run_kernel(shard, item, len(live))
                else:
                    self._run_lint(shard, item, len(live))

    def _run_engine_call(
        self, shard: int, batch_no: int, call: Any, batch_size: int
    ) -> None:
        self._count("shape_dispatched", len(call.assignments))
        self._count("engine_calls")
        self._count("engine_rows", call.rows)
        self._count("coalesced_duplicates", call.duplicates)
        _metrics().counter("serve.engine_calls").inc()
        _metrics().counter("serve.engine_rows").inc(call.rows)
        _metrics().counter("serve.coalesced_duplicates").inc(call.duplicates)

        outcome = run_one(
            lambda _tid: self._engine.evaluate(call.shapes, call.gpu, call.dtype),
            f"serve.batch.{batch_no}.{call.gpu}.{call.dtype}",
            policy=self._policy,
            timeout_s=self.config.compute_timeout_s,
        )
        now = time.monotonic()
        if outcome.ok:
            result = outcome.value
            for item, row in call.assignments:
                advisory = Advisory(
                    query=item.query,
                    status="ok",
                    payload=self._payload(item.query, result, row),
                    source="engine",
                    shard=shard,
                    queue_wait_s=now - item.enqueued_at_s,
                    batch_size=batch_size,
                )
                self._cache.put(self._cache_key(item.query), advisory.payload)
                self._count("served")
                _metrics().counter("serve.served").inc()
                self._resolve(item, advisory)
        else:
            message = (
                f"engine evaluation failed after {outcome.attempts} "
                f"attempt(s): {outcome.error_type}: {outcome.error}"
            )
            for item, _row in call.assignments:
                self._count("failed")
                _metrics().counter("serve.failed").inc()
                self._resolve(
                    item,
                    Advisory(
                        query=item.query, status="failed", error=message,
                        error_type=outcome.error_type or ServeError.__name__,
                        retryable=outcome.error_type in RETRYABLE_ERRORS,
                        shard=shard, batch_size=batch_size,
                    ),
                )

    @staticmethod
    def _payload(query: ShapeQuery, result: Any, row: int) -> Dict[str, Any]:
        """Project one evaluated engine row into the query's payload."""
        latency_s = float(result.latency_s[row])
        tflops = float(result.tflops[row])
        if query.kind == "latency":
            return {"latency_s": latency_s}
        if query.kind == "tflops":
            return {"tflops": tflops}
        return {
            "latency_s": latency_s,
            "tflops": tflops,
            "tile": result.tile(row).name,
            "bound": str(result.bound[row]),
            "blocks": int(result.blocks[row]),
            "waves": int(result.waves[row]),
            "alignment_eff": float(result.alignment_eff[row]),
            "wave_eff": float(result.wave_eff[row]),
        }

    def _run_lint(
        self, shard: int, item: PendingRequest, batch_size: int
    ) -> None:
        from repro.analysis import ShapeLinter
        from repro.analysis.config_io import config_from_dict
        from repro.core.config import get_model

        query = item.query
        with _span("serve.lint", shard=shard, gpu=query.gpu):
            try:
                if query.model is not None:
                    cfg = get_model(query.model)
                else:
                    cfg = config_from_dict(query.lint_config())
                report = ShapeLinter(query.gpu, dtype=query.dtype).lint(
                    cfg, pipeline_stages=query.pipeline_stages
                )
            except ReproError as exc:
                self._count("failed")
                _metrics().counter("serve.failed").inc()
                self._resolve(
                    item,
                    Advisory(
                        query=query, status="failed", error=str(exc),
                        error_type=type(exc).__name__, shard=shard,
                        batch_size=batch_size, retryable=is_retryable(exc),
                    ),
                )
                return
        payload = {
            "target": report.target,
            "exit_code": report.exit_code,
            "worst": report.worst.name,
            "findings": [d.to_dict() for d in report.findings()],
            "fixits": [
                d.fixit.to_dict()
                for d in report.diagnostics
                if d.fixit is not None
            ],
        }
        advisory = Advisory(
            query=query, status="ok", payload=payload, source="engine",
            shard=shard, queue_wait_s=time.monotonic() - item.enqueued_at_s,
            batch_size=batch_size,
        )
        self._cache.put(self._cache_key(query), payload)
        self._count("served")
        self._count("lint_served")
        _metrics().counter("serve.served").inc()
        _metrics().counter("serve.lint_served").inc()
        self._resolve(item, advisory)

    def _kernel_params_resolver(self) -> Any:
        """The shared kernel-table resolver, built once from the env.

        Raises the remembered :class:`~repro.errors.KernelTableError`
        on every call after a failed build, so a bad table directory
        yields typed failed advisories instead of a worker crash loop.
        """
        from repro.kernels.registry import KernelParamResolver

        with self._kernel_lock:
            if self._kernel_error is not None:
                raise self._kernel_error
            if self._kernel_resolver is None:
                try:
                    self._kernel_resolver = KernelParamResolver.from_env(
                        engine=self._engine
                    )
                except ReproError as exc:
                    self._kernel_error = exc
                    raise
            return self._kernel_resolver

    def _run_kernel(
        self, shard: int, item: PendingRequest, batch_size: int
    ) -> None:
        query = item.query
        with _span("serve.kernel", shard=shard, gpu=query.gpu):
            try:
                resolver = self._kernel_params_resolver()
                payload = resolver.resolve(
                    query.batch, query.m, query.n, query.k,
                    query.gpu, query.dtype,
                )
            except ReproError as exc:
                self._count("failed")
                _metrics().counter("serve.failed").inc()
                self._resolve(
                    item,
                    Advisory(
                        query=query, status="failed", error=str(exc),
                        error_type=type(exc).__name__, shard=shard,
                        batch_size=batch_size, retryable=is_retryable(exc),
                    ),
                )
                return
        advisory = Advisory(
            query=query, status="ok", payload=payload, source="engine",
            shard=shard, queue_wait_s=time.monotonic() - item.enqueued_at_s,
            batch_size=batch_size,
        )
        self._cache.put(self._cache_key(query), payload)
        self._count("served")
        self._count("kernel_served")
        _metrics().counter("serve.served").inc()
        _metrics().counter("serve.kernel_served").inc()
        self._resolve(item, advisory)
