"""Blocking socket transport into the cluster front-end.

:class:`SocketTransport` satisfies the
:class:`~repro.serve.dispatch.Transport` protocol over a TCP
connection speaking :mod:`repro.serve.wire`, so everything written
against the in-process server — :class:`~repro.serve.client.
AdvisoryClient`, :func:`~repro.serve.loadgen.run_load`, the
differential verify wall — runs unchanged against a remote cluster.

Connections are **per-thread** (a ``threading.local``), with one
outstanding request per connection; responses are matched by ``id``
and stale ids (from an earlier timed-out attempt on the same
connection) are skipped.  A dropped connection — server restart, torn
socket, injected ``cluster.conn`` fault — triggers
reconnect-with-backoff through the shared
:class:`~repro.resilience.execute.RetryPolicy` (deterministic jitter:
same seed, same delays, any machine) and the request is **resent**,
which is sound because advisory queries are idempotent and
side-effect-free.  Only after the whole retry budget is exhausted does
the caller see a :class:`~repro.errors.ClusterError`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import ClusterError, ConfigError, DeadlineExceededError
from repro.observability import metrics as _metrics
from repro.resilience.execute import RetryPolicy
from repro.serve import wire
from repro.serve.protocol import Advisory, ShapeQuery

__all__ = ["SocketTransport"]


class _Conn:
    """One thread's socket + buffered reader + request-id counter."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.reader = sock.makefile("r", encoding="utf-8")
        self.next_id = 0

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:  # pragma: no cover - already torn
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already torn
            pass


class SocketTransport:
    """Reconnecting JSONL client for one cluster front-end address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[RetryPolicy] = None,
        connect_timeout_s: float = 10.0,
    ) -> None:
        if port < 1:
            raise ConfigError(f"port must be >= 1, got {port}")
        self.host = host
        self.port = port
        #: Reconnect budget and backoff curve; delays are deterministic
        #: per (seed, attempt) so retry storms never synchronize by
        #: accident and chaos runs replay identically.
        self.policy = policy or RetryPolicy(retries=5, backoff_s=0.05)
        self.connect_timeout_s = connect_timeout_s
        self._local = threading.local()
        self._lock = threading.Lock()
        self._all_conns: List[_Conn] = []
        self._reconnects = 0

    # -- connection management ----------------------------------------------

    def _conn(self) -> _Conn:
        conn: Optional[_Conn] = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        conn = _Conn(sock)
        self._local.conn = conn
        with self._lock:
            self._all_conns.append(conn)
        return conn

    def _drop(self) -> None:
        conn: Optional[_Conn] = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._lock:
            if conn in self._all_conns:
                self._all_conns.remove(conn)
        conn.close()

    def close(self) -> None:
        """Close every connection this transport ever opened."""
        with self._lock:
            conns = list(self._all_conns)
            self._all_conns.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def reconnects(self) -> int:
        """Connections re-established after a drop (all threads)."""
        with self._lock:
            return self._reconnects

    # -- the Transport protocol ---------------------------------------------

    def request(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """One advisory round-trip, reconnecting through drops.

        Raises :class:`~repro.errors.DeadlineExceededError` when the
        server holds the line past ``timeout_s`` (the time budget is
        spent — retrying would double it) and
        :class:`~repro.errors.ClusterError` once drops exhaust the
        reconnect budget.
        """
        message = wire.query_message(query.to_dict(), 0)
        response = self._rpc("query", message, timeout_s)
        body = response.get("advisory")
        if body is None:
            raise ClusterError(
                f"{self.host}:{self.port} sent an advisory with no body"
            )
        return Advisory.from_dict(body)

    def server_stats(self, timeout_s: Optional[float] = 10.0) -> Dict[str, Any]:
        """The front-end's cluster + aggregated worker counters."""
        return dict(
            self._rpc("stats", wire.encode_message("stats", id=0), timeout_s)
            .get("stats", {})
        )

    def ping(self, timeout_s: Optional[float] = 10.0) -> Dict[str, Any]:
        """Liveness probe; the pong carries the live-worker count."""
        return self._rpc("ping", wire.encode_message("ping", id=0), timeout_s)

    # -- internals ----------------------------------------------------------

    def _rpc(
        self, op: str, template: str, timeout_s: Optional[float]
    ) -> Dict[str, Any]:
        """Send one message, await its id-matched response, with retries."""
        want_op = {"query": "advisory", "ping": "pong", "stats": "stats"}[op]
        attempts = self.policy.retries + 1
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                self._drop()
                time.sleep(
                    self.policy.delay_s(
                        f"reconnect:{self.host}:{self.port}", attempt - 1
                    )
                )
                with self._lock:
                    self._reconnects += 1
                _metrics().counter("cluster.client_reconnects").inc()
            try:
                return self._roundtrip(want_op, template, timeout_s)
            except (OSError, EOFError) as exc:
                last_exc = exc
                continue
        self._drop()
        raise ClusterError(
            f"no {want_op} from {self.host}:{self.port} after "
            f"{attempts} attempt(s): {last_exc}"
        )

    def _roundtrip(
        self, want_op: str, template: str, timeout_s: Optional[float]
    ) -> Dict[str, Any]:
        conn = self._conn()
        request_id = conn.next_id
        conn.next_id += 1
        # Re-stamp the template with this connection's next id.
        message = wire.decode_line(template)
        message["id"] = request_id
        line = wire.encode_message(message.pop("op"), **message)
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        conn.sock.settimeout(timeout_s)
        conn.sock.sendall(line.encode("utf-8"))
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._drop()
                    raise DeadlineExceededError(
                        f"no response from {self.host}:{self.port} "
                        f"within {timeout_s}s"
                    )
                conn.sock.settimeout(remaining)
            try:
                raw = conn.reader.readline()
            except socket.timeout:
                self._drop()
                raise DeadlineExceededError(
                    f"no response from {self.host}:{self.port} "
                    f"within {timeout_s}s"
                ) from None
            if not raw:
                raise EOFError("server closed the connection")
            try:
                response = wire.decode_line(raw)
            except ConfigError as exc:
                # Garbage on the stream: the framing is gone; treat it
                # as a torn connection and let the retry loop recover.
                raise EOFError(f"protocol desync: {exc}") from exc
            if response["op"] == want_op and response.get("id") == request_id:
                return response
            # Stale response from an earlier timed-out request on this
            # connection, or an unsolicited op: skip and keep reading.
