"""Deterministic fault injection at named sites.

Production code paths call :func:`fault_site` at the few places where
real systems fail — worker task entry, engine batch evaluation, disk
cache reads/writes, calibration fits.  With no plan installed the call
is a single global check and costs nothing.  Chaos runs and tests
install a :class:`FaultPlan` (``repro run --inject-faults plan.json``)
whose seeded :class:`FaultSpec` entries then fire at those sites:

- ``raise`` — raise a named exception (default
  :class:`~repro.errors.FaultInjectionError`),
- ``delay`` — sleep ``delay_s`` (drives deadline/timeout paths),
- ``corrupt`` — overwrite the file named by the site's ``path`` context
  with deterministic garbage (drives cache-quarantine paths),
- ``kill`` — SIGKILL the *current process* (drives the cluster
  supervisor's crash-recovery path; only meaningful inside a worker
  process, where the supervisor observes the death and restarts it).

Every spec is deterministic: it targets a site name, optionally a
``match`` substring against the site's context values, skips its first
``skip`` matching calls, then fires ``times`` times.  ``probability``
draws from a :class:`random.Random` seeded from ``(plan seed, site,
spec index)``, so a given plan always injects the same faults at the
same calls regardless of thread scheduling of *other* sites.

A plan is JSON round-trippable::

    {"seed": 0, "faults": [
        {"site": "runner.experiment", "kind": "raise", "match": "fig5",
         "times": 1, "exception": "RuntimeError", "message": "chaos"}
    ]}
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import errors
from repro.errors import ConfigError
from repro.observability import event as _event
from repro.observability import metrics as _metrics

#: Site names instrumented in this codebase (kept in one place so tests
#: and plan authors don't guess; :func:`fault_site` accepts any name).
KNOWN_SITES = (
    "runner.experiment",
    "engine.batch_eval",
    "cache.disk_get",
    "cache.disk_put",
    "autotune.search",
    "calibration.fit",
    "cluster.worker",
    "cluster.heartbeat",
    "cluster.conn",
)

_KINDS = ("raise", "delay", "corrupt", "kill")

#: Exceptions a plan may name without a dotted path.
_NAMED_EXCEPTIONS: Dict[str, type] = {
    name: obj
    for name, obj in vars(errors).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
}


def _resolve_exception(name: str) -> type:
    """Map an exception name from a plan to a raisable class."""
    import builtins

    if name in _NAMED_EXCEPTIONS:
        return _NAMED_EXCEPTIONS[name]
    builtin = getattr(builtins, name, None)
    if isinstance(builtin, type) and issubclass(builtin, BaseException):
        return builtin
    raise ConfigError(
        f"unknown exception {name!r} in fault plan; use a builtin or a "
        f"repro.errors name ({', '.join(sorted(_NAMED_EXCEPTIONS))})"
    )


@dataclass
class FaultSpec:
    """One deterministic fault: where, what, and how often.

    ``delay_s`` is the sleep injected by kind ``delay``; ``probability``
    is the per-call firing fraction in [0, 1] drawn from the spec's own
    seeded stream (1.0 = every matching call).
    """

    site: str
    kind: str = "raise"
    #: Substring matched against the site's context values (e.g. the
    #: experiment id); empty matches every call.
    match: str = ""
    #: Number of matching calls to let pass before firing.
    skip: int = 0
    #: Maximum number of firings (0 = unlimited).
    times: int = 1
    probability: float = 1.0
    exception: str = "FaultInjectionError"
    message: str = ""
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"fault kind {self.kind!r} not one of {_KINDS}"
            )
        if not self.site:
            raise ConfigError("fault spec needs a site name")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.skip < 0 or self.times < 0 or self.delay_s < 0:
            raise ConfigError("skip/times/delay_s must be non-negative")
        _resolve_exception(self.exception)  # fail fast on bad names

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "match": self.match,
            "skip": self.skip,
            "times": self.times,
            "probability": self.probability,
            "exception": self.exception,
            "message": self.message,
            "delay_s": self.delay_s,
        }


class _SpecState:
    """Mutable firing state for one spec (counters + seeded stream)."""

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        self.seen = 0
        self.fired = 0
        self.rng = random.Random(f"{seed}:{spec.site}:{index}")

    def should_fire(self, context: Dict[str, Any]) -> bool:
        spec = self.spec
        if spec.match and not any(
            spec.match in str(v) for v in context.values()
        ):
            return False
        self.seen += 1
        if self.seen <= spec.skip:
            return False
        if spec.times and self.fired >= spec.times:
            return False
        if spec.probability < 1.0 and self.rng.random() >= spec.probability:
            return False
        self.fired += 1
        return True


@dataclass
class FaultEvent:
    """Record of one fired fault (plans keep a log for assertions)."""

    site: str
    kind: str
    context: Dict[str, Any] = field(default_factory=dict)


class FaultPlan:
    """A seeded collection of :class:`FaultSpec` with firing state."""

    def __init__(self, specs: List[FaultSpec], seed: int = 0) -> None:
        self.seed = seed
        self.specs = list(specs)
        self._states = [
            _SpecState(s, seed, i) for i, s in enumerate(self.specs)
        ]
        self._lock = threading.Lock()
        self.events: List[FaultEvent] = []

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or "faults" not in data:
            raise ConfigError(
                "fault plan must be an object with a 'faults' list"
            )
        specs = []
        for i, raw in enumerate(data["faults"]):
            if not isinstance(raw, dict):
                raise ConfigError(f"faults[{i}] is not an object")
            unknown = set(raw) - {
                "site", "kind", "match", "skip", "times", "probability",
                "exception", "message", "delay_s",
            }
            if unknown:
                raise ConfigError(
                    f"faults[{i}] has unknown fields {sorted(unknown)}"
                )
            specs.append(FaultSpec(**raw))
        return cls(specs, seed=int(data.get("seed", 0)))

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path}: {exc}") from exc
        except ValueError as exc:
            raise ConfigError(f"invalid JSON in fault plan {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.specs],
        }

    # -- firing --------------------------------------------------------------

    def fired(self, site: Optional[str] = None) -> int:
        """Number of faults fired so far (optionally for one site)."""
        with self._lock:
            return sum(
                1 for e in self.events if site is None or e.site == site
            )

    def _next_fault(
        self, site: str, context: Dict[str, Any]
    ) -> Optional[FaultSpec]:
        with self._lock:
            for state in self._states:
                if state.spec.site == site and state.should_fire(context):
                    self.events.append(
                        FaultEvent(site=site, kind=state.spec.kind,
                                   context=dict(context))
                    )
                    return state.spec
        return None

    def trigger(self, site: str, context: Dict[str, Any]) -> None:
        """Fire at most one matching spec for this call to ``site``."""
        spec = self._next_fault(site, context)
        if spec is None:
            return
        # Record before acting: a 'raise' fault must still leave a trace.
        _metrics().counter("faults.fired").inc()
        _event("fault.fired", site=site, kind=spec.kind)
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "corrupt":
            path = context.get("path")
            if path is not None:
                _corrupt_file(Path(path), self.seed)
            return
        if spec.kind == "kill":
            # Uncatchable by design: a crashed worker leaves no goodbye.
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - SIGKILL never returns
        exc_cls = _resolve_exception(spec.exception)
        message = spec.message or (
            f"injected fault at {site} ({context or 'no context'})"
        )
        raise exc_cls(message)


def _corrupt_file(path: Path, seed: int) -> None:
    """Overwrite a file with deterministic garbage bytes."""
    rng = random.Random(f"corrupt:{seed}:{path.name}")
    garbage = bytes(rng.randrange(256) for _ in range(64))
    try:
        path.write_bytes(garbage)
    except OSError:  # pragma: no cover - corruption target vanished
        pass


# -- the installed plan ----------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or, with ``None``, remove) the process-wide fault plan.

    The plan is process-global so worker *threads* of a resilient sweep
    see it; process-pool workers do not inherit it (chaos runs use the
    thread or serial executor).
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan


def clear_plan() -> None:
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


class injected:
    """Context manager installing a plan for the duration of a block."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        install_plan(self.plan)
        return self.plan

    def __exit__(self, *exc_info: Any) -> None:
        clear_plan()


def fault_site(site: str, **context: Any) -> None:
    """Hook production code calls at a named failure point.

    No-op (one global read) unless a plan is installed.  ``context``
    carries site-specific values a spec can ``match`` against — e.g.
    ``fault_site("runner.experiment", id=exp_id)`` — and, for
    ``corrupt`` faults, the target ``path``.

    May raise whatever exception the matching spec configures; callers
    must *not* catch injected faults specially — the point is that they
    flow through the same handling as organic failures.
    """
    plan = _ACTIVE
    if plan is None:
        return
    plan.trigger(site, context)


def iter_sites() -> Iterator[Tuple[str, str]]:
    """Known instrumented sites with a short description (docs/CLI)."""
    docs = {
        "runner.experiment": "entry of one experiment task in run_all",
        "engine.batch_eval": "ShapeEngine.evaluate, before computing a batch",
        "cache.disk_get": "DiskCache.get, before reading an entry",
        "cache.disk_put": "DiskCache.put, after writing an entry (corrupt target)",
        "autotune.search": "search_dimension, before scoring candidates",
        "calibration.fit": "run_calibration, before each constant fit",
        "cluster.worker": "worker process, before answering one query "
                          "(kill here = crash mid-request)",
        "cluster.heartbeat": "worker process, before answering a ping "
                             "(delay here = stalled heartbeat)",
        "cluster.conn": "front-end, per accepted client line "
                        "(raise here = torn socket)",
    }
    for site in KNOWN_SITES:
        yield site, docs[site]
