"""Fault-tolerant task execution: isolation, deadlines, retry/backoff.

:func:`execute_tasks` maps a function over task ids the way
``pool.map`` does, except that **no task failure ever aborts the
sweep**: each task returns a typed :class:`TaskOutcome` (ok / failed /
timed out, with its attempt count and wall time) instead of raising.

Three layers of hardening, each independently usable:

- **Retry with exponential backoff + jitter** (:class:`RetryPolicy`):
  an attempt that raises is retried up to ``retries`` times, sleeping
  ``backoff_s * multiplier**n`` (capped at ``max_backoff_s``) with a
  deterministic per-(task, attempt) jitter so retry storms from
  parallel workers never synchronize — and so tests replay exactly.
- **Per-attempt deadlines**: with ``timeout_s`` set, each attempt runs
  on a watchdog thread and is abandoned once over deadline (Python
  cannot kill a thread, so the attempt may finish in the background;
  its result is discarded).  The outcome records
  :class:`~repro.errors.TaskTimeoutError`.
- **Graceful pool degradation**: if the requested process pool cannot
  be created or dies (unpicklable work, ``BrokenProcessPool``, missing
  ``/dev/shm``), the sweep *downgrades* — process -> thread -> serial —
  logging the downgrade on the ``repro.resilience`` logger rather than
  failing the run.

Outcomes are returned in task order regardless of completion order; an
optional ``on_outcome`` callback sees each outcome as it completes (the
checkpoint journal hooks in there).
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError, TaskTimeoutError
from repro.observability import metrics as _metrics
from repro.observability import span as _span

log = logging.getLogger("repro.resilience")


class TaskStatus(Enum):
    """Terminal state of one task under resilient execution."""

    OK = "ok"
    FAILED = "failed"
    TIMEOUT = "timeout"


@dataclass
class TaskOutcome:
    """What happened to one task: value or typed failure, never a raise.

    ``attempts`` counts executions (1 = succeeded first try);
    ``retries`` is ``attempts - 1``.  ``error_type`` is the exception
    class name (e.g. ``"FaultInjectionError"``) so callers dispatch on
    type without string matching.
    """

    task_id: str
    status: TaskStatus
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    wall_time_s: float = 0.0
    #: Worker tier that produced the outcome ("process"/"thread"/"serial").
    executor: str = "serial"

    @property
    def ok(self) -> bool:
        return self.status is TaskStatus.OK

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def describe(self) -> str:
        if self.ok:
            extra = f" after {self.attempts} attempts" if self.retries else ""
            return f"{self.task_id}: ok{extra}"
        return (
            f"{self.task_id}: {self.status.value} "
            f"({self.error_type}: {self.error}; {self.attempts} attempts)"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Delay before retry ``n`` (0-based) is ``backoff_s * multiplier**n``
    capped at ``max_backoff_s``, scaled by a jitter factor in
    ``[1 - jitter_frac, 1 + jitter_frac]`` derived from a stable hash
    of ``(seed, task_id, n)`` — identical across runs and processes.
    """

    retries: int = 0
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter_frac: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff_s/max_backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}"
            )

    def delay_s(self, task_id: str, retry: int) -> float:
        """Deterministic backoff delay before the given retry number."""
        base = min(
            self.backoff_s * self.multiplier ** retry, self.max_backoff_s
        )
        if base == 0 or self.jitter_frac == 0:
            return base
        token = f"{self.seed}:{task_id}:{retry}".encode()
        draw = int.from_bytes(hashlib.sha256(token).digest()[:4], "big")
        unit = draw / 0xFFFFFFFF  # uniform in [0, 1]
        return base * (1.0 + self.jitter_frac * (2.0 * unit - 1.0))


#: Executor tiers in degradation order; ``serial`` never degrades.
EXECUTOR_TIERS = ("process", "thread", "serial")


def _call_with_deadline(
    fn: Callable[[str], Any], task_id: str, timeout_s: Optional[float]
) -> Any:
    """Run one attempt, raising TaskTimeoutError past the deadline.

    The attempt runs on a daemon watchdog thread; on timeout it is
    abandoned (it may still complete in the background — its result and
    any exception are discarded).
    """
    if timeout_s is None:
        return fn(task_id)
    box: Dict[str, Any] = {}
    done = threading.Event()

    def attempt() -> None:
        try:
            box["value"] = fn(task_id)
        except BaseException as exc:  # re-raised in the caller
            box["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(
        target=attempt, name=f"repro-deadline-{task_id}", daemon=True
    )
    worker.start()
    if not done.wait(timeout_s):
        raise TaskTimeoutError(
            f"task {task_id!r} exceeded {timeout_s:g}s deadline"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


def run_one(
    fn: Callable[[str], Any],
    task_id: str,
    policy: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    executor: str = "serial",
) -> TaskOutcome:
    """Execute one task with retries and a per-attempt deadline.

    Never raises: every exception (including injected faults and
    deadline overruns) is folded into the returned outcome.
    """
    policy = policy or RetryPolicy()
    start = time.perf_counter()
    last_exc: Optional[BaseException] = None
    attempts = 0
    for retry in range(policy.retries + 1):
        attempts += 1
        # One span per attempt (backoff sleeps stay outside, so the
        # span duration is attempt work, not queueing).  The outcome is
        # an attribute rather than span status because a failed attempt
        # is handled here, not propagated.
        with _span(
            "task.attempt", task=task_id, attempt=attempts, executor=executor
        ) as sp:
            try:
                value = _call_with_deadline(fn, task_id, timeout_s)
            except Exception as exc:
                last_exc = exc
                sp.set(
                    outcome=(
                        "timeout" if isinstance(exc, TaskTimeoutError)
                        else "error"
                    ),
                    error_type=type(exc).__name__,
                )
                _metrics().counter("tasks.attempts.failed").inc()
            else:
                sp.set(outcome="ok")
                _metrics().counter("tasks.attempts.ok").inc()
                _metrics().histogram("tasks.attempt_s").observe(
                    time.perf_counter() - start
                )
                return TaskOutcome(
                    task_id=task_id,
                    status=TaskStatus.OK,
                    value=value,
                    attempts=attempts,
                    wall_time_s=time.perf_counter() - start,
                    executor=executor,
                )
        if retry < policy.retries:
            delay = policy.delay_s(task_id, retry)
            _metrics().counter("tasks.retries").inc()
            log.warning(
                "task %s attempt %d failed (%s: %s); retrying in %.3fs",
                task_id, attempts, type(last_exc).__name__, last_exc, delay,
            )
            if delay > 0:
                time.sleep(delay)
    assert last_exc is not None
    _metrics().counter("tasks.exhausted").inc()
    status = (
        TaskStatus.TIMEOUT
        if isinstance(last_exc, TaskTimeoutError)
        else TaskStatus.FAILED
    )
    return TaskOutcome(
        task_id=task_id,
        status=status,
        error=str(last_exc),
        error_type=type(last_exc).__name__,
        attempts=attempts,
        wall_time_s=time.perf_counter() - start,
        executor=executor,
    )


@dataclass
class ExecutionReport:
    """Outcomes of one resilient sweep, in task order.

    ``downgrades`` records each executor-tier fallback as
    ``(from_tier, to_tier, reason)``.
    """

    outcomes: List[TaskOutcome] = field(default_factory=list)
    executor: str = "serial"
    downgrades: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def failed(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]


def _run_serial(
    fn: Callable[[str], Any],
    ids: Sequence[str],
    policy: Optional[RetryPolicy],
    timeout_s: Optional[float],
    on_outcome: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    outcomes = []
    for task_id in ids:
        outcome = run_one(fn, task_id, policy, timeout_s, executor="serial")
        if on_outcome is not None:
            on_outcome(outcome)
        outcomes.append(outcome)
    return outcomes


def _run_pool(
    pool: Executor,
    tier: str,
    fn: Callable[[str], Any],
    ids: Sequence[str],
    policy: Optional[RetryPolicy],
    timeout_s: Optional[float],
    on_outcome: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    """Submit all tasks, journaling outcomes as they complete."""
    futures: Dict[Future, int] = {
        pool.submit(run_one, fn, task_id, policy, timeout_s, tier): i
        for i, task_id in enumerate(ids)
    }
    slots: List[Optional[TaskOutcome]] = [None] * len(ids)
    pending = set(futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            outcome = future.result()  # run_one never raises; a worker
            # death surfaces here as BrokenProcessPool and is handled
            # by the degradation ladder in execute_tasks.
            slots[futures[future]] = outcome
            if on_outcome is not None:
                on_outcome(outcome)
    return [o for o in slots if o is not None]


def execute_tasks(
    fn: Callable[[str], Any],
    ids: Sequence[str],
    policy: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    parallel: int = 1,
    executor: str = "thread",
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
) -> ExecutionReport:
    """Map ``fn`` over ``ids`` with isolation, retries, and deadlines.

    Parameters mirror :class:`RetryPolicy` / :func:`run_one`;
    ``executor`` is the *starting* tier — process pools degrade to
    thread, then serial, if the pool cannot be created or breaks
    mid-sweep (already-completed outcomes are kept; unfinished tasks
    are re-executed on the lower tier).
    """
    if parallel < 1:
        raise ConfigError(f"parallel must be >= 1, got {parallel}")
    if executor not in EXECUTOR_TIERS:
        raise ConfigError(
            f"unknown executor {executor!r}; expected one of {EXECUTOR_TIERS}"
        )
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigError(f"timeout_s must be positive, got {timeout_s}")
    report = ExecutionReport(executor=executor)
    if parallel == 1:
        executor = "serial"
        report.executor = "serial"

    tiers = list(EXECUTOR_TIERS[EXECUTOR_TIERS.index(executor):])
    remaining = list(ids)
    done: Dict[str, TaskOutcome] = {}

    def collect(outcome: TaskOutcome) -> None:
        done[outcome.task_id] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    while tiers:
        tier = tiers.pop(0)
        pending = [i for i in remaining if i not in done]
        if not pending:
            break
        try:
            if tier == "serial":
                _run_serial(fn, pending, policy, timeout_s, collect)
            else:
                pool_cls = (
                    ProcessPoolExecutor if tier == "process"
                    else ThreadPoolExecutor
                )
                with pool_cls(max_workers=parallel) as pool:
                    _run_pool(
                        pool, tier, fn, pending, policy, timeout_s, collect
                    )
            report.executor = tier
            break
        except Exception as exc:
            if not tiers:
                raise
            reason = f"{type(exc).__name__}: {exc}"
            log.warning(
                "executor tier %r failed (%s); downgrading to %r",
                tier, reason, tiers[0],
            )
            report.downgrades.append((tier, tiers[0], reason))

    report.outcomes = [done[i] for i in ids if i in done]
    return report
