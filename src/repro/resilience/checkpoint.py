"""Checkpointed sweeps: an append-only, crash-safe JSONL journal.

Long sweeps (``run_all`` over the figure registry, autotune candidate
scans, calibration fits) record each completed unit of work to a
:class:`SweepJournal` so a killed run can ``--resume`` and re-execute
only what is unfinished.

The format is one JSON object per line, because append-only JSONL has
exactly the durability property a checkpoint needs: a crash mid-write
can only tear the *final* line, which the reader detects (bad JSON or
missing newline) and drops — every earlier record is intact.  Each
append is flushed and ``fsync``'d before :meth:`record` returns, so a
completed unit is durable the moment its outcome is reported.

The first line is a header carrying a caller-chosen ``sweep_id`` (e.g.
the sorted experiment ids).  Resuming against a journal whose header
does not match raises :class:`~repro.errors.CheckpointError` instead of
silently skipping the wrong work.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.errors import CheckpointError
from repro.observability import event as _event
from repro.observability import metrics as _metrics

_HEADER_KIND = "header"
_UNIT_KIND = "unit"
_FORMAT_VERSION = 1


class SweepJournal:
    """Append-only JSONL record of completed sweep units.

    Thread-safe: parallel workers report completions through one
    journal.  ``sweep_id`` identifies *what* is being swept; a journal
    created for a different sweep_id refuses to resume.
    """

    def __init__(
        self,
        path: "str | Path",
        sweep_id: str = "",
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self.dropped_lines = 0  # torn/corrupt lines skipped on load
        if resume and self.path.exists():
            self._load()
        else:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._write_line(
                {
                    "kind": _HEADER_KIND,
                    "version": _FORMAT_VERSION,
                    "sweep": sweep_id,
                },
                mode="w",
            )

    # -- durability ----------------------------------------------------------

    def _write_line(self, record: Dict[str, Any], mode: str = "a") -> None:
        line = json.dumps(record, sort_keys=True)
        try:
            with open(self.path, mode) as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot write journal {self.path}: {exc}"
            ) from exc

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        records: List[Dict[str, Any]] = []
        lines = text.split("\n")
        # A file not ending in a newline has a torn final line: the
        # split leaves it as the last element instead of "".
        torn_tail = bool(lines) and lines[-1] != ""
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.dropped_lines += 1
                continue
            if torn_tail and i == len(lines) - 1:
                # Parses but was never newline-terminated: the fsync'd
                # write contract means it may be incomplete — drop it.
                self.dropped_lines += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.dropped_lines += 1
        if not records or records[0].get("kind") != _HEADER_KIND:
            raise CheckpointError(
                f"{self.path} is not a sweep journal (missing header)"
            )
        header = records[0]
        if self.sweep_id and header.get("sweep") != self.sweep_id:
            raise CheckpointError(
                f"journal {self.path} was written for sweep "
                f"{header.get('sweep')!r}, not {self.sweep_id!r}; "
                "use a fresh journal path (or drop --resume)"
            )
        loaded = [r for r in records[1:] if r.get("kind") == _UNIT_KIND]
        with self._lock:
            self._entries = loaded

    # -- recording -----------------------------------------------------------

    def record(
        self,
        unit_id: str,
        status: str,
        payload: Optional[Dict[str, Any]] = None,
        attempts: int = 1,
    ) -> None:
        """Durably append one completed unit of work."""
        entry = {
            "kind": _UNIT_KIND,
            "id": unit_id,
            "status": status,
            "attempts": attempts,
            "payload": payload or {},
        }
        with self._lock:
            self._write_line(entry)
            self._entries.append(entry)
        _metrics().counter("journal.appends").inc()
        _event("journal.append", unit=unit_id, status=status)

    # -- querying ------------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """All unit records loaded or appended, in journal order."""
        with self._lock:
            return list(self._entries)

    def completed(self) -> Set[str]:
        """Unit ids recorded with status ``"ok"`` (skipped on resume).

        Failed/timed-out units are *not* completed: a resumed sweep
        re-executes them.
        """
        with self._lock:
            return {
                e["id"] for e in self._entries if e.get("status") == "ok"
            }

    def entry_for(self, unit_id: str) -> Optional[Dict[str, Any]]:
        """Latest record for one unit id, or None."""
        with self._lock:
            for entry in reversed(self._entries):
                if entry.get("id") == unit_id:
                    return entry
        return None

    def describe(self) -> str:
        done = len(self.completed())
        parts = [f"{done} completed unit(s) in {self.path}"]
        if self.dropped_lines:
            parts.append(f"{self.dropped_lines} torn line(s) dropped")
        return "; ".join(parts)
