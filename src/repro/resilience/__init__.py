"""Fault-tolerant execution layer: isolation, retries, checkpoints, chaos.

Three cooperating pieces (see DESIGN.md "Resilience & fault injection"):

- :mod:`repro.resilience.execute` — per-task error isolation with
  deadline timeouts and retry/backoff, returning typed
  :class:`TaskOutcome` records instead of raising; process -> thread ->
  serial pool degradation.
- :mod:`repro.resilience.checkpoint` — the append-only fsync'd JSONL
  :class:`SweepJournal` behind every ``--resume`` flag.
- :mod:`repro.resilience.faults` — deterministic seeded fault plans
  injected at named :func:`fault_site` hooks (``repro run
  --inject-faults plan.json``), so every failure path above is testable.
"""

from repro.resilience.checkpoint import SweepJournal
from repro.resilience.execute import (
    ExecutionReport,
    RetryPolicy,
    TaskOutcome,
    TaskStatus,
    execute_tasks,
    run_one,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    fault_site,
    injected,
    install_plan,
)

__all__ = [
    "ExecutionReport",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SweepJournal",
    "TaskOutcome",
    "TaskStatus",
    "active_plan",
    "clear_plan",
    "execute_tasks",
    "fault_site",
    "injected",
    "install_plan",
    "run_one",
]
