"""GPU performance-model substrate.

This package is the reproduction's stand-in for the silicon the paper
measured on (V100 / A100 / H100 / MI250X).  It contains:

- :mod:`repro.gpu.specs` — architecture parameter sheets,
- :mod:`repro.gpu.alignment` — Tensor Core alignment/efficiency rules,
- :mod:`repro.gpu.tiles` — thread-block tile candidates and selection,
- :mod:`repro.gpu.waves` — tile- and wave-quantization arithmetic,
- :mod:`repro.gpu.occupancy` — blocks-per-SM occupancy limits,
- :mod:`repro.gpu.roofline` — arithmetic intensity / bandwidth bounds,
- :mod:`repro.gpu.l2cache` — L2 reuse model for GEMM operand traffic,
- :mod:`repro.gpu.gemm_model` — analytic GEMM latency/throughput model,
- :mod:`repro.gpu.bmm_model` — batched-GEMM (BMM) extension,
- :mod:`repro.gpu.simulator` — discrete-event SM/thread-block simulator.

Every microarchitectural effect the paper studies (Tensor Core
eligibility, tile quantization, wave quantization, memory-boundedness of
small GEMMs) is a deterministic function of the GEMM shape and the
architecture parameters, which is what makes a first-principles model a
faithful substitute for wall-clock measurement at the level of *figure
shape* (who wins, where the cliffs are).
"""

from repro.gpu.specs import GPUSpec, get_gpu, list_gpus, register_gpu
from repro.gpu.alignment import (
    largest_pow2_divisor,
    tensor_core_eligible,
    dim_efficiency,
    gemm_alignment_efficiency,
)
from repro.gpu.waves import (
    num_tiles,
    num_waves,
    wave_efficiency,
    tile_quantization_waste,
    wave_quantization_free,
)
from repro.gpu.tiles import TileConfig, candidate_tiles, select_tile
from repro.gpu.gemm_model import GemmModel, GemmPerf
from repro.gpu.bmm_model import BmmModel
from repro.gpu.simulator import SMSimulator, SimResult

__all__ = [
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "register_gpu",
    "largest_pow2_divisor",
    "tensor_core_eligible",
    "dim_efficiency",
    "gemm_alignment_efficiency",
    "num_tiles",
    "num_waves",
    "wave_efficiency",
    "tile_quantization_waste",
    "wave_quantization_free",
    "TileConfig",
    "candidate_tiles",
    "select_tile",
    "GemmModel",
    "GemmPerf",
    "BmmModel",
    "SMSimulator",
    "SimResult",
]
