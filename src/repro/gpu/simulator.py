"""Discrete-event simulator of thread-block scheduling onto SMs.

The analytic model in :mod:`repro.gpu.gemm_model` treats scheduling as
synchronized waves: every wave costs a full wave, including the tail.
Real GPUs are slightly kinder — the block scheduler backfills an SM the
moment one of its resident blocks retires, so waves desynchronize and
the tail penalty is a little softer.  This module simulates that
behaviour directly: a work queue of thread blocks, ``num_sms`` SMs each
with ``blocks_per_sm`` slots, and an event loop that assigns the next
block to the earliest-free slot.

The simulator serves two purposes:

1. **Validation** — property tests assert the analytic model and the
   simulation agree within tolerance across random GEMM shapes, so the
   closed-form expressions used everywhere else are trustworthy.
2. **Fidelity experiments** — e.g. measuring how much backfill softens
   wave quantization for large batched attention BMMs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ShapeError
from repro.gpu import waves as wv
from repro.gpu.alignment import gemm_alignment_efficiency
from repro.gpu.gemm_model import _memory_parallelism
from repro.gpu.l2cache import effective_dram_bytes
from repro.gpu.occupancy import blocks_per_sm
from repro.gpu.specs import GPUSpec, get_gpu
from repro.gpu.tiles import TileConfig, select_tile
from repro.types import DType, teraflops


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one (batched) GEMM kernel."""

    makespan_s: float
    blocks: int
    block_duration_s: float
    slots: int
    sm_busy_s: List[float]
    flops: int
    tile: TileConfig

    @property
    def latency_s(self) -> float:
        return self.makespan_s

    @property
    def tflops(self) -> float:
        return teraflops(self.flops, self.makespan_s)

    @property
    def mean_sm_utilization(self) -> float:
        """Average fraction of the makespan each SM spent busy."""
        if self.makespan_s <= 0:
            return 0.0
        return sum(self.sm_busy_s) / (len(self.sm_busy_s) * self.makespan_s)


class SMSimulator:
    """Event-driven thread-block scheduler for one GPU.

    Parameters mirror :class:`~repro.gpu.gemm_model.GemmModel` so the two
    backends are interchangeable in tests and experiments.
    """

    def __init__(
        self,
        gpu: "str | GPUSpec",
        dtype: "str | DType" = DType.FP16,
        tile: Optional[TileConfig] = None,
        bw_efficiency: float = 0.82,
        issue_latency_s: float = 2.0e-9,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self.fixed_tile = tile
        self.bw_efficiency = bw_efficiency
        # Per-block scheduling/launch cost added to every block.
        self.issue_latency_s = issue_latency_s

    def _block_duration(self, tile: TileConfig, k: int, align_eff: float) -> float:
        """Service time of one thread block occupying one SM.

        Each SM is modelled as one sequential server running at the
        per-SM sustained rate; extra resident blocks pipeline behind it
        (their latency-hiding benefit is inside ``tile.peak_fraction``),
        matching the analytic model's ``ceil(blocks/num_sms)`` waves.
        """
        spec, dtype = self.spec, self.dtype
        if spec.supports_matrix(dtype):
            rate = spec.matrix_peak_tflops(dtype) * 1e12 * align_eff
        else:
            rate = spec.vector_peak_tflops(dtype) * 1e12
        rate *= tile.peak_fraction
        sm_rate = rate / spec.num_sms
        k_padded = -(-k // tile.k_stage) * tile.k_stage
        tile_flops = 2.0 * tile.m * tile.n * k_padded
        return tile_flops / sm_rate + self.issue_latency_s

    def run(self, m: int, n: int, k: int, batch: int = 1) -> SimResult:
        """Simulate ``batch`` x (m,k)x(k,n) and return the makespan.

        Memory-boundedness is applied as a floor on the makespan (the
        whole-kernel DRAM time), matching the analytic model's roofline
        composition; the event loop itself resolves the compute-side
        scheduling exactly.
        """
        if min(m, n, k, batch) <= 0:
            raise ShapeError(f"GEMM dims must be positive: {(batch, m, n, k)}")
        spec, dtype = self.spec, self.dtype

        tile = self.fixed_tile or select_tile(m, n, k, spec, dtype, batch=batch)
        # Occupancy (raises when the tile does not fit the SM); the
        # resident-block count sizes the L2 reuse window below.
        occ = blocks_per_sm(spec, tile.m, tile.n, tile.k_stage, tile.threads, dtype)
        align_eff = gemm_alignment_efficiency(m, n, k, dtype, spec)
        duration = self._block_duration(tile, k, align_eff)

        blocks = batch * wv.num_tiles(m, n, tile.m, tile.n)
        slots = spec.num_sms

        # Event loop: a min-heap of (free_time, slot_index).  Every slot
        # starts free at t=0; each block occupies the earliest-free slot.
        heap = [(0.0, i) for i in range(slots)]
        heapq.heapify(heap)
        sm_busy = [0.0] * spec.num_sms
        makespan = 0.0
        for _ in range(blocks):
            free_at, slot = heapq.heappop(heap)
            end = free_at + duration
            sm_busy[slot % spec.num_sms] += duration
            makespan = max(makespan, end)
            heapq.heappush(heap, (end, slot))

        dram = effective_dram_bytes(
            m, n, k, tile.m, tile.n, spec, dtype, batch,
            wave_blocks=slots * occ.blocks_per_sm,
        )
        # Mirror the analytic model's occupancy-limited bandwidth (see
        # GemmModel.evaluate): partial waves run at reduced memory-level
        # parallelism.
        mlp_util = _memory_parallelism(
            blocks, spec.num_sms, wv.wave_efficiency(blocks, spec.num_sms)
        )
        bw_align = align_eff ** 0.8
        memory_s = dram / (
            spec.mem_bw_bytes_per_s() * self.bw_efficiency * mlp_util * bw_align
        )
        makespan = max(makespan, memory_s) + spec.kernel_overhead_s

        return SimResult(
            makespan_s=makespan,
            blocks=blocks,
            block_duration_s=duration,
            slots=slots,
            sm_busy_s=sm_busy,
            flops=2 * batch * m * n * k,
            tile=tile,
        )
