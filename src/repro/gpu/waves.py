"""Tile- and wave-quantization arithmetic (paper Sec III-B, VI-B).

A GEMM's output matrix is divided into tiles; each tile becomes one
thread block scheduled onto an SM.  Two quantization effects follow:

- **Tile quantization**: if the output dimensions do not divide the tile
  size, edge tiles compute full tiles of work but keep only part of the
  result.
- **Wave quantization**: thread blocks launch in waves of
  ``num_sms * blocks_per_sm``; a partial tail wave costs (almost) the
  same time as a full wave.  Throughput rises as the tail fills, then
  cliffs when a new wave is required — the sawtooth in Figs 5b, 8, 9.

The paper also states the exact congruence under which a matrix has *no*
wave-quantization waste; :func:`wave_quantization_free` implements it.
"""

from __future__ import annotations

import math

from repro.errors import ShapeError


def _check_positive(**dims: int) -> None:
    for name, value in dims.items():
        if value <= 0:
            raise ShapeError(f"{name} must be positive, got {value}")


def tiles_along(extent: int, tile: int) -> int:
    """Number of tiles covering one output dimension (ceil division)."""
    _check_positive(extent=extent, tile=tile)
    return -(-extent // tile)


def num_tiles(m: int, n: int, tile_m: int, tile_n: int) -> int:
    """Thread blocks needed to cover an ``m x n`` output matrix."""
    return tiles_along(m, tile_m) * tiles_along(n, tile_n)


def tile_quantization_waste(m: int, n: int, tile_m: int, tile_n: int) -> float:
    """Fraction of launched compute that falls outside the output matrix.

    0.0 when the tile grid covers the output exactly; approaches 1.0 as
    tiles overhang tiny outputs.
    """
    covered = tiles_along(m, tile_m) * tile_m * tiles_along(n, tile_n) * tile_n
    return 1.0 - (m * n) / covered


def num_waves(blocks: int, num_sms: int, blocks_per_sm: int = 1) -> int:
    """Scheduling waves needed to run ``blocks`` thread blocks."""
    _check_positive(blocks=blocks, num_sms=num_sms, blocks_per_sm=blocks_per_sm)
    capacity = num_sms * blocks_per_sm
    return -(-blocks // capacity)


def wave_efficiency(blocks: int, num_sms: int, blocks_per_sm: int = 1) -> float:
    """Fraction of wave slots doing useful work.

    1.0 when the block count is an exact multiple of the wave capacity;
    the classic worst case is capacity+1 blocks -> two waves at ~50%.
    """
    capacity = num_sms * blocks_per_sm
    waves = num_waves(blocks, num_sms, blocks_per_sm)
    return blocks / (waves * capacity)


def tail_wave_fraction(blocks: int, num_sms: int, blocks_per_sm: int = 1) -> float:
    """Occupancy of the final (possibly partial) wave in (0, 1]."""
    capacity = num_sms * blocks_per_sm
    tail = blocks % capacity
    return 1.0 if tail == 0 else tail / capacity


def wave_quantization_free(
    x: int, y: int, tile_1: int, tile_2: int, num_sms: int
) -> bool:
    """The paper's exact no-wave-waste predicate (Sec VI-B).

    A matrix of size ``(X, Y)`` suffers no wave-quantization
    inefficiency when::

        ceil(X/t1) * ceil(Y/t2) == 0  (mod #SMs)
        or ceil(X/t2) * ceil(Y/t1) == 0  (mod #SMs)

    (the two orderings correspond to the two orientations in which the
    kernel may assign the rectangular tile).
    """
    _check_positive(x=x, y=y, tile_1=tile_1, tile_2=tile_2, num_sms=num_sms)
    a = tiles_along(x, tile_1) * tiles_along(y, tile_2)
    b = tiles_along(x, tile_2) * tiles_along(y, tile_1)
    return a % num_sms == 0 or b % num_sms == 0


def smallest_wave_free_extent(
    start: int, other_extent: int, tile_1: int, tile_2: int, num_sms: int
) -> int:
    """Smallest ``X >= start`` making ``(X, other_extent)`` wave-free.

    Used by the advisor to suggest padded dimensions.  Searches upward
    one tile row at a time; guaranteed to terminate because the block
    count along X increments by one per ``tile_1`` step and every
    residue class mod ``num_sms`` is eventually hit.
    """
    x = start
    limit = start + tile_1 * num_sms * max(tile_2, 1)
    while x <= limit:
        if wave_quantization_free(x, other_extent, tile_1, tile_2, num_sms):
            return x
        # Jump to the next multiple of tile_1 (only tile-grid boundaries
        # can change the block count).
        x = (x // tile_1 + 1) * tile_1
    raise ShapeError(
        f"no wave-free extent found above {start} within {limit}"
    )  # pragma: no cover - unreachable for valid inputs


def waves_detail(
    m: int, n: int, tile_m: int, tile_n: int, num_sms: int, blocks_per_sm: int = 1
) -> dict:
    """Convenience bundle of all quantization metrics for one GEMM."""
    blocks = num_tiles(m, n, tile_m, tile_n)
    return {
        "blocks": blocks,
        "waves": num_waves(blocks, num_sms, blocks_per_sm),
        "wave_efficiency": wave_efficiency(blocks, num_sms, blocks_per_sm),
        "tail_fraction": tail_wave_fraction(blocks, num_sms, blocks_per_sm),
        "tile_waste": tile_quantization_waste(m, n, tile_m, tile_n),
        "wave_free": wave_quantization_free(m, n, tile_m, tile_n, num_sms),
    }


def quantized_extent(extent: int, tile: int) -> int:
    """Round ``extent`` up to a whole number of tiles."""
    return tiles_along(extent, tile) * tile


def wave_period_elements(tile: int, num_sms: int, other_blocks: int) -> int:
    """Elements of growth along one dimension between wave cliffs.

    With ``other_blocks`` tiles along the fixed dimension, each
    ``tile``-element step along the swept dimension adds
    ``other_blocks`` blocks, so a full wave of ``num_sms`` blocks is
    crossed every ``ceil(num_sms / other_blocks)`` steps.  This is why
    the sawtooth period in Figs 8/9 differs per attention-head count.
    """
    _check_positive(tile=tile, num_sms=num_sms, other_blocks=other_blocks)
    return tile * max(1, math.ceil(num_sms / other_blocks))
