"""Tensor Core alignment rules and efficiency curves.

The paper's central microarchitectural observation (Sec III-B, VI-B) is:

- Tensor Cores are *fully* utilized when every GEMM dimension (m, n, k)
  is a multiple of ``tc_align_bytes`` (16 B on V100 -> 8 FP16 elements;
  128 B on A100/H100 -> 64 FP16 elements).
- Below full alignment, "Tensor Cores perform better with larger
  multiples of 2": throughput is ordered by the largest power of two
  dividing the dimension, saturating at 64 elements (Figs 7, 21-47).
- Dimensions that do not even meet the MMA instruction granularity
  (8 FP16 elements = 16 bytes) force padding or the vector-unit path,
  with a large penalty.

We encode this as a per-dimension efficiency in (0, 1] that is a
monotone function of ``min(largest_pow2_divisor(dim), full_align)``,
and combine dimensions by taking the minimum (the worst-aligned
dimension gates the MMA pipeline, because every MMA instruction
consumes fixed-size fragments along all three dimensions).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ShapeError
from repro.gpu.specs import GPUSpec
from repro.types import DType


def largest_pow2_divisor(n: int) -> int:
    """Largest power of two dividing ``n`` (``n & -n`` for positive n).

    >>> largest_pow2_divisor(80)
    16
    >>> largest_pow2_divisor(96)
    32
    >>> largest_pow2_divisor(7)
    1
    """
    if n <= 0:
        raise ShapeError(f"dimension must be positive, got {n}")
    return n & -n


def tensor_core_eligible(dims: Iterable[int], dtype: DType, spec: GPUSpec) -> bool:
    """Whether a GEMM with the given dims can run on the matrix engines.

    Requires the dtype to have a matrix path on this architecture and
    every dimension to be a multiple of the minimum MMA granularity.
    cuBLAS can pad odd shapes onto tensor cores at a cost; that cost is
    captured by :func:`dim_efficiency` rather than a hard cliff here, so
    this predicate reflects the *unpadded* eligibility rule the paper
    states.
    """
    if not spec.supports_matrix(dtype):
        return False
    min_elems = spec.tc_min_elems(dtype)
    return all(d % min_elems == 0 for d in dims)


# Efficiency at the minimum MMA granularity (e.g. 8 FP16 elements on
# A100, where full alignment is 64).  Chosen so that the ratio between
# the pow2=64 and pow2=8 series matches the rough 2x spread visible in
# the paper's Figs 7a/7b.
_EFF_AT_MIN = 0.52
# Efficiency floor applied when a dimension is odd (pow2 divisor 1):
# cuBLAS pads to the instruction shape, wasting most fragment lanes.
_EFF_ODD = 0.22


def dim_efficiency(dim: int, dtype: DType, spec: GPUSpec) -> float:
    """Matrix-engine efficiency contribution of one GEMM dimension.

    Returns 1.0 when ``dim`` is a multiple of the full alignment
    (``spec.tc_align_elems``), and decays log-linearly in the largest
    power-of-two divisor below that, down to a padded-fragment floor for
    odd sizes.  Matches the ordering in the paper's Figs 7 and 21-47:
    each halving of the pow-2 divisor costs a roughly constant factor,
    and there is "no further benefit to going beyond 64" (Sec VI-B).
    """
    if dim <= 0:
        raise ShapeError(f"dimension must be positive, got {dim}")
    full = spec.tc_align_elems(dtype)
    min_elems = spec.tc_min_elems(dtype)
    p = min(largest_pow2_divisor(dim), full)
    if p >= full:
        return 1.0
    if p < min_elems:
        # Sub-granularity: interpolate between the odd-size floor and the
        # minimum-granularity efficiency so pow2=2,4 still beat pow2=1.
        if min_elems <= 1:
            return 1.0
        frac = math.log2(p) / math.log2(min_elems) if p > 1 else 0.0
        return _EFF_ODD + (_EFF_AT_MIN - _EFF_ODD) * frac
    if full <= min_elems:
        return 1.0
    frac = (math.log2(p) - math.log2(min_elems)) / (
        math.log2(full) - math.log2(min_elems)
    )
    return _EFF_AT_MIN + (1.0 - _EFF_AT_MIN) * frac


def gemm_alignment_efficiency(
    m: int, n: int, k: int, dtype: DType, spec: GPUSpec
) -> float:
    """Combined matrix-engine efficiency of a (m, n, k) GEMM.

    Only the *contiguous* dimensions gate the pipeline: for row-major
    operands, A is strided along k and B (and C) along n, so misaligned
    k or n defeats the vectorized 16-byte fragment loads that feed the
    MMA units on every k-loop iteration.  Misalignment of m costs only
    edge-tile padding, which the tile-quantization term accounts for
    separately — charging it here too would double count (this is why a
    GEMV with m=1 still streams at full bandwidth on real hardware).
    """
    del m  # charged via tile quantization, see docstring
    eff_k = dim_efficiency(k, dtype, spec)
    eff_n = dim_efficiency(n, dtype, spec)
    return min(eff_k, eff_n)
