"""Thread-block tile configurations and cuBLAS-like tile selection.

cuBLAS ships a family of GEMM kernels with different output-tile shapes
(e.g. 256x128 down to 32x32) and picks among them with a heuristic.  The
paper leans on two consequences:

- the most efficient tile is 128x256 (Sec VI-B), so full-throughput
  GEMMs want outputs divisible into 128x256 blocks, and
- "when the size of the GEMM is sufficiently large, PyTorch may
  automatically choose a tile size that decreases quantization effects"
  (Fig 5c) — i.e. the selection heuristic trades per-tile efficiency
  against wave/tile quantization.

:func:`select_tile` reproduces that trade-off: it scores every candidate
with the same latency expression the analytic model uses and returns the
argmin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import GPUModelError
from repro.gpu import waves
from repro.gpu.occupancy import blocks_per_sm
from repro.gpu.specs import GPUSpec
from repro.types import DType


@dataclass(frozen=True)
class TileConfig:
    """One GEMM kernel variant's output tile geometry.

    Attributes
    ----------
    m, n:
        Output tile extents (rows, cols).
    k_stage:
        Elements of the reduction dimension staged per pipeline step.
    threads:
        Threads per block.
    peak_fraction:
        Fraction of the matrix-engine peak this kernel sustains on a
        perfectly aligned, quantization-free problem.  Larger tiles
        amortize instruction and staging overhead better, hence sustain
        a higher fraction — this is why 128x256 is "the most efficient
        tile size".
    """

    m: int
    n: int
    k_stage: int
    threads: int
    peak_fraction: float

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k_stage <= 0:
            raise GPUModelError(f"tile dims must be positive: {self}")
        if not (0.0 < self.peak_fraction <= 1.0):
            raise GPUModelError(f"peak_fraction must be in (0,1]: {self}")

    @property
    def name(self) -> str:
        return f"{self.m}x{self.n}"

    @property
    def elems(self) -> int:
        return self.m * self.n


# The candidate family, roughly mirroring cuBLAS's HGEMM kernel zoo.
# peak_fraction values decrease with tile area: smaller tiles re-load
# operand fragments more often per FLOP and expose less ILP.
_CANDIDATES: Tuple[TileConfig, ...] = (
    TileConfig(256, 128, 32, 256, 0.95),
    TileConfig(128, 256, 32, 256, 0.95),
    TileConfig(128, 128, 32, 256, 0.88),
    TileConfig(256, 64, 32, 256, 0.84),
    TileConfig(64, 256, 32, 256, 0.84),
    TileConfig(128, 64, 32, 128, 0.76),
    TileConfig(64, 128, 32, 128, 0.76),
    TileConfig(64, 64, 32, 128, 0.64),
    TileConfig(64, 32, 32, 64, 0.52),
    TileConfig(32, 64, 32, 64, 0.52),
    TileConfig(32, 32, 32, 64, 0.40),
    # Thin tiles for tall/skinny problems (GEMV-like decode GEMMs).
    TileConfig(128, 16, 32, 64, 0.30),
    TileConfig(16, 128, 32, 64, 0.30),
    TileConfig(64, 16, 32, 64, 0.24),
    TileConfig(16, 64, 32, 64, 0.24),
)


def candidate_tiles(spec: GPUSpec, dtype: DType) -> Tuple[TileConfig, ...]:
    """Tile variants that fit on ``spec`` for the given dtype."""
    fitting = []
    for tile in _CANDIDATES:
        try:
            blocks_per_sm(spec, tile.m, tile.n, tile.k_stage, tile.threads, dtype)
        except GPUModelError:
            continue
        fitting.append(tile)
    if not fitting:
        raise GPUModelError(f"no tile candidate fits on {spec.name}")
    return tuple(fitting)


def default_tile() -> TileConfig:
    """The 128x256 tile the paper names as most efficient."""
    return _CANDIDATES[1]


def tile_score(
    tile: TileConfig,
    m: int,
    n: int,
    k: int,
    spec: GPUSpec,
    dtype: DType,
    batch: int = 1,
) -> float:
    """Relative compute-time score of running an (m,n,k) GEMM with ``tile``.

    Lower is better.  The score is (padded work) / (sustained rate):
    ``ceil(blocks / num_sms)`` waves, each costing one full tile of
    2*tile_m*tile_n*K flops per SM — exactly mirroring the analytic
    model's compute-time term so selection and evaluation agree.
    """
    # Feasibility check (raises when the tile does not fit the SM).
    blocks_per_sm(spec, tile.m, tile.n, tile.k_stage, tile.threads, dtype)
    blocks = batch * waves.num_tiles(m, n, tile.m, tile.n)
    n_waves = waves.num_waves(blocks, spec.num_sms)
    padded_flops = n_waves * 2.0 * tile.m * tile.n * k
    return padded_flops / tile.peak_fraction


def select_tile(
    m: int,
    n: int,
    k: int,
    spec: GPUSpec,
    dtype: DType,
    candidates: Optional[Sequence[TileConfig]] = None,
    batch: int = 1,
) -> TileConfig:
    """Pick the lowest-scoring tile for an (m,n,k) GEMM on ``spec``.

    This is the auto-selection heuristic (Fig 5c behaviour).  Passing an
    explicit single-element ``candidates`` list pins the tile, exposing
    raw quantization effects (Fig 5b behaviour).
    """
    pool = tuple(candidates) if candidates is not None else candidate_tiles(spec, dtype)
    if not pool:
        raise GPUModelError("empty tile candidate pool")
    return min(pool, key=lambda t: tile_score(t, m, n, k, spec, dtype, batch))
