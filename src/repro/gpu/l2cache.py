"""L2 reuse model for GEMM operand traffic.

A tiled GEMM re-reads each operand once per tile row/column of the
output grid, but the block scheduler rasterizes tiles in a swizzled
order so that the ~``wave_blocks`` concurrently resident tiles form a
roughly square super-tile.  Within one wave, the A-rows and B-columns
the super-tile touches are fetched once and served to all its blocks
out of L2.  DRAM traffic is therefore::

    reads(A) = M*K * ceil(grid_n / wave_n)
    reads(B) = K*N * ceil(grid_m / wave_m)
    writes(C) = M*N

with ``(wave_m, wave_n)`` the balanced factorization of the wave over
the tile grid.  This is the standard cooperative-wave traffic model and
reproduces both regimes the paper relies on: small GEMMs (grid fits in
one wave) incur only compulsory traffic — the regime of the memory-bound
attention BMMs — while huge GEMMs re-read operands a small integer
number of times, keeping them compute-bound as observed.

When the wave's operand slices exceed effective L2 capacity the reuse
degrades toward fully streamed traffic; :func:`l2_miss_rate` supplies
the blend factor.
"""

from __future__ import annotations

import math

from repro.errors import ShapeError
from repro.gpu.specs import GPUSpec
from repro.gpu.waves import tiles_along
from repro.types import DType

# Fraction of nominal L2 capacity usable for GEMM operand staging (the
# rest is consumed by writes-in-flight, metadata, and conflict misses).
_L2_EFFECTIVE_FRACTION = 0.75
# Reduction-dimension window over which cross-block reuse must survive
# in L2 (blocks in a wave sweep K loosely in step; slack of a few
# hundred elements covers the observed skew).
_K_REUSE_WINDOW = 512


def streamed_bytes(
    m: int, n: int, k: int, tile_m: int, tile_n: int, dtype: DType, batch: int = 1
) -> int:
    """DRAM traffic with no inter-tile reuse at all.

    Each of the ``gm x gn`` tiles loads a full ``tile_m x k`` slice of A
    and ``k x tile_n`` slice of B; C is written once.
    """
    if min(m, n, k, batch) <= 0:
        raise ShapeError(f"GEMM dims must be positive: {(batch, m, n, k)}")
    gm = tiles_along(m, tile_m)
    gn = tiles_along(n, tile_n)
    loads = gm * gn * (tile_m + tile_n) * k * dtype.bytes
    stores = m * n * dtype.bytes
    return batch * (loads + stores)


def l2_miss_rate(working_set_bytes: int, spec: GPUSpec) -> float:
    """Fraction of reusable reads that spill to DRAM, in [0, 1]."""
    if working_set_bytes <= 0:
        raise ShapeError("working set must be positive")
    capacity = spec.l2_bytes * _L2_EFFECTIVE_FRACTION
    if working_set_bytes <= capacity:
        return 0.0
    return min(1.0, (working_set_bytes - capacity) / working_set_bytes)


def wave_super_tile(gm: int, gn: int, wave_blocks: int) -> "tuple[int, int]":
    """Balanced (wave_m, wave_n) factorization of a wave over the grid.

    Chooses a super-tile aspect ratio proportional to the grid so both
    operands are re-read a comparable number of times, which is what
    swizzled rasterization aims for.
    """
    if min(gm, gn, wave_blocks) <= 0:
        raise ShapeError("grid and wave sizes must be positive")
    w = min(wave_blocks, gm * gn)
    wave_m = max(1, min(gm, round(math.sqrt(w * gm / gn))))
    wave_n = max(1, min(gn, w // wave_m))
    return wave_m, wave_n


def effective_dram_bytes(
    m: int,
    n: int,
    k: int,
    tile_m: int,
    tile_n: int,
    spec: GPUSpec,
    dtype: DType,
    batch: int = 1,
    wave_blocks: "int | None" = None,
) -> float:
    """Modelled DRAM traffic of a (batched) tiled GEMM, in bytes.

    Always at least the compulsory traffic and at most the fully
    streamed traffic.
    """
    compulsory = batch * (m * k + k * n + m * n) * dtype.bytes
    if wave_blocks is None:
        wave_blocks = spec.num_sms
    gm = tiles_along(m, tile_m)
    gn = tiles_along(n, tile_n)

    if batch * gm * gn <= wave_blocks:
        cooperative = float(compulsory)
    else:
        wave_m, wave_n = wave_super_tile(gm, gn, wave_blocks)
        reads_a = m * k * math.ceil(gn / wave_n)
        reads_b = k * n * math.ceil(gm / wave_m)
        cooperative = float(batch * (reads_a + reads_b + m * n) * dtype.bytes)

    streamed = float(streamed_bytes(m, n, k, tile_m, tile_n, dtype, batch))
    # Cross-block reuse requires the wave's operand slices (over a
    # bounded k window) to stay L2-resident; degrade toward streamed
    # traffic when they do not fit.
    wave_m, wave_n = wave_super_tile(gm, gn, wave_blocks)
    ws = (
        (wave_m * tile_m + wave_n * tile_n)
        * min(k, _K_REUSE_WINDOW)
        * dtype.bytes
    )
    miss = l2_miss_rate(max(ws, 1), spec)
    traffic = cooperative + (streamed - cooperative) * miss
    return min(max(traffic, float(compulsory)), streamed)
