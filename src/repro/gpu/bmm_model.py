"""Batched matrix multiplication (BMM) performance model.

The attention score (``KQ^T``) and attention-over-value computations are
BMMs of ``b*a/t`` independent small GEMMs (paper Eq. 1, Table II).  A
strided-batched kernel launches the union of the per-problem tile grids
as one grid, so the analytic GEMM model already handles it via its
``batch`` parameter; this module adds the BMM-specific conveniences the
harness and the transformer mapping use, plus the attention-specific
constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ShapeError
from repro.gpu.gemm_model import GemmModel, GemmPerf
from repro.gpu.specs import GPUSpec
from repro.gpu.tiles import TileConfig
from repro.types import DType


@dataclass(frozen=True)
class BmmShape:
    """A batch of identical GEMM problems: batch x (m,k)x(k,n)."""

    batch: int
    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.batch, self.m, self.k, self.n) <= 0:
            raise ShapeError(f"BMM dims must be positive: {self}")

    @property
    def flops(self) -> int:
        return 2 * self.batch * self.m * self.n * self.k

    def bytes(self, dtype: DType) -> int:
        return self.batch * (self.m * self.k + self.k * self.n + self.m * self.n) * dtype.bytes


class BmmModel:
    """Thin BMM facade over :class:`~repro.gpu.gemm_model.GemmModel`."""

    def __init__(
        self,
        gpu: "str | GPUSpec",
        dtype: "str | DType" = DType.FP16,
        tile: Optional[TileConfig] = None,
        candidates: Optional[Sequence[TileConfig]] = None,
    ) -> None:
        self._gemm = GemmModel(gpu, dtype, tile=tile, candidates=candidates)

    @property
    def spec(self) -> GPUSpec:
        return self._gemm.spec

    @property
    def dtype(self) -> DType:
        return self._gemm.dtype

    def evaluate(self, shape: BmmShape) -> GemmPerf:
        """Evaluate a batched GEMM."""
        return self._gemm.evaluate(shape.m, shape.n, shape.k, batch=shape.batch)

    def latency(self, shape: BmmShape) -> float:
        return self.evaluate(shape).latency_s

    def tflops(self, shape: BmmShape) -> float:
        return self.evaluate(shape).tflops

    # -- attention constructors (paper Table II) -----------------------------

    @staticmethod
    def attention_score_shape(
        b: int, s: int, h: int, a: int, t: int = 1
    ) -> BmmShape:
        """``KQ^T``: b*a/t problems of (s, h/a) x (h/a, s)."""
        _check_attention_dims(b, s, h, a, t)
        return BmmShape(batch=b * a // t, m=s, k=h // a, n=s)

    @staticmethod
    def attention_over_value_shape(
        b: int, s: int, h: int, a: int, t: int = 1
    ) -> BmmShape:
        """Scores x V: b*a/t problems of (s, s) x (s, h/a)."""
        _check_attention_dims(b, s, h, a, t)
        return BmmShape(batch=b * a // t, m=s, k=s, n=h // a)


def _check_attention_dims(b: int, s: int, h: int, a: int, t: int) -> None:
    if min(b, s, h, a, t) <= 0:
        raise ShapeError(f"attention dims must be positive: {(b, s, h, a, t)}")
    if h % a != 0:
        raise ShapeError(f"hidden size {h} not divisible by heads {a}")
    if (b * a) % t != 0:
        raise ShapeError(
            f"(b*a)={b*a} not divisible by tensor-parallel degree {t}; "
            "the paper requires (b*a)/t to be an integer"
        )
