"""Roofline arithmetic: intensity, ridge points, attainable throughput.

Small GEMMs are memory-bound (paper Sec V: "GEMMs are memory-bound for
small matrices"), and the attention score / attention-over-value BMMs
stay memory-bound at transformer sizes because one of their dimensions
is only ``h/a`` (Sec VI-A).  The roofline model decides, for each
kernel, whether the bandwidth term or the math term dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError
from repro.gpu.specs import GPUSpec
from repro.types import DType


def gemm_flops(m: int, n: int, k: int, batch: int = 1) -> int:
    """Useful floating-point operations of a (batched) GEMM: 2*b*m*n*k."""
    if min(m, n, k, batch) <= 0:
        raise ShapeError(f"GEMM dims must be positive: {(batch, m, n, k)}")
    return 2 * batch * m * n * k


def gemm_min_bytes(m: int, n: int, k: int, dtype: DType, batch: int = 1) -> int:
    """Compulsory DRAM traffic: read A and B once, write C once."""
    if min(m, n, k, batch) <= 0:
        raise ShapeError(f"GEMM dims must be positive: {(batch, m, n, k)}")
    return batch * (m * k + k * n + m * n) * dtype.bytes


def arithmetic_intensity(
    m: int, n: int, k: int, dtype: DType, batch: int = 1
) -> float:
    """FLOPs per compulsory DRAM byte of a (batched) GEMM."""
    return gemm_flops(m, n, k, batch) / gemm_min_bytes(m, n, k, dtype, batch)


def ridge_intensity(spec: GPUSpec, dtype: DType, peak_fraction: float = 1.0) -> float:
    """Arithmetic intensity at which a kernel transitions to compute-bound.

    ``peak * peak_fraction / bandwidth`` — below this intensity the
    memory system is the bottleneck.
    """
    peak = (
        spec.matrix_peak_tflops(dtype)
        if spec.supports_matrix(dtype)
        else spec.vector_peak_tflops(dtype)
    )
    return peak * peak_fraction * 1e12 / spec.mem_bw_bytes_per_s()


def attainable_tflops(
    intensity: float,
    spec: GPUSpec,
    dtype: DType,
    peak_fraction: float = 1.0,
    bw_fraction: float = 1.0,
) -> float:
    """Classic roofline: min(peak, intensity * bandwidth), in TFLOP/s."""
    if intensity <= 0:
        raise ShapeError(f"intensity must be positive, got {intensity}")
    peak = (
        spec.matrix_peak_tflops(dtype)
        if spec.supports_matrix(dtype)
        else spec.vector_peak_tflops(dtype)
    )
    mem_roof = intensity * spec.mem_bw_bytes_per_s() * bw_fraction / 1e12
    return min(peak * peak_fraction, mem_roof)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline.

    ``intensity`` is arithmetic intensity in FLOPs per DRAM byte.
    """

    intensity: float
    attainable_tflops: float
    bound: str

    @classmethod
    def for_gemm(
        cls,
        m: int,
        n: int,
        k: int,
        spec: GPUSpec,
        dtype: DType,
        batch: int = 1,
        peak_fraction: float = 1.0,
        bw_fraction: float = 1.0,
    ) -> "RooflinePoint":
        ai = arithmetic_intensity(m, n, k, dtype, batch)
        tfl = attainable_tflops(ai, spec, dtype, peak_fraction, bw_fraction)
        ridge = ridge_intensity(spec, dtype, peak_fraction)
        return cls(
            intensity=ai,
            attainable_tflops=tfl,
            bound="memory" if ai < ridge else "compute",
        )
