"""Thread-block occupancy model.

How many GEMM thread blocks can be resident on one SM at once is what
turns a tile grid into *waves*.  Occupancy is limited by whichever
resource runs out first: shared memory (tile operand staging buffers),
registers (accumulator fragments), thread slots, or the hardware block
limit.  We compute each limit from the tile geometry the same way the
CUDA occupancy calculator does, at the fidelity needed for wave counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GPUModelError
from repro.gpu.specs import GPUSpec
from repro.types import DType


@dataclass(frozen=True)
class OccupancyResult:
    """Blocks-per-SM outcome and which resource limited it."""

    blocks_per_sm: int
    limiter: str
    smem_per_block: int
    regs_per_block: int
    threads_per_block: int


def smem_bytes_per_block(
    tile_m: int, tile_n: int, k_stage: int, stages: int, dtype: DType
) -> int:
    """Shared-memory staging footprint of one GEMM thread block.

    Each pipeline stage holds a ``tile_m x k_stage`` slice of A and a
    ``k_stage x tile_n`` slice of B in shared memory.
    """
    per_stage = (tile_m + tile_n) * k_stage * dtype.bytes
    return per_stage * stages


def regs_per_block(tile_m: int, tile_n: int, threads: int, acc_bytes: int = 4) -> int:
    """Register estimate: the fp32 accumulator tile plus fixed overhead.

    Every output element of the tile lives in a register for the whole
    k-loop; each thread additionally needs ~40 registers of addressing
    and staging state.
    """
    acc_regs = tile_m * tile_n * acc_bytes // 4
    return acc_regs + threads * 40


def blocks_per_sm(
    spec: GPUSpec,
    tile_m: int,
    tile_n: int,
    k_stage: int,
    threads: int,
    dtype: DType,
    stages: int = 2,
) -> OccupancyResult:
    """Maximum resident blocks per SM for a tile configuration.

    Raises :class:`GPUModelError` when even a single block does not fit
    (tile too large for this architecture's shared memory or registers).
    """
    smem = smem_bytes_per_block(tile_m, tile_n, k_stage, stages, dtype)
    regs = regs_per_block(tile_m, tile_n, threads)

    limits = {
        "smem": spec.smem_per_sm_bytes // smem if smem else spec.max_blocks_per_sm,
        "regs": spec.regs_per_sm // regs if regs else spec.max_blocks_per_sm,
        "threads": spec.max_threads_per_sm // threads,
        "blocks": spec.max_blocks_per_sm,
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks < 1:
        raise GPUModelError(
            f"tile {tile_m}x{tile_n} (k_stage={k_stage}, stages={stages}) does "
            f"not fit on one {spec.name} SM ({limiter} exhausted)"
        )
    return OccupancyResult(
        blocks_per_sm=blocks,
        limiter=limiter,
        smem_per_block=smem,
        regs_per_block=regs,
        threads_per_block=threads,
    )
