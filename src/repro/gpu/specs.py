"""GPU architecture parameter sheets.

Each :class:`GPUSpec` captures the handful of microarchitectural numbers
that determine GEMM performance shape in the paper's analysis:

- ``num_sms`` — wave quantization granularity (Sec III-B: 80 on V100,
  108 on A100, 144 on H100),
- ``tc_align_bytes`` — the byte multiple at which Tensor Cores reach
  full utilization (16 B on V100, 128 B on A100/H100 per Sec III-B),
- peak matrix-unit and vector-unit throughput per dtype,
- memory bandwidth and L2 capacity for the roofline / reuse model,
- shared memory and register file sizes for the occupancy model.

Peak numbers are the public dense (non-sparsity) datasheet figures.
Absolute values only set the y-axis scale of reproduced figures; the
*shape* of every result comes from the structural fields above.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import GPUModelError
from repro.types import DType


@dataclass(frozen=True)
class GPUSpec:
    """Parameter sheet for one GPU (or one GCD of a dual-die GPU)."""

    name: str
    vendor: str
    num_sms: int
    clock_ghz: float
    #: Peak matrix-engine (Tensor Core / Matrix Core) TFLOP/s per dtype.
    matrix_tflops: Dict[DType, float]
    #: Peak vector-unit (CUDA core / SIMD) TFLOP/s per dtype, used when a
    #: GEMM cannot be mapped onto the matrix engines at all.
    vector_tflops: Dict[DType, float]
    #: Datasheet DRAM bandwidth in GB/s.
    mem_bw_gbs: float
    l2_bytes: int
    smem_per_sm_bytes: int
    regs_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    #: Dimension-size multiple (in bytes) for full Tensor Core
    #: utilization.  Paper Sec III-B: 16 bytes on V100, 128 bytes on A100.
    tc_align_bytes: int
    #: Minimum dimension multiple (bytes) for Tensor Cores to be usable
    #: at all without padding (the MMA instruction granularity).
    tc_min_bytes: int = 16
    #: Fixed kernel launch + epilogue overhead in seconds.
    kernel_overhead_s: float = 4.0e-6
    memory_gb: float = 40.0

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise GPUModelError(f"{self.name}: num_sms must be positive")
        if self.mem_bw_gbs <= 0:
            raise GPUModelError(f"{self.name}: mem_bw_gbs must be positive")
        if self.tc_min_bytes > self.tc_align_bytes:
            raise GPUModelError(
                f"{self.name}: tc_min_bytes ({self.tc_min_bytes}) exceeds "
                f"tc_align_bytes ({self.tc_align_bytes})"
            )

    # -- throughput lookups -------------------------------------------------

    def matrix_peak_tflops(self, dtype: DType) -> float:
        """Peak matrix-engine TFLOP/s for ``dtype``.

        Raises :class:`GPUModelError` if this architecture has no matrix
        path for the dtype (e.g. FP64 tensor cores on V100).
        """
        try:
            return self.matrix_tflops[dtype]
        except KeyError:
            raise GPUModelError(
                f"{self.name} has no matrix-engine path for {dtype.name}"
            ) from None

    def vector_peak_tflops(self, dtype: DType) -> float:
        """Peak vector-unit TFLOP/s for ``dtype``."""
        try:
            return self.vector_tflops[dtype]
        except KeyError:
            raise GPUModelError(
                f"{self.name} has no vector-unit rate for {dtype.name}"
            ) from None

    def supports_matrix(self, dtype: DType) -> bool:
        """Whether the matrix engines can compute in ``dtype`` at all."""
        return dtype in self.matrix_tflops

    def mem_bw_bytes_per_s(self) -> float:
        """DRAM bandwidth in bytes/second."""
        return self.mem_bw_gbs * 1e9

    # -- alignment in elements ----------------------------------------------

    def tc_align_elems(self, dtype: DType) -> int:
        """Elements per dimension for *full* Tensor Core efficiency.

        128 bytes / 2 bytes = 64 FP16 elements on A100 (paper Sec VI-B).
        """
        return max(1, self.tc_align_bytes // dtype.bytes)

    def tc_min_elems(self, dtype: DType) -> int:
        """Elements per dimension for Tensor Cores to be usable at all."""
        return max(1, self.tc_min_bytes // dtype.bytes)

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)


def _nv(name: str, **kw) -> GPUSpec:
    return GPUSpec(name=name, vendor="NVIDIA", **kw)


# Registry of known architectures.  MI250X is modeled per-GCD (one die of
# the dual-die package) since each GCD is scheduled independently, which
# is also how per-GPU workloads see it under ROCm.
_REGISTRY: Dict[str, GPUSpec] = {}


def register_gpu(spec: GPUSpec, *, aliases: Tuple[str, ...] = ()) -> None:
    """Add a spec to the global registry under its name and aliases."""
    _REGISTRY[spec.name.lower()] = spec
    for alias in aliases:
        _REGISTRY[alias.lower()] = spec


register_gpu(
    _nv(
        "V100",
        num_sms=80,
        clock_ghz=1.53,
        matrix_tflops={DType.FP16: 112.0},
        vector_tflops={
            DType.FP32: 15.7,
            DType.FP16: 31.4,
            DType.FP64: 7.8,
            DType.BF16: 15.7,
        },
        mem_bw_gbs=900.0,
        l2_bytes=6 * 1024 * 1024,
        smem_per_sm_bytes=96 * 1024,
        regs_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        tc_align_bytes=16,
        tc_min_bytes=16,
        memory_gb=16.0,
    ),
    aliases=("v100-16gb", "v100-sxm2"),
)

register_gpu(
    get_spec := _nv(
        "A100",
        num_sms=108,
        clock_ghz=1.41,
        matrix_tflops={
            DType.FP16: 312.0,
            DType.BF16: 312.0,
            DType.TF32: 156.0,
            DType.FP64: 19.5,
            DType.INT8: 624.0,
        },
        vector_tflops={
            DType.FP32: 19.5,
            DType.FP16: 78.0,
            DType.BF16: 39.0,
            DType.FP64: 9.7,
        },
        mem_bw_gbs=1555.0,
        l2_bytes=40 * 1024 * 1024,
        smem_per_sm_bytes=164 * 1024,
        regs_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        tc_align_bytes=128,
        tc_min_bytes=16,
        memory_gb=40.0,
    ),
    aliases=("a100-40gb", "a100-sxm4"),
)

register_gpu(
    get_spec.with_overrides(name="A100-80GB", mem_bw_gbs=2039.0, memory_gb=80.0),
    aliases=("a100-80",),
)

register_gpu(
    _nv(
        "H100",
        # The paper's wave-quantization rule uses 144 SMs for H100
        # (Sec VI-B); we follow the paper.
        num_sms=144,
        clock_ghz=1.83,
        matrix_tflops={
            DType.FP16: 989.0,
            DType.BF16: 989.0,
            DType.TF32: 494.0,
            DType.FP64: 67.0,
            DType.INT8: 1979.0,
        },
        vector_tflops={
            DType.FP32: 67.0,
            DType.FP16: 134.0,
            DType.BF16: 134.0,
            DType.FP64: 34.0,
        },
        mem_bw_gbs=3350.0,
        l2_bytes=50 * 1024 * 1024,
        smem_per_sm_bytes=228 * 1024,
        regs_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        tc_align_bytes=128,
        tc_min_bytes=16,
        memory_gb=80.0,
    ),
    aliases=("h100-sxm5", "h100-80gb"),
)

register_gpu(
    GPUSpec(
        name="MI250X",
        vendor="AMD",
        # One GCD: 104 active CUs.
        num_sms=104,
        clock_ghz=1.7,
        matrix_tflops={
            DType.FP16: 191.5,
            DType.BF16: 191.5,
            DType.FP32: 47.9,
            DType.FP64: 47.9,
        },
        vector_tflops={
            DType.FP32: 23.9,
            DType.FP16: 47.9,
            DType.BF16: 23.9,
            DType.FP64: 23.9,
        },
        mem_bw_gbs=1638.0,
        l2_bytes=8 * 1024 * 1024,
        smem_per_sm_bytes=64 * 1024,
        regs_per_sm=65536,
        max_threads_per_sm=2048,
        max_blocks_per_sm=32,
        # MFMA instructions want multiples of 32 bytes (16 fp16 elems);
        # full efficiency at 64-element multiples like CDNA2 docs suggest.
        tc_align_bytes=128,
        tc_min_bytes=32,
        memory_gb=64.0,
    ),
    aliases=("mi250x-gcd", "mi250"),
)


def get_gpu(name: "str | GPUSpec") -> GPUSpec:
    """Look up a GPU spec by (case-insensitive) name or pass one through."""
    if isinstance(name, GPUSpec):
        return name
    try:
        return _REGISTRY[str(name).strip().lower()]
    except KeyError:
        known = ", ".join(sorted({s.name for s in _REGISTRY.values()}))
        raise GPUModelError(f"unknown GPU {name!r}; known: {known}") from None


def list_gpus() -> Tuple[GPUSpec, ...]:
    """All distinct registered GPU specs, sorted by name."""
    seen = {}
    for spec in _REGISTRY.values():
        seen[spec.name] = spec
    return tuple(sorted(seen.values(), key=lambda s: s.name))
