"""Analytic GEMM latency/throughput model.

This is the reproduction's replacement for timing cuBLAS kernels on real
GPUs.  For a (possibly batched) GEMM of shape ``(m, k) x (k, n)`` it
composes, from first principles:

1. **Tile selection** — cuBLAS-like argmin over kernel variants
   (:mod:`repro.gpu.tiles`), or a caller-pinned tile.
2. **Compute time** — waves of thread blocks across the SMs, where each
   (possibly partial) wave costs a full wave: this makes tile and wave
   quantization *emergent* rather than bolted on.
3. **Alignment efficiency** — the Tensor Core pow-2 divisibility curve
   (:mod:`repro.gpu.alignment`) degrades the sustained math rate, and a
   softer version of the same curve degrades achievable bandwidth
   (misaligned leading dimensions defeat vectorized 16-byte copies).
4. **Memory time** — modelled DRAM traffic with L2 reuse
   (:mod:`repro.gpu.l2cache`) over the effective bandwidth.
5. **Fixed kernel overhead** — launch + epilogue, which dominates
   tiny GEMMs and decode-time GEMVs.

Latency is ``max(compute, memory) + overhead`` and throughput is the
*useful* FLOPs (2·b·m·n·k) over that latency, so quantization waste
shows up as reduced TFLOP/s exactly as it does on hardware.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine import cache as engine_cache
from repro.errors import GPUModelError, ShapeError
from repro.gpu import waves as wv
from repro.gpu.alignment import (
    dim_efficiency,
    gemm_alignment_efficiency,
    tensor_core_eligible,
)
from repro.gpu.l2cache import effective_dram_bytes
from repro.gpu.occupancy import blocks_per_sm
from repro.gpu.roofline import gemm_flops
from repro.gpu.specs import GPUSpec, get_gpu
from repro.gpu.tiles import TileConfig, candidate_tiles, select_tile
from repro.types import DType, TimeEstimate, teraflops

# Fraction of datasheet DRAM bandwidth a well-tuned kernel achieves.
_BW_EFFICIENCY = 0.82


def _memory_parallelism(blocks: int, num_sms: int, wave_eff: float) -> float:
    """Bandwidth utilization factor from thread-block occupancy.

    Multi-wave grids run at their wave efficiency (the tail wave has
    only ``tail/num_sms`` of the SMs issuing loads for the same wave
    duration); sub-wave grids saturate DRAM sub-linearly in occupancy.
    """
    if blocks >= num_sms:
        return wave_eff
    return (blocks / num_sms) ** 0.35


@dataclass(frozen=True)
class GemmPerf:
    """Full performance report for one (batched) GEMM evaluation.

    ``tile_waste`` is the fraction of launched tile area outside the
    problem (0 = perfect edge fit).
    """

    m: int
    n: int
    k: int
    batch: int
    dtype: DType
    gpu: str
    tile: TileConfig
    blocks: int
    blocks_per_sm: int
    waves: int
    time: TimeEstimate
    flops: int
    dram_bytes: float
    alignment_eff: float
    wave_eff: float
    tile_waste: float
    used_matrix_engine: bool

    @property
    def latency_s(self) -> float:
        return self.time.total_s

    @property
    def tflops(self) -> float:
        """Useful-FLOPs throughput in TFLOP/s."""
        return teraflops(self.flops, self.time.total_s)

    @property
    def bound(self) -> str:
        return self.time.bound

    def describe(self) -> str:
        """One-line human summary."""
        shape = f"{self.batch}x" if self.batch > 1 else ""
        return (
            f"GEMM {shape}({self.m}x{self.k})x({self.k}x{self.n}) on {self.gpu}: "
            f"{self.tflops:.1f} TFLOP/s ({self.bound}-bound, tile {self.tile.name}, "
            f"{self.waves} waves, align eff {self.alignment_eff:.2f})"
        )


class GemmModel:
    """Analytic performance model of GEMM kernels on one GPU.

    Parameters
    ----------
    gpu:
        A :class:`~repro.gpu.specs.GPUSpec` or registered name
        (``"A100"``, ``"V100"``, ``"H100"``, ``"MI250X"``).
    dtype:
        Element type of the GEMM operands (default FP16, the paper's
        setting).
    tile:
        Pin a specific tile (exposes raw quantization, Fig 5b).  When
        ``None`` the model auto-selects like the cuBLAS heuristic
        (Fig 5c).
    bw_efficiency:
        Fraction of datasheet bandwidth achievable; default 0.82.
    """

    def __init__(
        self,
        gpu: "str | GPUSpec",
        dtype: "str | DType" = DType.FP16,
        tile: Optional[TileConfig] = None,
        candidates: Optional[Sequence[TileConfig]] = None,
        bw_efficiency: float = _BW_EFFICIENCY,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self.fixed_tile = tile
        self.candidates = tuple(candidates) if candidates is not None else None
        if (
            self.fixed_tile is None
            and self.candidates is not None
            and self.candidates == tuple(candidate_tiles(self.spec, self.dtype))
        ):
            # Spelling out the default pool is the same policy as "auto":
            # collapsing the two keeps callers that pass the pool
            # explicitly on the same memo entries as callers that don't.
            self.candidates = None
        if not (0.0 < bw_efficiency <= 1.0):
            raise ShapeError(f"bw_efficiency must be in (0,1]: {bw_efficiency}")
        self.bw_efficiency = bw_efficiency
        # Evaluation is a pure function of (shape, spec, dtype, tile
        # policy, bw efficiency, model constants); this prefix plus the
        # live model version keys the global scalar memo.  Digesting the
        # big nested policy tuple down to one interned string makes every
        # memo lookup hash a short str instead of re-hashing the whole
        # spec fingerprint.
        self._memo_prefix = sys.intern(
            engine_cache.digest_key(
                (
                    engine_cache.spec_key(self.spec),
                    self.dtype.name,
                    engine_cache.tile_policy_key(self.fixed_tile, self.candidates),
                    self.bw_efficiency,
                )
            )
        )

    # -- internals -----------------------------------------------------------

    def _pick_tile(self, m: int, n: int, k: int, batch: int = 1) -> TileConfig:
        if self.fixed_tile is not None:
            return self.fixed_tile
        return select_tile(m, n, k, self.spec, self.dtype, self.candidates, batch)

    def _math_rate_flops(self, align_eff: float, tile: TileConfig) -> "tuple[float, bool]":
        """Sustained whole-GPU math rate (FLOP/s) and matrix-path flag.

        Chooses the faster of the matrix-engine path (degraded by
        alignment) and the vector-unit fallback, as a mature BLAS
        library effectively does.
        """
        spec, dtype = self.spec, self.dtype
        rates = []
        if spec.supports_matrix(dtype):
            rates.append(
                (spec.matrix_peak_tflops(dtype) * 1e12 * align_eff * tile.peak_fraction, True)
            )
        if dtype in spec.vector_tflops:
            rates.append(
                (spec.vector_peak_tflops(dtype) * 1e12 * tile.peak_fraction, False)
            )
        if not rates:
            raise GPUModelError(
                f"{spec.name} has neither a matrix nor a vector path for "
                f"{dtype.name}"
            )
        return max(rates, key=lambda r: r[0])

    # Exponent applied to the alignment efficiency when degrading the
    # memory pipeline.  Misaligned leading dimensions defeat 16-byte
    # vectorized global/shared accesses (cp.async needs 4/8/16-byte
    # aligned segments), so the same shapes that starve the math pipes
    # also slow the copy pipeline — slightly less steeply (<1 exponent).
    _BW_ALIGN_EXPONENT = 0.8

    def _bandwidth_factor(self, m: int, n: int, k: int) -> float:
        """Alignment-driven degradation of achievable DRAM bandwidth."""
        eff = gemm_alignment_efficiency(m, n, k, self.dtype, self.spec)
        return eff ** self._BW_ALIGN_EXPONENT

    # -- public API ------------------------------------------------------------

    def evaluate(self, m: int, n: int, k: int, batch: int = 1) -> GemmPerf:
        """Estimate latency and throughput of ``batch`` x (m,k)x(k,n).

        A batch is executed as one kernel whose grid is the union of the
        per-problem tile grids (how cuBLAS strided-batched GEMM works),
        so wave quantization acts on the *total* block count.

        Results are memoized in the process-wide scalar cache
        (:func:`repro.engine.cache.scalar_memo`); the key embeds the
        live model version, so calibration runs that mutate the
        alignment constants never see stale entries.
        """
        # Canonicalize shape fields: sweeps hand us a mix of Python
        # ints, numpy integers, and integral floats for the *same*
        # logical shape — int() collapses them onto one memo entry.
        m, n, k, batch = int(m), int(n), int(k), int(batch)
        if not engine_cache.scalar_memo_enabled():
            return self._evaluate_uncached(m, n, k, batch)
        key = (self._memo_prefix, engine_cache.model_version(), m, n, k, batch)
        memo = engine_cache.scalar_memo()
        hit = memo.get(key)
        if hit is not None:
            return hit
        perf = self._evaluate_uncached(m, n, k, batch)
        memo.put(key, perf)
        return perf

    def _evaluate_uncached(self, m: int, n: int, k: int, batch: int = 1) -> GemmPerf:
        if min(m, n, k, batch) <= 0:
            raise ShapeError(f"GEMM dims must be positive: {(batch, m, n, k)}")
        spec, dtype = self.spec, self.dtype

        tile = self._pick_tile(m, n, k, batch)
        occ = blocks_per_sm(spec, tile.m, tile.n, tile.k_stage, tile.threads, dtype)

        blocks_one = wv.num_tiles(m, n, tile.m, tile.n)
        blocks = batch * blocks_one
        n_waves = wv.num_waves(blocks, spec.num_sms)
        wave_eff = wv.wave_efficiency(blocks, spec.num_sms)
        tile_waste = wv.tile_quantization_waste(m, n, tile.m, tile.n)

        align_eff = gemm_alignment_efficiency(m, n, k, dtype, spec)
        rate, used_matrix = self._math_rate_flops(align_eff, tile)
        if not used_matrix:
            # Vector path has no fragment-alignment constraint.
            align_eff = 1.0

        # Blocks execute in waves of one tile per SM; each (possibly
        # partial) wave costs one full tile's time at the per-SM
        # sustained rate, which makes tile and wave quantization
        # emergent.  (Multiple resident blocks per SM pipeline each
        # other but share the same math throughput, so the per-SM
        # block *rate* — and hence this expression — is unchanged;
        # their latency-hiding benefit is inside tile.peak_fraction.)
        k_padded = -(-k // tile.k_stage) * tile.k_stage
        tile_flops = 2.0 * tile.m * tile.n * k_padded
        sm_rate = rate / spec.num_sms  # unit: flops/second
        compute_s = n_waves * tile_flops / sm_rate

        dram_bytes = effective_dram_bytes(
            m,
            n,
            k,
            tile.m,
            tile.n,
            spec,
            dtype,
            batch,
            wave_blocks=spec.num_sms * occ.blocks_per_sm,
        )
        # Achieved bandwidth needs enough in-flight thread blocks.
        # Above one full wave, the partial tail wave runs at its
        # occupancy's worth of memory-level parallelism — this is how
        # wave quantization shows up even in memory-bound kernels (the
        # sawtooth and near-2x cliffs of Figs 5b/8/9).  Below one wave
        # the penalty is gentler (DRAM saturates well under full
        # occupancy when there is no tail to wait for).
        mlp_util = _memory_parallelism(blocks, spec.num_sms, wave_eff)
        bw = (
            spec.mem_bw_bytes_per_s()
            * self.bw_efficiency
            * self._bandwidth_factor(m, n, k)
            * mlp_util
        )
        memory_s = dram_bytes / bw

        overhead = spec.kernel_overhead_s
        total = max(compute_s, memory_s) + overhead

        return GemmPerf(
            m=m,
            n=n,
            k=k,
            batch=batch,
            dtype=dtype,
            gpu=spec.name,
            tile=tile,
            blocks=blocks,
            blocks_per_sm=occ.blocks_per_sm,
            waves=n_waves,
            time=TimeEstimate(
                total_s=total,
                compute_s=compute_s,
                memory_s=memory_s,
                overhead_s=overhead,
            ),
            flops=gemm_flops(m, n, k, batch),
            dram_bytes=dram_bytes,
            alignment_eff=align_eff,
            wave_eff=wave_eff,
            tile_waste=tile_waste,
            used_matrix_engine=used_matrix,
        )

    def latency(self, m: int, n: int, k: int, batch: int = 1) -> float:
        """Latency in seconds (shorthand for ``evaluate(...).latency_s``)."""
        return self.evaluate(m, n, k, batch).latency_s

    def tflops(self, m: int, n: int, k: int, batch: int = 1) -> float:
        """Throughput in TFLOP/s (shorthand for ``evaluate(...).tflops``)."""
        return self.evaluate(m, n, k, batch).tflops

    def tensor_core_eligible(self, m: int, n: int, k: int) -> bool:
        """Whether this shape meets the unpadded Tensor Core rule."""
        return tensor_core_eligible((m, n, k), self.dtype, self.spec)
