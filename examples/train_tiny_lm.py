#!/usr/bin/env python
"""Train a tiny LM end-to-end with the library's own backward pass.

This exercises the full training stack the performance models describe:
the NumPy forward, the explicit backward (every dgrad/wgrad GEMM of the
training mapping), and Adam — on a first-order Markov corpus whose
conditional entropy is known exactly, so learning has a measurable
target: the loss should fall from ~ln(v) at init toward the chain's
entropy floor.

Run:  python examples/train_tiny_lm.py
"""

import numpy as np

from repro.transformer.data import MarkovCorpus
from repro.transformer.model import DecoderModel
from repro.transformer.optim import Adam, parameter_registry, train
from repro.transformer.trace import OpTrace
from repro.transformer.backward import loss_and_gradients


def main() -> None:
    vocab, seq, batch = 32, 32, 16
    corpus = MarkovCorpus(vocab_size=vocab, concentration=0.05, seed=0)
    floor = corpus.conditional_entropy()
    print(f"Markov corpus: v={vocab}, conditional entropy floor {floor:.3f} nats")
    print(f"untrained loss should be ~ln(v) = {np.log(vocab):.3f}\n")

    model = DecoderModel(
        vocab_size=vocab,
        max_seq=seq,
        hidden_size=32,
        num_heads=4,
        num_layers=2,
        rng=np.random.default_rng(0),
    )
    optimizer = Adam(parameter_registry(model), lr=3e-3, clip=1.0)

    losses = []

    def log(step: int, loss: float) -> None:
        losses.append(loss)
        if step % 10 == 0:
            print(f"  step {step:>3}  loss {loss:.3f}")

    final = train(model, corpus.batches(seq, batch, steps=60), optimizer, on_step=log)
    print(f"\nfinal loss {final:.3f} (floor {floor:.3f}, init ~{np.log(vocab):.3f})")
    assert final < 0.6 * np.log(vocab), "training failed to learn the chain"

    # The training step's GEMMs are exactly the analytic training
    # mapping — show the 1:2 forward:backward FLOP split on a real step.
    trace = OpTrace()
    loss_and_gradients(model, corpus.sample(seq, batch), trace)
    fwd = sum(r.flops for r in trace if "." not in r.module)
    bwd = sum(r.flops for r in trace if "." in r.module)
    print(
        f"\none training step executed {len(trace)} matmuls: "
        f"{fwd / 1e6:.1f} MFLOP forward, {bwd / 1e6:.1f} MFLOP backward "
        f"(ratio {bwd / fwd:.1f})"
    )


if __name__ == "__main__":
    main()
