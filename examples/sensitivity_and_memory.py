#!/usr/bin/env python
"""Plan a training run: sensitivity ranking + memory budgeting.

Two practitioner questions the paper's rules feed into:

1. *Which knob should I touch first?* — the what-if analyzer perturbs
   every shape hyperparameter within its feasible neighbourhood and
   ranks the payoffs.
2. *How big can my microbatch be?* — "b as large as possible" (rule 2)
   is a memory constraint; the budget calculator answers it per
   sharding choice, with and without activation recomputation.

Run:  python examples/sensitivity_and_memory.py
"""

from repro import get_model
from repro.core.memory import (
    MemoryBudget,
    inference_bytes,
    max_microbatch,
    training_bytes,
)
from repro.core.whatif import WhatIfAnalyzer


def main() -> None:
    cfg = get_model("gpt-neo-2.7b")  # the 2.7B clone with v=50257

    print("=== 1. What should I change first? ===")
    print(WhatIfAnalyzer("A100").report(cfg))

    print("\n=== 2. Memory planning on A100-40GB ===")
    budget = MemoryBudget.for_gpu("A100")
    base = cfg.with_overrides(microbatch=1)
    usage = training_bytes(base)
    print(
        f"unsharded training footprint at b=1: {usage.gb():.1f} GB "
        f"(states {usage.weights_and_optimizer / 1e9:.1f} GB + "
        f"activations {usage.activations / 1e9:.1f} GB) "
        f"vs budget {budget.usable_bytes / 1e9:.1f} GB"
    )

    print("\nmax microbatch per sharding (t x p), plain vs recompute:")
    for t, p in ((2, 2), (4, 2), (4, 4), (8, 4)):
        sharded = base.with_overrides(tp_degree=t)
        plain = max_microbatch(sharded, budget, pipeline_stages=p)
        recomp = max_microbatch(
            sharded, budget, pipeline_stages=p, recompute_activations=True
        )
        print(f"  t={t} p={p}:  b_max={plain:>3} plain, {recomp:>3} with recompute")

    print("\n=== 3. Serving footprints ===")
    for name in ("pythia-2.8b", "mistral-7b", "llama2-70b"):
        model = get_model(name, microbatch=1)
        usage = inference_bytes(model, context_len=8192)
        print(
            f"  {name:<12} weights {usage.weights_and_optimizer / 1e9:6.1f} GB  "
            f"kv@8k {usage.kv_cache / 1e9:6.2f} GB  total {usage.gb():6.1f} GB"
        )
    print(
        "\nNote mistral-7b's tiny KV cache: grouped-query attention (kv=8)"
        "\nplus the 4096-token sliding window bound it."
    )


if __name__ == "__main__":
    main()
