#!/usr/bin/env python
"""Case study: retuning GPT-3 2.7B for the hardware (paper Sec VI-B).

GPT-3 2.7B (h=2560, a=32) has head dim h/a = 80, whose largest power-of-
two factor is only 16 — starving the attention BMMs of Tensor Core
alignment.  This shape was copied by GPT-Neo, OPT, RedPajama and Pythia.
The paper's fix: keep h (so parameters are identical) and change the
head count.  This script reproduces that search and the Fig 1
comparison.

Run:  python examples/optimize_model_shape.py
"""

from repro import LayerLatencyModel, ShapeAdvisor, get_model


def main() -> None:
    base = get_model("gpt3-2.7b")
    model = LayerLatencyModel("A100")

    print("Fig 1: single-layer throughput of equal-parameter 2.7B shapes")
    shapes = {
        "GPT-3 2.7B (default)": base,
        "C1 (a=64, h/a=40)": get_model("c1"),
        "C2 (a=40, h/a=64)": get_model("c2"),
        "paper fix (a=20, h/a=128)": base.with_overrides(num_heads=20),
    }
    for label, cfg in shapes.items():
        tput = model.layer_throughput_tflops(cfg)
        print(
            f"  {label:<28} h/a={cfg.head_dim:<4} {tput:7.1f} TFLOP/s "
            f"({cfg.param_count() / 1e9:.2f}B params)"
        )

    print("\nAdvisor proposals (equal parameter budget):")
    advisor = ShapeAdvisor("A100")
    for i, prop in enumerate(advisor.propose(base, top=5), 1):
        print(f"  #{i} {prop.config.name:<18} speedup {prop.speedup:.2f}x"
              f"  params {prop.param_ratio:.3f}x")
        print(f"     {prop.rationale}")

    best = advisor.best(base)
    print(
        f"\nBest retune: {best.config.name} — {best.speedup:.2f}x faster "
        f"forward pass at identical parameter count\n"
        f"(the paper reports 1.18x end-to-end for this fix)"
    )

    # The alternative the paper mentions — widening h to 4096 — doubles
    # the parameter count, which is why head retuning is preferred.
    wide = get_model("gpt3-2.7b-wide")
    print(
        f"\nFor contrast, the h=4096 alternative: "
        f"{wide.param_count() / 1e9:.2f}B params "
        f"({wide.param_count() / base.param_count():.2f}x the model)"
    )


if __name__ == "__main__":
    main()
