#!/usr/bin/env python
"""Profile a real training step: executed matmuls -> modelled kernel time.

Closes the paper's Fig 2/11 loop end to end: run an actual (small)
NumPy forward *and backward* pass, record every matmul the computation
executed, price each one on the GPU model, and print the per-module
profile a hardware profiler would show — no hand-derived mapping in the
middle.

Run:  python examples/profile_training_step.py
"""

import numpy as np

from repro import DecoderModel, OpTrace, TraceProfiler
from repro.transformer.backward import loss_and_gradients


def main() -> None:
    model = DecoderModel(
        vocab_size=512,
        max_seq=64,
        hidden_size=256,
        num_heads=4,
        num_layers=4,
        rng=np.random.default_rng(0),
    )
    ids = np.random.default_rng(1).integers(0, 512, size=(64, 4))

    trace = OpTrace()
    loss, _grads = loss_and_gradients(model, ids, trace)
    print(
        f"executed one training step: loss {loss:.3f}, "
        f"{len(trace)} matmuls, {trace.flops() / 1e9:.2f} GFLOP"
    )

    fwd = sum(r.flops for r in trace if "." not in r.module)
    bwd = sum(r.flops for r in trace if "." in r.module)
    print(f"forward:backward FLOP split = 1 : {bwd / fwd:.1f}\n")

    profiler = TraceProfiler("A100")
    print(profiler.as_table(trace, title="Training step, priced on A100"))

    # The headline structure the paper's Figs 2/11 report, from the
    # *executed* ops: dense GEMMs dominate; attention BMMs are small.
    profiles = profiler.profile(trace)
    total = sum(p.latency_s for p in profiles)
    dense = sum(
        p.latency_s
        for p in profiles
        if p.module.split(".")[0]
        in ("qkv_transform", "attention_projection", "mlp_h_to_4h", "mlp_4h_to_h", "logit")
    )
    print(
        f"\ndense GEMMs (QKV/proj/MLP/logit incl. backward): "
        f"{100 * dense / total:.1f}% of modelled kernel time"
    )


if __name__ == "__main__":
    main()
