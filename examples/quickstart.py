#!/usr/bin/env python
"""Quickstart: evaluate GEMM shapes and diagnose a transformer config.

Walks through the library's core loop in five steps:

1. ask the GPU model how fast a GEMM shape runs,
2. see the paper's alignment effect (k=80 vs k=64 vs k=128),
3. map a transformer to its Table II GEMMs,
4. get a latency breakdown for a named model,
5. run the Sec VI-B sizing rules on it.

Run:  python examples/quickstart.py
"""

from repro import GemmModel, LayerLatencyModel, RuleEngine, get_model
from repro.core.gemms import layer_gemms


def main() -> None:
    # 1. One GEMM on one GPU.
    gemm = GemmModel("A100")
    perf = gemm.evaluate(8192, 10240, 2560)  # GPT-3 2.7B's MLP up-projection
    print("A single GEMM:")
    print(" ", perf.describe())

    # 2. The alignment effect: same-size GEMMs, different k divisibility.
    print("\nAlignment effect (m=n=4096, useful-FLOP throughput):")
    for k in (64, 80, 96, 128):
        p = gemm.evaluate(4096, 4096, k)
        print(
            f"  k={k:<4} pow2={k & -k:<4} {p.tflops:7.1f} TFLOP/s"
            f"  (alignment efficiency {p.alignment_eff:.2f})"
        )

    # 3. A transformer layer as GEMMs (paper Table II).
    cfg = get_model("gpt3-2.7b")
    print(f"\n{cfg.describe()}")
    print("Table II operators of one layer:")
    for op in layer_gemms(cfg):
        batch = f"{op.batch} x " if op.batch > 1 else ""
        print(f"  {op.module:<22} {batch}({op.m} x {op.k}) x ({op.k} x {op.n})")

    # 4. Where the time goes.
    model = LayerLatencyModel("A100")
    print("\nModel forward-pass latency breakdown:")
    print(model.model_breakdown(cfg).summary())

    # 5. The paper's sizing rules.
    print("\nSizing-rule diagnostics:")
    for diag in RuleEngine("A100").check(cfg):
        if diag.severity.name != "OK":
            print(f"  {diag}")


if __name__ == "__main__":
    main()
