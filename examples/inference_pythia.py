#!/usr/bin/env python
"""Case study: shape effects at inference time (paper Sec VII-C, Fig 13).

The paper's claim: models trained efficiently on a GPU also infer
efficiently on it, because the forward-pass GEMMs are the same.  The
Pythia suite makes this visible — Pythia-1B (16 layers, 8 heads,
h=2048) sits *below* the suite's latency-vs-parameters trend while
Pythia-410M (24 layers, 16 heads, h=1024) sits above it.

Run:  python examples/inference_pythia.py
"""

from repro import InferenceModel, get_model
from repro.inference.pythia import run_suite


def main() -> None:
    print("Pythia suite: modelled per-token decode latency on A100")
    print(f"{'model':<14} {'params':>8} {'ms/token':>9} {'trend':>8} {'residual':>9}")
    for point in run_suite():
        flag = ""
        if point.name == "pythia-410m":
            flag = "  <- above trend (deep + narrow)"
        elif point.name == "pythia-1b":
            flag = "  <- below trend (shallow + wide)"
        print(
            f"{point.name:<14} {point.params / 1e6:7.0f}M "
            f"{point.latency_ms:9.3f} {point.predicted_ms:8.3f} "
            f"{point.residual:+9.3f}{flag}"
        )

    # Decompose the off-trend pair's decode step.
    model = InferenceModel("A100")
    print("\nDecode-step decomposition at 512 tokens of context:")
    for name in ("pythia-410m", "pythia-1b"):
        cfg = get_model(name)
        step = model.decode_step(cfg, context_len=512)
        print(
            f"  {name:<14} weights {step.weight_s * 1e3:6.3f} ms  "
            f"kv {step.kv_cache_s * 1e3:6.3f} ms  "
            f"kernel overhead {step.overhead_s * 1e3:6.3f} ms  "
            f"-> {step.latency_s * 1e3:6.3f} ms/token"
        )
    print(
        "\n410M's 24 layers launch 1.5x the kernels of 1B's 16 layers, and\n"
        "its narrow h=1024 GEMMs amortize overhead poorly — shape, not\n"
        "size, separates them."
    )

    print("\nEnd-to-end generation (prompt 128, generate 128, batch 1):")
    for name in ("pythia-160m", "pythia-410m", "pythia-1b", "pythia-2.8b"):
        cfg = get_model(name)
        total = model.generate_latency(cfg, prompt_len=128, new_tokens=128)
        print(f"  {name:<14} {total:.3f} s")


if __name__ == "__main__":
    main()
