#!/usr/bin/env python
"""Case study: sizing a SwiGLU MLP (paper Sec VII-B).

SwiGLU adds a third MLP matrix, so its intermediate width is nominally
shrunk to 8h/3 to hold parameters constant.  For h=4096 that suggests
10922.67 — and rounding to 10923 leaves an odd dimension that breaks
every alignment the paper's rules fought for.  The fix is to treat 8/3
as a suggestion and brute-force nearby widths; Llama-2-7B's published
11008 (= 2^8 * 43) is exactly such a choice.

Run:  python examples/swiglu_search.py
"""

from repro.autotune.swiglu import candidate_for, swiglu_intermediate_search


def main() -> None:
    h = 4096
    nominal = 8 * h / 3
    print(f"h = {h}; nominal SwiGLU width 8h/3 = {nominal:.2f}")

    candidates = swiglu_intermediate_search(
        h=h, gpu="A100", window=0.06, step=8, must_include=[round(nominal)]
    )
    print(f"searched {len(candidates)} widths within ±6% of nominal\n")

    print("Top widths by MLP-block GEMM efficiency:")
    for cand in candidates[:8]:
        print("  " + cand.describe())

    llama = candidate_for(candidates, 11008)
    naive = candidate_for(candidates, round(nominal))
    print(f"\nLlama-2-7B's published choice:  {llama.describe()}")
    print(f"Naive rounding of 8h/3:         {naive.describe()}")
    print(
        f"\nThe naive width costs {naive.latency_s / llama.latency_s:.2f}x "
        "the block latency of Llama's choice — the paper's point that the "
        "8/3 coefficient 'is only a suggestion'."
    )

    # Llama-2-70B went the other way: 28672 = 3.5h at h=8192, accepting
    # more parameters for a very aligned width (2^12 * 7).
    print(
        "\nLlama-2-70B uses 28672 = 3.5h at h=8192 "
        f"(pow2 factor {28672 & -28672}), trading parameters for alignment."
    )


if __name__ == "__main__":
    main()
