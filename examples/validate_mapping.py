#!/usr/bin/env python
"""Ground-truth validation: run the real transformer and diff its GEMMs.

The whole paper rests on the Table II mapping from transformer operators
to GEMM shapes.  This example executes an actual (small) NumPy decoder
model, records every matrix multiplication it performs, and diffs the
recorded shapes against the analytic mapping — then checks the paper's
parameter-count and FLOP formulas against the same run.

Run:  python examples/validate_mapping.py
"""

import numpy as np

from repro import DecoderModel, OpTrace, TransformerConfig
from repro.core import formulas
from repro.core.gemms import layer_gemms, logit_gemm


def main() -> None:
    cfg = TransformerConfig(
        name="demo",
        hidden_size=128,
        num_heads=8,
        num_layers=2,
        vocab_size=512,
        seq_len=32,
        microbatch=2,
    )
    print(cfg.describe())

    model = DecoderModel(
        vocab_size=cfg.vocab_size,
        max_seq=cfg.seq_len,
        hidden_size=cfg.hidden_size,
        num_heads=cfg.num_heads,
        num_layers=cfg.num_layers,
        rng=np.random.default_rng(0),
    )
    trace = OpTrace()
    ids = np.random.default_rng(1).integers(
        0, cfg.vocab_size, size=(cfg.seq_len, cfg.microbatch)
    )
    loss = model.loss(ids, trace)

    print("\nTable II mapping vs executed matmuls:")
    expected = {op.module: op.shape_tuple() for op in layer_gemms(cfg)}
    expected["logit"] = logit_gemm(cfg).shape_tuple()
    traced = {rec.module: rec.shape_tuple() for rec in trace}
    ok = True
    for module, want in expected.items():
        got = traced.get(module)
        mark = "OK " if got == want else "BAD"
        ok &= got == want
        print(f"  [{mark}] {module:<24} analytic {want}  executed {got}")
    assert ok, "mapping mismatch!"

    params = model.param_count(include_final_norm=False)
    formula = formulas.param_count(
        cfg.hidden_size, cfg.num_layers, cfg.vocab_size, cfg.seq_len
    )
    print(f"\nParameters: counted {params:,}  formula 12h²L+13hL+(v+s)h = {formula:,}")
    assert params == formula

    flops = trace.flops()
    expected_flops = formulas.forward_flops_model(
        b=cfg.microbatch,
        s=cfg.seq_len,
        h=cfg.hidden_size,
        L=cfg.num_layers,
        v=cfg.vocab_size,
    )
    print(f"Matmul FLOPs: traced {flops:,}  formula 24bsh²+4bs²h (+logit) = {expected_flops:,}")
    assert flops == expected_flops

    print(f"\nInitial loss {loss:.3f} ≈ ln(v) = {np.log(cfg.vocab_size):.3f}  ✓")
    print("\nPer-module FLOP shares of the real run:")
    print(trace.summary())


if __name__ == "__main__":
    main()
