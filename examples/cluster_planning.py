#!/usr/bin/env python
"""Case study: 6-GPU Summit nodes vs 8-GPU cloud nodes (paper Sec VII-A).

Summit has six V100s per node, so the natural tensor-parallel degree is
t=6 — but the standard 2.7B shape (h=2560, a=32) cannot even be sharded
six ways, and shapes that can (h divisible by 6 and 64, e.g. 2688) pay
for it later: h/8 = 336 has a power-of-two factor of only 16, degrading
every GEMM when downstream users fine-tune or serve on 8-GPU nodes.

This script quantifies the trilemma and then lets the planner pick a
full (t, p, d) decomposition on both systems.

Run:  python examples/cluster_planning.py
"""

from repro import get_model
from repro.gpu.alignment import largest_pow2_divisor
from repro.parallelism import ParallelPlanner, TensorParallelLayer


def main() -> None:
    shapes = {
        "8-GPU-friendly h=2560/a=32": get_model("gpt3-2.7b", microbatch=6),
        "Summit-friendly h=2688/a=24": get_model(
            "gpt3-2.7b", microbatch=6
        ).with_overrides(name="h2688", hidden_size=2688, num_heads=24),
    }

    for system in ("ornl-summit", "aws-p4d"):
        tp = TensorParallelLayer(system)
        print(f"\n=== {tp.topology.describe()} ===")
        for label, cfg in shapes.items():
            print(f"  {label}:")
            degrees = [t for t in (2, 4, 6, 8) if t <= tp.topology.gpus_per_node]
            table = tp.scaling_table(cfg, degrees)
            for t in degrees:
                if t not in table:
                    print(f"    t={t}: INFEASIBLE (h or a not divisible by {t})")
                    continue
                cost = table[t]
                h_t = cfg.hidden_size // t
                print(
                    f"    t={t}: h/t={h_t} (pow2 {largest_pow2_divisor(h_t)}), "
                    f"layer {cost.total_s * 1e3:.2f} ms "
                    f"(comm {100 * cost.comm_fraction:.0f}%)"
                )

    print("\n=== Planner: GPT-3 6.7B on 2 nodes of each system ===")
    cfg = get_model("gpt3-6.7b", microbatch=1)
    for system, gpus in (("ornl-summit", 12), ("aws-p4d", 16)):
        planner = ParallelPlanner(system)
        plans = planner.plan(cfg, gpus, require_fit=False)[:3]
        print(f"  {system} ({gpus} GPUs):")
        for plan in plans:
            print(f"    {plan.describe()}")


if __name__ == "__main__":
    main()
