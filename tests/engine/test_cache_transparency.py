"""Caching must be invisible in the numbers.

The engine's two cache levels (in-memory LRU, on-disk ``.soa`` store)
and the global scalar memo are pure memoization: an experiment run
with a cold disk cache, a warm disk cache, no disk cache at all, or
the scalar memo disabled must produce *bit-identical* ResultTables.
The same holds under a fault plan that corrupts every disk-cache
entry as it is written — quarantine changes where numbers come from,
never what they are.
"""

from __future__ import annotations

import pytest

from repro.engine.cache import configure, scalar_memo_enabled
from repro.engine.core import DISK_CACHE_ENV, default_engine, reset_default_engine
from repro.harness.runner import run_experiment
from repro.resilience.faults import FaultPlan, FaultSpec, injected

#: The experiment under test: fig5 routes through
#: ``default_engine().evaluate`` (the full two-level cache stack).
EXPERIMENT = "fig5"


def _fingerprint(report):
    """Everything numeric an experiment produced, exactly."""
    return (
        list(report.table.columns),
        list(report.table.rows),
        report.check.passed,
    )


def _run(monkeypatch, cache_dir=None):
    """Run the experiment against a freshly-built default engine."""
    if cache_dir is None:
        monkeypatch.delenv(DISK_CACHE_ENV, raising=False)
    else:
        monkeypatch.setenv(DISK_CACHE_ENV, str(cache_dir))
    reset_default_engine()
    try:
        return run_experiment(EXPERIMENT), default_engine()
    finally:
        reset_default_engine()


def test_cold_warm_and_no_cache_are_bit_identical(tmp_path, monkeypatch):
    cache_dir = tmp_path / "engine-cache"

    baseline, engine = _run(monkeypatch)  # no disk cache at all
    assert engine.disk_stats is None

    cold, engine = _run(monkeypatch, cache_dir)
    assert engine.disk_stats is not None
    assert engine.disk_stats.misses > 0  # nothing on disk yet
    assert len(engine._disk) > 0  # ...and the run persisted entries

    warm, engine = _run(monkeypatch, cache_dir)
    assert engine.disk_stats.hits > 0  # served from the store
    assert engine.disk_stats.quarantined == 0

    assert _fingerprint(cold) == _fingerprint(baseline)
    assert _fingerprint(warm) == _fingerprint(baseline)


def test_scalar_memo_is_transparent(monkeypatch):
    baseline, _ = _run(monkeypatch)
    assert scalar_memo_enabled()
    configure(enabled=False)
    try:
        uncached, _ = _run(monkeypatch)
    finally:
        configure(enabled=True)
    assert _fingerprint(uncached) == _fingerprint(baseline)


def test_corrupted_cache_entries_change_nothing(tmp_path, monkeypatch):
    """Quarantine is an implementation detail, not a numeric event.

    A fault plan garbles every disk entry as it is written; the next
    warm run must quarantine each one, recompute, and still match the
    cache-free baseline bit for bit.
    """
    cache_dir = tmp_path / "engine-cache"
    baseline, _ = _run(monkeypatch)

    plan = FaultPlan(
        [FaultSpec(site="cache.disk_put", kind="corrupt", times=0)]
    )
    with injected(plan):
        corrupted_cold, _ = _run(monkeypatch, cache_dir)
    assert plan.fired("cache.disk_put") > 0

    # Corruption happened *after* results were served from memory.
    assert _fingerprint(corrupted_cold) == _fingerprint(baseline)

    # The warm run now finds only garbage on disk.
    warm, engine = _run(monkeypatch, cache_dir)
    assert engine.disk_stats.quarantined == plan.fired("cache.disk_put")
    assert engine.disk_stats.hits == 0
    assert len(engine._disk.quarantined_files()) > 0
    assert _fingerprint(warm) == _fingerprint(baseline)

    # And the quarantined entries were replaced by good ones: a third
    # run is a clean warm start.
    healed, engine = _run(monkeypatch, cache_dir)
    assert engine.disk_stats.hits > 0
    assert engine.disk_stats.quarantined == 0
    assert _fingerprint(healed) == _fingerprint(baseline)


def test_conftest_isolates_any_inherited_cache_dir(tmp_path):
    """The autouse fixture must never let tests share a real cache dir.

    conftest redirects an externally-exported REPRO_ENGINE_CACHE_DIR to
    a per-test tmpdir (and otherwise unsets it), so the default engine
    a test builds can only ever write under pytest's tmp tree.
    """
    import os

    value = os.environ.get(DISK_CACHE_ENV)
    if value is not None:
        assert "pytest" in value or str(tmp_path.parent.parent) in value
    engine = default_engine()
    if engine._disk is not None:
        assert DISK_CACHE_ENV in os.environ
