"""Thread-safety hammer for the process-wide default engine.

``default_engine()`` uses double-checked locking; this wall spins 16
threads through a barrier so they race the first construction, and
asserts (1) exactly one engine instance is ever observed and (2) every
thread's evaluation of the same shape grid is bit-identical to a fresh
private engine — shared state never changes answers.
"""

import threading

import numpy as np

from repro.engine.core import ShapeEngine, default_engine, reset_default_engine

_THREADS = 16

_SHAPES = np.asarray(
    [
        [1, 512, 512, 512],
        [1, 1000, 1111, 2049],
        [4, 96, 4096, 256],
        [2, 2048, 8192, 8192],
        [1, 4095, 64, 50257],
    ],
    dtype=np.int64,
)


def _hammer_once():
    """One race round: reset, then 16 threads construct-and-evaluate."""
    reset_default_engine()
    barrier = threading.Barrier(_THREADS)
    engines = [None] * _THREADS
    results = [None] * _THREADS
    errors = []

    def work(i):
        try:
            barrier.wait(timeout=30)
            engine = default_engine()
            engines[i] = engine
            results[i] = engine.evaluate(_SHAPES, "A100", "fp16")
        except BaseException as exc:  # surfaced below; never swallowed
            errors.append((i, exc))

    threads = [
        threading.Thread(target=work, args=(i,), name=f"hammer-{i}")
        for i in range(_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, f"worker errors: {errors}"
    assert all(not t.is_alive() for t in threads)
    return engines, results


class TestDefaultEngineHammer:
    def test_sixteen_threads_observe_one_instance(self):
        for _ in range(5):  # repeat the race; one round can get lucky
            engines, _ = _hammer_once()
            assert all(e is not None for e in engines)
            assert len({id(e) for e in engines}) == 1, (
                "default_engine() constructed more than one instance "
                "under a 16-thread race"
            )

    def test_racing_threads_get_bit_identical_results(self):
        _, results = _hammer_once()
        reference = ShapeEngine().evaluate(_SHAPES, "A100", "fp16")
        for result in results:
            np.testing.assert_array_equal(result.latency_s, reference.latency_s)
            np.testing.assert_array_equal(result.tflops, reference.tflops)
            np.testing.assert_array_equal(result.tile_index, reference.tile_index)

    def test_reset_swaps_the_instance(self):
        first = default_engine()
        reset_default_engine()
        assert default_engine() is not first
