"""Parity tests: the vectorized engine must equal the scalar model bitwise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    evaluate_batch,
    random_shapes,
    shape_array,
    verify_against_scalar,
)
from repro.engine.vectorized import BatchResult
from repro.errors import GPUModelError, ShapeError
from repro.gpu.gemm_model import GemmModel
from repro.gpu.tiles import candidate_tiles, default_tile
from repro.types import DType


class TestShapeArray:
    def test_scalar_broadcast(self):
        arr = shape_array(128, 256, 64)
        assert arr.shape == (1, 4)
        assert arr.tolist() == [[1, 128, 256, 64]]

    def test_array_broadcast(self):
        sizes = np.array([256, 512, 1024])
        arr = shape_array(sizes, sizes, sizes)
        assert arr.shape == (3, 4)
        assert arr[:, 0].tolist() == [1, 1, 1]
        assert arr[:, 1].tolist() == [256, 512, 1024]

    def test_batch_sweep(self):
        arr = shape_array(2048, 2048, 64, [1, 8, 64])
        assert arr[:, 0].tolist() == [1, 8, 64]
        assert (arr[:, 1] == 2048).all()


class TestEvaluateBatchErrors:
    def test_nonpositive_dim_raises(self):
        with pytest.raises(ShapeError):
            evaluate_batch([[1, 128, 0, 64]], "A100")

    def test_bad_shape_raises(self):
        with pytest.raises(ShapeError):
            evaluate_batch(np.ones((3, 3), dtype=np.int64), "A100")

    def test_bad_bw_efficiency_raises(self):
        with pytest.raises(ShapeError):
            evaluate_batch([[1, 128, 128, 64]], "A100", bw_efficiency=0.0)

    def test_empty_candidates_raises(self):
        with pytest.raises(GPUModelError):
            evaluate_batch([[1, 128, 128, 64]], "A100", candidates=[])


class TestScalarParity:
    """The acceptance bar: exact equality on a large randomized grid."""

    def test_randomized_grid(self):
        # 50 points x 4 GPUs x 2 dtypes (+ pinned-tile passes where the
        # default tile fits) = well over the 500-point acceptance floor.
        report = verify_against_scalar(
            points=50,
            gpus=("A100", "V100", "H100", "MI250X"),
            dtypes=("fp16", "fp32"),
            seed=7,
        )
        assert report.points >= 500
        assert report.mismatches == 0, report.describe()
        assert len(report.combos) == 8

    def test_every_field_matches_scalar(self):
        rng = np.random.default_rng(11)
        shapes = random_shapes(rng, 40)
        batch = evaluate_batch(shapes, "A100", "fp16")
        model = GemmModel("A100", "fp16")
        for i, (b, m, n, k) in enumerate(shapes):
            perf = model.evaluate(int(m), int(n), int(k), int(b))
            got = batch.perf(i)
            assert got == perf, f"row {i}: {got} != {perf}"

    def test_pinned_tile_parity(self):
        tile = default_tile()
        sizes = np.arange(256, 4097, 256)
        batch = evaluate_batch(
            shape_array(sizes, sizes, sizes), "A100", "fp16", tile=tile
        )
        model = GemmModel("A100", "fp16", tile=tile)
        assert all(t == tile for t in batch.pool)
        for i, s in enumerate(sizes):
            perf = model.evaluate(int(s), int(s), int(s))
            assert perf.latency_s == float(batch.latency_s[i])
            assert perf.tflops == float(batch.tflops[i])

    def test_explicit_candidates_parity(self):
        from repro.gpu.specs import get_gpu

        pool = candidate_tiles(get_gpu("A100"), DType.FP16)[:2]
        shapes = shape_array([300, 5000], [700, 80], [64, 640])
        batch = evaluate_batch(shapes, "A100", "fp16", candidates=pool)
        model = GemmModel("A100", "fp16", candidates=pool)
        for i, (b, m, n, k) in enumerate(shapes):
            perf = model.evaluate(int(m), int(n), int(k), int(b))
            assert perf.tile == batch.tile(i)
            assert perf.latency_s == float(batch.latency_s[i])

    def test_batched_bmm_parity(self):
        shapes = shape_array(2048, 2048, [64, 80, 128], [16, 96, 256])
        batch = evaluate_batch(shapes, "V100", "fp16")
        model = GemmModel("V100", "fp16")
        for i, (b, m, n, k) in enumerate(shapes):
            perf = model.evaluate(int(m), int(n), int(k), int(b))
            assert perf.latency_s == float(batch.latency_s[i])
            assert perf.bound == str(batch.bound[i])

    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(1, 16384),
        n=st.integers(1, 16384),
        k=st.integers(1, 16384),
        b=st.integers(1, 512),
        gpu=st.sampled_from(["A100", "V100", "H100"]),
        dtype=st.sampled_from(["fp16", "fp32"]),
    )
    def test_property_single_shape(self, m, n, k, b, gpu, dtype):
        batch = evaluate_batch([[b, m, n, k]], gpu, dtype)
        perf = GemmModel(gpu, dtype).evaluate(m, n, k, batch=b)
        assert perf.latency_s == float(batch.latency_s[0])
        assert perf.tflops == float(batch.tflops[0])
        assert perf.tile == batch.tile(0)


class TestBatchResult:
    def test_roundtrip_through_arrays(self):
        shapes = random_shapes(np.random.default_rng(3), 16)
        batch = evaluate_batch(shapes, "H100", "fp16")
        clone = BatchResult.from_arrays(batch.to_arrays(), batch.meta())
        assert clone.gpu == batch.gpu and clone.dtype == batch.dtype
        assert clone.pool == batch.pool
        for name in BatchResult._ARRAY_FIELDS:
            np.testing.assert_array_equal(getattr(clone, name), getattr(batch, name))

    def test_len_and_bound_labels(self):
        shapes = shape_array([64, 8192], [64, 8192], [80, 8192])
        batch = evaluate_batch(shapes, "A100")
        assert len(batch) == 2
        model = GemmModel("A100")
        for i, (b, m, n, k) in enumerate(shapes):
            assert str(batch.bound[i]) == model.evaluate(int(m), int(n), int(k)).bound
        # The large aligned GEMM must be compute-bound.
        assert str(batch.bound[1]) == "compute"
