"""Robustness tests for the cache layer: corruption, races, degradation.

Satellite of the resilience PR: truncated ``.soa`` entries, garbage
bytes, stale ``model_version`` keys, concurrent multi-thread hammering,
and the engine's memory-only degradation when disk writes fail.
"""

import threading

import numpy as np
import pytest

from repro.engine.cache import (
    ENTRY_SUFFIX,
    QUARANTINE_SUFFIX,
    SOA_MAGIC,
    DiskCache,
    LRUCache,
)
from repro.engine.core import ShapeEngine
from repro.engine.vectorized import shape_array
from repro.errors import CacheError
from repro.gpu.specs import get_gpu
from repro.types import DType

SHAPES = shape_array([512, 1024], [512, 1024], [64, 128])


def put_entry(disk, digest="d" * 8, key="key-A"):
    disk.put(digest, key, {"x": np.arange(4)}, {"note": "t"})
    return digest, key


class TestCorruptEntryQuarantine:
    def test_truncated_entry_quarantined(self, tmp_path):
        disk = DiskCache(tmp_path)
        digest, key = put_entry(disk)
        path = disk._path(digest)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])

        assert disk.get(digest, key) is None
        assert disk.stats.quarantined == 1
        assert disk.stats.misses == 1
        assert not path.exists()  # renamed aside, not left to re-fail
        assert len(disk.quarantined_files()) == 1
        assert QUARANTINE_SUFFIX in disk.quarantined_files()[0].name

    def test_garbage_bytes_quarantined(self, tmp_path):
        disk = DiskCache(tmp_path)
        digest, key = put_entry(disk)
        disk._path(digest).write_bytes(b"\x00\xffnot a soa entry at all")

        assert disk.get(digest, key) is None
        assert disk.stats.quarantined == 1

    def test_torn_header_quarantined(self, tmp_path):
        disk = DiskCache(tmp_path)
        digest = "c" * 8
        # Valid magic, but the declared header length runs past EOF —
        # the classic crash-mid-write tear.
        disk._path(digest).write_bytes(
            SOA_MAGIC + (1 << 20).to_bytes(8, "little") + b"{}"
        )
        assert disk.get(digest, "key") is None
        assert disk.stats.quarantined == 1

    def test_data_checksum_mismatch_quarantined(self, tmp_path):
        # Flipping one payload bit must not serve silently wrong arrays:
        # the data-section sha256 catches it and the entry is quarantined.
        disk = DiskCache(tmp_path)
        digest, key = put_entry(disk)
        path = disk._path(digest)
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF
        path.write_bytes(bytes(payload))
        assert disk.get(digest, key) is None
        assert disk.stats.quarantined == 1

    def test_quarantined_file_not_counted_as_live(self, tmp_path):
        disk = DiskCache(tmp_path)
        digest, key = put_entry(disk)
        assert len(disk) == 1
        disk._path(digest).write_bytes(b"junk")
        disk.get(digest, key)
        assert len(disk) == 0
        # clear() leaves the quarantined evidence in place.
        disk.clear()
        assert len(disk.quarantined_files()) == 1

    def test_recovery_after_quarantine(self, tmp_path):
        # One bad file costs one recompute: a fresh put serves again.
        disk = DiskCache(tmp_path)
        digest, key = put_entry(disk)
        disk._path(digest).write_bytes(b"junk")
        assert disk.get(digest, key) is None
        put_entry(disk)
        assert disk.get(digest, key) is not None
        assert disk.stats.quarantined == 1


class TestStaleKeys:
    def test_stale_model_version_is_plain_miss(self, tmp_path):
        # A key mismatch is NOT corruption: the file is intact, it just
        # belongs to another model version.  No quarantine.
        disk = DiskCache(tmp_path)
        digest, _ = put_entry(disk, key="shapes|gpu|model-version-1")
        assert disk.get(digest, "shapes|gpu|model-version-2") is None
        assert disk.stats.quarantined == 0
        assert disk.stats.misses == 1
        assert len(disk) == 1  # entry stays; the old version still owns it


class TestAtomicWrites:
    def test_no_tmp_litter_after_put(self, tmp_path):
        disk = DiskCache(tmp_path)
        put_entry(disk)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_raises_cache_error(self, tmp_path, monkeypatch):
        # Route the entry into a directory that no longer exists, as a
        # uid-independent stand-in for disk-full/permission failures.
        disk = DiskCache(tmp_path)
        monkeypatch.setattr(
            DiskCache,
            "_path",
            lambda self, digest: tmp_path / "gone" / f"{digest}{ENTRY_SUFFIX}",
        )
        with pytest.raises(CacheError, match="cannot write"):
            put_entry(disk)

    def test_concurrent_puts_same_digest(self, tmp_path):
        # Unique per-writer tmp names: racing writers never collide on
        # the tmp file; one complete entry wins.
        disk = DiskCache(tmp_path)
        errors = []

        def writer(n):
            try:
                for _ in range(10):
                    disk.put(
                        "same" * 4, "key-A",
                        {"x": np.full(8, n)}, {"writer": n},
                    )
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert list(tmp_path.glob("*.tmp")) == []
        loaded = disk.get("same" * 4, "key-A")
        assert loaded is not None
        assert loaded["__meta__"]["writer"] in range(6)


class TestLRUConcurrency:
    def test_multithreaded_hammering_loses_no_stats(self):
        lru = LRUCache(maxsize=128)
        workers, ops = 8, 500
        errors = []

        def hammer(worker):
            try:
                for i in range(ops):
                    key = (worker, i % 37)
                    if lru.get(key) is None:
                        lru.put(key, i)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Every get() landed exactly one counter: no lost updates.
        assert lru.stats.lookups == workers * ops
        assert len(lru) <= 128

    def test_shared_keys_under_contention(self):
        lru = LRUCache(maxsize=64)
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            for i in range(300):
                lru.put(i % 50, i)
                lru.get(i % 50)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert lru.stats.lookups == 4 * 300
        assert len(lru) <= 64


class TestEngineDegradation:
    def test_engine_survives_disk_put_failure(self, tmp_path, monkeypatch):
        # A dying disk must not kill evaluation: the engine logs and
        # serves from memory.
        engine = ShapeEngine(disk_dir=tmp_path)

        def failing_put(*args, **kwargs):
            raise CacheError("disk full (simulated)")

        monkeypatch.setattr(engine._disk, "put", failing_put)
        result = engine.evaluate(SHAPES, get_gpu("A100"), DType.BF16)
        assert result is not None
        assert len(engine._disk) == 0
        # Second call: memory cache serves despite the dead disk.
        engine.evaluate(SHAPES, get_gpu("A100"), DType.BF16)
        assert engine.memory_stats.hits == 1

    def test_engine_quarantines_then_recomputes(self, tmp_path):
        first = ShapeEngine(disk_dir=tmp_path)
        first.evaluate(SHAPES, get_gpu("A100"), DType.BF16)
        entries = list(tmp_path.glob(f"*{ENTRY_SUFFIX}"))
        assert len(entries) == 1
        entries[0].write_bytes(b"bitrot")

        fresh = ShapeEngine(disk_dir=tmp_path)
        result = fresh.evaluate(SHAPES, get_gpu("A100"), DType.BF16)
        assert result is not None
        assert fresh.disk_stats.quarantined == 1
        # The recompute re-persisted a good entry.
        assert len(fresh._disk) == 1
