"""mmap-shared disk cache under concurrency.

The ``.soa`` store's contract across processes: concurrent readers
share one mapped file, concurrent writers race safely (atomic
``os.replace``), a reader never sees a torn entry (checksum-verified,
quarantined on mismatch), and held zero-copy views survive a
quarantine rename.  These tests exercise that contract with real
processes hammering one cache directory.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.engine.cache import ENTRY_SUFFIX, QUARANTINE_SUFFIX, DiskCache
from repro.engine.core import DISK_CACHE_ENV

DIGEST = "a" * 16
KEY = "shared-key"


def _payload(seed: int = 0):
    return {
        "latency_s": np.linspace(0.1, 1.0, 64) + seed,
        "shapes": np.arange(256, dtype=np.int64).reshape(64, 4) + seed,
    }


def _reader_proc(cache_dir, iterations, out):
    cache = DiskCache(cache_dir)
    errors = 0
    hits = 0
    for _ in range(iterations):
        entry = cache.get(DIGEST, KEY)
        if entry is None:
            continue
        entry.pop("__meta__", None)
        # A served entry must always be internally consistent — the
        # checksum gate means a torn write can never surface here.
        if entry["shapes"].shape != (64, 4):
            errors += 1
        elif not np.isfinite(entry["latency_s"]).all():
            errors += 1
        else:
            hits += 1
    out.put(("reader", hits, errors))


def _writer_proc(cache_dir, iterations, seed, out):
    cache = DiskCache(cache_dir)
    for i in range(iterations):
        cache.put(DIGEST, KEY, _payload(seed), {"writer": seed, "i": i})
    out.put(("writer", iterations, 0))


class TestMultiProcessCache:
    def test_concurrent_readers_and_writers_race_safely(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(DIGEST, KEY, _payload(), {"writer": -1})
        out = mp.Queue()
        procs = [
            mp.Process(target=_reader_proc, args=(str(tmp_path), 200, out))
            for _ in range(3)
        ] + [
            mp.Process(target=_writer_proc, args=(str(tmp_path), 50, s, out))
            for s in (1, 2)
        ]
        for p in procs:
            p.start()
        results = [out.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        reader_hits = sum(h for kind, h, _ in results if kind == "reader")
        errors = sum(e for _, _, e in results)
        assert errors == 0
        assert reader_hits > 0  # readers actually observed entries
        # No torn temp files or quarantined entries left behind.
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(f"*{QUARANTINE_SUFFIX}*")) == []
        # The final entry is intact for a fresh process.
        fresh = DiskCache(tmp_path).get(DIGEST, KEY)
        assert fresh is not None
        assert fresh["shapes"].shape == (64, 4)

    def test_held_views_survive_quarantine_rename(self, tmp_path):
        writer = DiskCache(tmp_path)
        writer.put(DIGEST, KEY, _payload(), {})
        reader = DiskCache(tmp_path)
        held = reader.get(DIGEST, KEY)
        assert held is not None
        held.pop("__meta__")

        # Corrupt the entry on disk while the views are alive.
        (path,) = tmp_path.glob(f"*{ENTRY_SUFFIX}")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(data)

        other = DiskCache(tmp_path)
        assert other.get(DIGEST, KEY) is None
        assert other.stats.quarantined == 1
        assert list(tmp_path.glob(f"*{ENTRY_SUFFIX}")) == []
        assert len(list(tmp_path.glob(f"*{QUARANTINE_SUFFIX}*"))) == 1

        # The rename must not invalidate the zero-copy views: the
        # mapping is backed by the inode, not the directory entry.
        assert held["shapes"].shape == (64, 4)
        assert held["latency_s"].size == 64

    def test_views_are_zero_copy_and_read_only(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(DIGEST, KEY, _payload(), {})
        entry = cache.get(DIGEST, KEY)
        entry.pop("__meta__")
        for arr in entry.values():
            assert arr.base is not None  # a view over the mapping
            with pytest.raises((ValueError, RuntimeError)):
                arr[0] = 0

    def test_conftest_isolates_cache_dir(self):
        # The autouse fixture must guarantee tests never inherit a
        # developer's warm shared cache via the environment.
        assert os.environ.get(DISK_CACHE_ENV) is None or "engine-cache" in (
            os.environ[DISK_CACHE_ENV]
        )
