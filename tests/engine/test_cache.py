"""Tests for the two cache levels, key construction, and invalidation."""

import numpy as np
import pytest

from repro.engine import cache as engine_cache
from repro.engine.cache import (
    CacheStats,
    DiskCache,
    LRUCache,
    shapes_digest,
    spec_key,
    tile_policy_key,
)
from repro.engine.core import (
    DISK_CACHE_ENV,
    ShapeEngine,
    default_engine,
    reset_default_engine,
)
from repro.engine.vectorized import shape_array
from repro.gpu import alignment
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import get_gpu
from repro.gpu.tiles import candidate_tiles, default_tile
from repro.types import DType

SHAPES = shape_array([512, 1024, 1000], [512, 1024, 1000], [64, 128, 80])


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert "75% hit rate" in stats.describe()

    def test_empty_hit_rate(self):
        assert CacheStats().hit_rate == 0.0

    def test_snapshot_delta(self):
        stats = CacheStats(hits=5, misses=2)
        before = stats.snapshot()
        stats.hits += 3
        delta = stats.delta(before)
        assert (delta.hits, delta.misses) == (3, 0)


class TestLRUCache:
    def test_hit_miss_counters(self):
        lru = LRUCache(maxsize=4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert (lru.stats.hits, lru.stats.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh "a"; "b" is now LRU
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1 and lru.get("c") == 3

    def test_clear(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", 1)
        lru.clear()
        assert len(lru) == 0 and lru.get("a") is None

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestKeys:
    def test_spec_key_distinct_and_hashable(self):
        keys = {spec_key(get_gpu(g)) for g in ("A100", "V100", "H100", "MI250X")}
        assert len(keys) == 4

    def test_tile_policy_key_variants(self):
        tile = default_tile()
        pool = candidate_tiles(get_gpu("A100"), DType.FP16)
        auto = tile_policy_key(None, None)
        pinned = tile_policy_key(tile, None)
        cands = tile_policy_key(None, pool)
        assert len({auto, pinned, cands}) == 3
        assert auto == ("auto",)
        # A pinned tile wins over candidates, like GemmModel's precedence.
        assert tile_policy_key(tile, pool) == pinned

    def test_shapes_digest_stable_and_distinct(self):
        a = shape_array([128, 256], [128, 256], [64, 64])
        assert shapes_digest(a) == shapes_digest(a.tolist())
        b = shape_array([128, 257], [128, 256], [64, 64])
        assert shapes_digest(a) != shapes_digest(b)

    def test_model_version_tracks_calibration(self, monkeypatch):
        before = engine_cache.model_version()
        monkeypatch.setattr(alignment, "_EFF_AT_MIN", alignment._EFF_AT_MIN / 2)
        assert engine_cache.model_version() != before


class TestShapeEngineMemory:
    def test_second_evaluate_hits(self):
        engine = ShapeEngine()
        first = engine.evaluate(SHAPES, "A100")
        second = engine.evaluate(SHAPES, "A100")
        assert second is first
        assert engine.memory_stats.hits == 1
        assert engine.memory_stats.misses == 1

    def test_distinct_configs_do_not_collide(self):
        engine = ShapeEngine()
        a = engine.evaluate(SHAPES, "A100", "fp16")
        b = engine.evaluate(SHAPES, "A100", "fp32")
        c = engine.evaluate(SHAPES, "V100", "fp16")
        d = engine.evaluate(SHAPES, "A100", "fp16", tile=default_tile())
        assert engine.memory_stats.misses == 4
        assert not np.array_equal(a.latency_s, b.latency_s)
        assert not np.array_equal(a.latency_s, c.latency_s)
        assert not np.array_equal(a.latency_s, d.latency_s)

    def test_model_version_bump_invalidates(self, monkeypatch):
        engine = ShapeEngine()
        engine.evaluate(SHAPES, "A100")
        monkeypatch.setattr(engine_cache, "MODEL_VERSION", "999-test")
        engine.evaluate(SHAPES, "A100")
        assert engine.memory_stats.misses == 2
        assert engine.memory_stats.hits == 0

    def test_calibration_mutation_invalidates_and_changes_result(self, monkeypatch):
        # n=k=1032 (pow-2 divisor 8) sits exactly on the _EFF_AT_MIN knee,
        # so re-fitting the floor must both miss the cache and change the
        # answer.
        shapes = shape_array(2048, 1032, 1032)
        engine = ShapeEngine()
        before = engine.evaluate(shapes, "A100")
        monkeypatch.setattr(alignment, "_EFF_AT_MIN", 0.25)
        after = engine.evaluate(shapes, "A100")
        assert engine.memory_stats.misses == 2
        assert float(after.latency_s[0]) != float(before.latency_s[0])

    def test_clear(self):
        engine = ShapeEngine()
        engine.evaluate(SHAPES, "A100")
        engine.clear()
        engine.evaluate(SHAPES, "A100")
        assert engine.memory_stats.misses == 2

    def test_describe_mentions_hit_rate(self):
        engine = ShapeEngine()
        engine.evaluate(SHAPES, "A100")
        assert "hit rate" in engine.describe()


class TestDiskCache:
    def test_roundtrip_across_engines(self, tmp_path):
        first = ShapeEngine(disk_dir=tmp_path)
        result = first.evaluate(SHAPES, "A100")
        assert len(first._disk) == 1

        fresh = ShapeEngine(disk_dir=tmp_path)
        loaded = fresh.evaluate(SHAPES, "A100")
        assert fresh.disk_stats.hits == 1
        assert fresh.memory_stats.misses == 1  # memory missed, disk served
        np.testing.assert_array_equal(loaded.latency_s, result.latency_s)
        np.testing.assert_array_equal(loaded.tflops, result.tflops)
        assert loaded.pool == result.pool

        # Second call is now served from memory, not disk.
        fresh.evaluate(SHAPES, "A100")
        assert fresh.memory_stats.hits == 1
        assert fresh.disk_stats.hits == 1

    def test_key_mismatch_is_a_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("deadbeef", "key-A", {"x": np.arange(3)}, {"note": "t"})
        assert disk.get("deadbeef", "key-B") is None
        assert disk.get("deadbeef", "key-A") is not None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        (tmp_path / "cafe.soa").write_bytes(b"not a soa entry")
        assert disk.get("cafe", "whatever") is None

    def test_clear_removes_files(self, tmp_path):
        engine = ShapeEngine(disk_dir=tmp_path)
        engine.evaluate(SHAPES, "A100")
        engine.clear(disk=True)
        assert len(engine._disk) == 0

    def test_default_engine_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DISK_CACHE_ENV, str(tmp_path))
        reset_default_engine()
        try:
            engine = default_engine()
            assert engine._disk is not None
            engine.evaluate(SHAPES, "A100")
            assert len(engine._disk) == 1
        finally:
            monkeypatch.delenv(DISK_CACHE_ENV)
            reset_default_engine()


class TestScalarMemo:
    def setup_method(self):
        engine_cache.clear_scalar_memo()

    def test_repeat_evaluate_hits(self):
        model = GemmModel("A100")
        before = engine_cache.scalar_memo_stats().snapshot()
        a = model.evaluate(2048, 2048, 64)
        b = model.evaluate(2048, 2048, 64)
        used = engine_cache.scalar_memo_stats().delta(before)
        assert b is a
        assert (used.hits, used.misses) == (1, 1)

    def test_shared_across_model_instances(self):
        before = engine_cache.scalar_memo_stats().snapshot()
        GemmModel("A100").evaluate(1024, 1024, 512)
        GemmModel("A100").evaluate(1024, 1024, 512)
        used = engine_cache.scalar_memo_stats().delta(before)
        assert used.hits == 1

    def test_disabled_memo_recomputes(self):
        model = GemmModel("A100")
        engine_cache.configure(enabled=False)
        try:
            before = engine_cache.scalar_memo_stats().snapshot()
            a = model.evaluate(2048, 2048, 64)
            b = model.evaluate(2048, 2048, 64)
            used = engine_cache.scalar_memo_stats().delta(before)
            assert used.lookups == 0
            assert a == b and a is not b
        finally:
            engine_cache.configure(enabled=True)

    def test_calibration_mutation_respected(self, monkeypatch):
        # Bit of history: the memo key embeds model_version() precisely so
        # a calibration fit (which mutates alignment constants in place)
        # can never be served a stale pre-fit result.
        model = GemmModel("A100")
        before = model.evaluate(2048, 1032, 1032)
        monkeypatch.setattr(alignment, "_EFF_AT_MIN", 0.25)
        after = model.evaluate(2048, 1032, 1032)
        assert after.latency_s != before.latency_s

    def test_distinct_policies_do_not_collide(self):
        auto = GemmModel("A100").evaluate(2048, 2048, 80)
        pinned = GemmModel("A100", tile=default_tile()).evaluate(2048, 2048, 80)
        assert auto.tile != pinned.tile or auto.latency_s != pinned.latency_s

    def test_configure_maxsize_preserves_stats(self):
        engine_cache.scalar_memo().stats.hits += 0  # touch
        old_stats = engine_cache.scalar_memo_stats()
        engine_cache.configure(maxsize=1024)
        try:
            assert engine_cache.scalar_memo().maxsize == 1024
            assert engine_cache.scalar_memo_stats() is old_stats
        finally:
            engine_cache.configure(maxsize=262144)
