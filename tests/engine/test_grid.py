"""SoA grid front door: ShapeGrid/GridResult + scalar≡vectorized≡grid parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ShapeGrid, default_engine, evaluate_batch
from repro.engine.core import ShapeEngine
from repro.engine.grid import GridResult
from repro.gpu.gemm_model import GemmModel


class TestShapeGrid:
    def test_scalar_broadcast_and_defaults(self):
        grid = ShapeGrid.from_columns(m=[128, 256], n=64, k=32)
        assert len(grid) == 2
        assert grid.column("batch").tolist() == [1, 1]
        assert grid.column("n").tolist() == [64, 64]
        assert grid.column("m").dtype == np.int64

    def test_shapes_canonical_layout(self):
        grid = ShapeGrid.from_columns(batch=[2, 4], m=[128, 256], n=64, k=32)
        shapes = grid.shapes
        assert shapes.shape == (2, 4)
        assert shapes.tolist() == [[2, 128, 64, 32], [4, 256, 64, 32]]
        assert shapes.flags.c_contiguous

    def test_annotation_columns_keep_dtype(self):
        grid = ShapeGrid.from_columns(m=[1, 2], n=1, k=1, frac=[0.5, 0.25])
        assert grid.column("frac").dtype == np.float64

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ShapeGrid.from_columns(m=[1, 2], n=[1, 2, 3], k=1)

    def test_object_dtype_raises(self):
        with pytest.raises(TypeError):
            ShapeGrid.from_columns(m=[1, 2], n=1, k=1, bad=[object(), object()])

    def test_2d_column_raises(self):
        with pytest.raises(ValueError):
            ShapeGrid.from_columns(m=np.ones((2, 2)), n=1, k=1)

    def test_concat(self):
        a = ShapeGrid.from_columns(m=[1, 2], n=1, k=1, tag=[10, 11])
        b = ShapeGrid.from_columns(m=[3], n=1, k=1, tag=[12])
        cat = ShapeGrid.concat([a, b])
        assert len(cat) == 3
        assert cat.column("m").tolist() == [1, 2, 3]
        assert cat.column("tag").tolist() == [10, 11, 12]

    def test_concat_column_mismatch_raises(self):
        a = ShapeGrid.from_columns(m=[1], n=1, k=1, tag=[1])
        b = ShapeGrid.from_columns(m=[1], n=1, k=1)
        with pytest.raises(ValueError):
            ShapeGrid.concat([a, b])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            ShapeGrid.concat([])

    def test_select_and_with_columns(self):
        grid = ShapeGrid.from_columns(m=[64, 128, 256], n=1, k=1)
        small = grid.select(grid.column("m") < 200)
        assert small.column("m").tolist() == [64, 128]
        tagged = small.with_columns(double_m=2 * small.column("m"))
        assert tagged.column("double_m").tolist() == [128, 256]
        # originals untouched
        assert len(grid) == 3
        assert "double_m" not in small.names


class TestGridResult:
    def _result(self):
        grid = ShapeGrid.from_columns(
            batch=[1, 8], m=[2048, 1024], n=2048, k=64, label=[7, 9]
        )
        batch = evaluate_batch(grid.shapes, "A100")
        return grid, GridResult(grid, batch)

    def test_length_mismatch_raises(self):
        grid = ShapeGrid.from_columns(m=[1, 2, 3], n=1, k=1)
        batch = evaluate_batch([[1, 128, 128, 64]], "A100")
        with pytest.raises(ValueError):
            GridResult(grid, batch)

    def test_column_resolution(self):
        grid, res = self._result()
        assert res.column("label").tolist() == [7, 9]  # grid annotation
        assert res.column("tflops").shape == (2,)  # batch field
        assert len(res.column("bound")) == 2
        with pytest.raises(KeyError):
            res.column("nope")

    def test_rows_match_columns(self):
        _, res = self._result()
        cols = res.columns(("label", "tflops"))
        rows = res.rows(("label", "tflops"))
        assert rows == list(zip(cols["label"], cols["tflops"]))


class TestMemoColumns:
    def test_memory_roundtrip_and_counts(self):
        engine = ShapeEngine()
        calls = []

        def compute():
            calls.append(1)
            return {"a": np.arange(4), "b": np.linspace(0, 1, 4)}

        first = engine.memo_columns("t", ("k", 1), compute)
        second = engine.memo_columns("t", ("k", 1), compute)
        assert len(calls) == 1
        assert np.array_equal(first["a"], second["a"])

    def test_disk_roundtrip_across_engines(self, tmp_path):
        def compute():
            return {
                "x": np.array([1, 2, 3], dtype=np.int64),
                "name": np.array(["aa", "bb", "cc"]),
            }

        a = ShapeEngine(disk_dir=tmp_path)
        b = ShapeEngine(disk_dir=tmp_path)
        first = a.memo_columns("t", "key", compute)
        second = b.memo_columns(
            "t", "key", lambda: pytest.fail("should be served from disk")
        )
        assert np.array_equal(first["x"], second["x"])
        assert second["name"].tolist() == ["aa", "bb", "cc"]
        assert b.disk_stats.hits == 1

    def test_object_dtype_rejected(self):
        engine = ShapeEngine()
        with pytest.raises(TypeError):
            engine.memo_columns("t", "key", lambda: {"bad": [object()]})

    def test_distinct_keys_distinct_entries(self):
        engine = ShapeEngine()
        one = engine.memo_columns("t", 1, lambda: {"v": np.array([1])})
        two = engine.memo_columns("t", 2, lambda: {"v": np.array([2])})
        assert one["v"].tolist() == [1]
        assert two["v"].tolist() == [2]


_DIM = st.integers(min_value=1, max_value=4096)
_BATCH = st.integers(min_value=1, max_value=512)


class TestGridParity:
    """Acceptance property: scalar ≡ vectorized ≡ grid, bit for bit."""

    @given(
        rows=st.lists(
            st.tuples(_BATCH, _DIM, _DIM, _DIM), min_size=1, max_size=12
        ),
        gpu=st.sampled_from(["A100", "V100", "H100"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_paths_bitwise_equal(self, rows, gpu):
        batch = np.array([r[0] for r in rows], dtype=np.int64)
        m = np.array([r[1] for r in rows], dtype=np.int64)
        n = np.array([r[2] for r in rows], dtype=np.int64)
        k = np.array([r[3] for r in rows], dtype=np.int64)
        grid = ShapeGrid.from_columns(batch=batch, m=m, n=n, k=k)

        grid_res = default_engine().evaluate_grid(grid, gpu)
        vec = evaluate_batch(grid.shapes, gpu)
        model = GemmModel(gpu)

        np.testing.assert_array_equal(grid_res.batch.latency_s, vec.latency_s)
        np.testing.assert_array_equal(grid_res.batch.tflops, vec.tflops)
        for i, (b, mm, nn, kk) in enumerate(rows):
            perf = model.evaluate(mm, nn, kk, b)
            assert perf.latency_s == vec.latency_s[i]
            assert perf.tflops == vec.tflops[i]

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=6), min_size=2, max_size=4
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_concat_is_bitwise_stable(self, sizes):
        rng = np.random.default_rng(sum(sizes))
        grids = [
            ShapeGrid.from_columns(
                batch=rng.integers(1, 64, size=s),
                m=rng.integers(1, 2048, size=s),
                n=rng.integers(1, 2048, size=s),
                k=rng.integers(1, 2048, size=s),
            )
            for s in sizes
        ]
        whole = default_engine().evaluate_grid(ShapeGrid.concat(grids), "A100")
        parts = [default_engine().evaluate_grid(g, "A100") for g in grids]
        np.testing.assert_array_equal(
            whole.batch.latency_s,
            np.concatenate([p.batch.latency_s for p in parts]),
        )
        np.testing.assert_array_equal(
            whole.batch.tflops,
            np.concatenate([p.batch.tflops for p in parts]),
        )
