"""Cross-validation between the independent subsystems.

These tests tie the reproduction together: the analytic Table II
mapping, the executed NumPy transformer, the closed-form formulas, and
the two GPU backends must all agree with each other.
"""

import numpy as np
import pytest

from repro.core import formulas
from repro.core.config import TransformerConfig
from repro.core.gemms import layer_gemms, logit_gemm
from repro.gpu.gemm_model import GemmModel
from repro.gpu.simulator import SMSimulator
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace


def build_and_trace(cfg: TransformerConfig, **model_kw):
    model = DecoderModel(
        vocab_size=cfg.vocab_size,
        max_seq=cfg.seq_len,
        hidden_size=cfg.hidden_size,
        num_heads=cfg.num_heads,
        num_layers=cfg.num_layers,
        tp_degree=cfg.tp_degree,
        mlp_kind=cfg.mlp_kind,
        intermediate_size=cfg.intermediate_size,
        positional=cfg.positional,
        rng=np.random.default_rng(0),
        **model_kw,
    )
    trace = OpTrace()
    ids = np.random.default_rng(1).integers(
        0, cfg.vocab_size, size=(cfg.seq_len, cfg.microbatch)
    )
    model.forward(ids, trace)
    return model, trace


SMALL_CONFIGS = [
    TransformerConfig(
        name="classic", hidden_size=64, num_heads=4, num_layers=2,
        vocab_size=128, seq_len=16, microbatch=2,
    ),
    TransformerConfig(
        name="tp2", hidden_size=64, num_heads=4, num_layers=2,
        vocab_size=128, seq_len=16, microbatch=2, tp_degree=2,
    ),
    TransformerConfig(
        name="swiglu", hidden_size=64, num_heads=4, num_layers=2,
        vocab_size=128, seq_len=16, microbatch=2, mlp_kind="swiglu",
        intermediate_size=176,
    ),
    TransformerConfig(
        name="rotary", hidden_size=64, num_heads=4, num_layers=1,
        vocab_size=128, seq_len=16, microbatch=3, positional="rotary",
    ),
]


@pytest.mark.parametrize("cfg", SMALL_CONFIGS, ids=lambda c: c.name)
class TestMappingGroundTruth:
    """Analytic Table II mapping == shapes the real computation executes."""

    def test_traced_shapes_equal_analytic(self, cfg):
        _, trace = build_and_trace(cfg)
        expected_per_layer = layer_gemms(cfg)
        traced = list(trace)

        # Per layer: t shards x operators; then the logit GEMM.
        per_layer_expected = []
        for op in expected_per_layer:
            per_layer_expected += [op.shape_tuple()] * 1
        # Group traced records per module occurrence and compare sets
        # per layer slice.
        ops_per_layer = len(expected_per_layer) * cfg.tp_degree
        body = traced[:-1]
        assert len(body) == ops_per_layer * cfg.num_layers
        for layer in range(cfg.num_layers):
            chunk = body[layer * ops_per_layer : (layer + 1) * ops_per_layer]
            got = {(r.module, r.shape_tuple()) for r in chunk}
            want = {(op.module, op.shape_tuple()) for op in expected_per_layer}
            assert got == want

    def test_logit_gemm_matches(self, cfg):
        _, trace = build_and_trace(cfg)
        last = trace.records[-1]
        assert last.module == "logit"
        assert last.shape_tuple() == logit_gemm(cfg).shape_tuple()

    def test_traced_flops_match_formula(self, cfg):
        _, trace = build_and_trace(cfg)
        expected = formulas.forward_flops_model(
            b=cfg.microbatch,
            s=cfg.seq_len,
            h=cfg.hidden_size,
            L=cfg.num_layers,
            v=cfg.vocab_size,
            d_ff=cfg.d_ff,
            mlp_matrices=cfg.mlp_matrices,
        )
        assert trace.flops() == expected

    def test_param_formula_matches_arrays(self, cfg):
        model, _ = build_and_trace(cfg)
        assert cfg.param_count() == model.param_count(include_final_norm=False)


class TestBackendAgreement:
    """Analytic model vs discrete-event simulator on the real workload."""

    def test_full_layer_gemm_set(self):
        cfg = TransformerConfig(
            name="gpt3-2.7b-like",
            hidden_size=2560,
            num_heads=32,
            num_layers=1,
        )
        gm = GemmModel("A100")
        for op in layer_gemms(cfg) + [logit_gemm(cfg)]:
            a = gm.evaluate(op.m, op.n, op.k, op.batch)
            s = SMSimulator("A100", tile=a.tile).run(op.m, op.n, op.k, op.batch)
            assert s.latency_s == pytest.approx(a.latency_s, rel=0.08), op.module

    def test_total_layer_time_agreement(self):
        cfg = TransformerConfig(
            name="x", hidden_size=4096, num_heads=32, num_layers=1
        )
        gm = GemmModel("A100")
        analytic = simulated = 0.0
        for op in layer_gemms(cfg):
            a = gm.evaluate(op.m, op.n, op.k, op.batch)
            analytic += a.latency_s
            simulated += SMSimulator("A100", tile=a.tile).run(
                op.m, op.n, op.k, op.batch
            ).latency_s
        assert simulated == pytest.approx(analytic, rel=0.05)
