"""Every example script must run clean end-to-end.

Examples are executable documentation; this keeps them from rotting.
Each runs as a subprocess with a generous timeout and must exit 0.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_examples_directory_complete():
    # The deliverable floor: quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
