"""Cross-module invariants for the newer substrates.

Hypothesis suites over inference, memory, training and batching: the
contracts that keep the serving/training analyses self-consistent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import TransformerConfig, get_model
from repro.core.memory import MemoryBudget, inference_bytes, training_bytes
from repro.core.training import TrainingStepModel
from repro.inference.latency import InferenceModel

small_configs = st.builds(
    lambda dim_mult, a, L, kv_div: TransformerConfig(
        name="inv",
        hidden_size=a * 16 * dim_mult,
        num_heads=a,
        num_layers=L,
        vocab_size=1024,
        seq_len=256,
        microbatch=1,
        num_kv_heads=max(1, a // kv_div),
    ),
    dim_mult=st.integers(min_value=1, max_value=8),
    a=st.sampled_from([2, 4, 8]),
    L=st.integers(min_value=1, max_value=32),
    kv_div=st.sampled_from([1, 2, 4]),
)


class TestInferenceInvariants:
    @settings(max_examples=25, deadline=None)
    @given(small_configs, st.integers(min_value=1, max_value=4096))
    def test_decode_latency_positive_and_monotone_in_context(self, cfg, ctx):
        model = InferenceModel("A100")
        a = model.decode_step(cfg, context_len=ctx).latency_s
        b = model.decode_step(cfg, context_len=2 * ctx).latency_s
        # Tiny grids gain a little memory-level parallelism from extra
        # blocks, so allow a 2% non-monotonicity band at toy scale.
        assert 0 < a <= b * 1.02

    @settings(max_examples=25, deadline=None)
    @given(small_configs)
    def test_prefill_dominates_one_decode_step(self, cfg):
        # Processing s tokens at once must cost more than generating one.
        model = InferenceModel("A100")
        prefill = model.prefill(cfg, prompt_len=cfg.seq_len).latency_s
        step = model.decode_step(cfg, context_len=cfg.seq_len).latency_s
        assert prefill > step / cfg.seq_len

    @settings(max_examples=25, deadline=None)
    @given(small_configs)
    def test_gqa_never_slower_to_decode(self, cfg):
        model = InferenceModel("A100")
        mha = cfg.with_overrides(num_kv_heads=cfg.num_heads)
        assert (
            model.decode_step(cfg, 1024).latency_s
            <= model.decode_step(mha, 1024).latency_s * 1.02
        )


class TestMemoryInvariants:
    @settings(max_examples=25, deadline=None)
    @given(small_configs)
    def test_training_exceeds_inference_footprint(self, cfg):
        train = training_bytes(cfg).total
        infer = inference_bytes(cfg, context_len=256).total
        assert train > infer

    @settings(max_examples=25, deadline=None)
    @given(small_configs, st.sampled_from([2, 4]))
    def test_sharding_divides_states(self, cfg, t):
        if cfg.num_heads % t or cfg.kv_heads % t:
            return
        sharded = cfg.with_overrides(tp_degree=t)
        assert training_bytes(sharded).weights_and_optimizer == pytest.approx(
            training_bytes(cfg).weights_and_optimizer / t
        )

    @settings(max_examples=25, deadline=None)
    @given(small_configs)
    def test_budget_fits_is_threshold(self, cfg):
        usage = training_bytes(cfg)
        exactly = MemoryBudget(
            capacity_bytes=usage.total / 0.92 * (1 + 1e-9), headroom=0.08
        )
        below = MemoryBudget(capacity_bytes=usage.total * 0.5, headroom=0.08)
        assert exactly.fits(usage)
        assert not below.fits(usage)


class TestTrainingInvariants:
    @settings(max_examples=10, deadline=None)
    @given(small_configs)
    def test_step_slower_than_forward(self, cfg):
        model = TrainingStepModel("A100")
        step = model.step(cfg)
        assert step.total_s > model.forward_breakdown(cfg).total_s
        assert step.backward_s > 0

    @settings(max_examples=10, deadline=None)
    @given(small_configs, st.integers(min_value=2, max_value=8))
    def test_accumulation_improves_tokens_per_second(self, cfg, g):
        # Amortizing the optimizer step over G micro-steps can only help.
        model = TrainingStepModel("A100")
        one = model.step(cfg, grad_accumulation=1).tokens_per_second
        many = model.step(cfg, grad_accumulation=g).tokens_per_second
        assert many >= one * 0.9999


class TestPresetsSurviveEverything:
    @pytest.mark.parametrize(
        "name",
        ["gpt3-125m", "gpt3-2.7b", "pythia-1b", "llama2-7b", "llama2-70b", "mistral-7b"],
    )
    def test_full_pipeline_on_presets(self, name):
        """Every preset flows through rules, latency, training, memory
        and inference without error."""
        from repro.core.latency import LayerLatencyModel
        from repro.core.rules import RuleEngine

        cfg = get_model(name, microbatch=1)
        assert RuleEngine("A100").check(cfg)
        assert LayerLatencyModel("A100").model_latency(cfg) > 0
        assert TrainingStepModel("A100").step(cfg).total_s > 0
        assert training_bytes(cfg).total > 0
        assert InferenceModel("A100").decode_step(cfg, 512).latency_s > 0
