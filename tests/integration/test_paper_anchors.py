"""The paper's quantitative anchors, measured on our substrate.

Each test computes one of the paper's headline numbers with the library
and checks it against the band recorded in
:mod:`repro.calibration.data` (the paper's value sits inside each band;
bands are wide because the substrate is a model, not their silicon).
"""

import pytest

from repro.calibration.data import get_anchor
from repro.core.advisor import ShapeAdvisor
from repro.core.breakdown import LARGE_CONFIG, MEDIUM_CONFIG, gemm_share
from repro.core.config import get_model
from repro.core.latency import LayerLatencyModel
from repro.gpu.gemm_model import GemmModel


class TestGemmShareAnchors:
    def test_medium_model_share(self):
        anchor = get_anchor("gemm_share_medium")
        measured = gemm_share(MEDIUM_CONFIG)
        assert anchor.check(measured), f"measured {measured:.3f}, paper {anchor.paper_value}"

    def test_large_model_share(self):
        anchor = get_anchor("gemm_share_large")
        measured = gemm_share(LARGE_CONFIG)
        assert anchor.check(measured), f"measured {measured:.3f}, paper {anchor.paper_value}"


class TestRetuneAnchors:
    def test_gpt3_27b_retune_speedup(self):
        # Paper Sec I: "trained almost 20% faster ... through minor
        # tweaking of the model shape".
        anchor = get_anchor("gpt3_27b_retune_speedup")
        best = ShapeAdvisor("A100").best(get_model("gpt3-2.7b"))
        assert anchor.check(best.speedup), f"measured {best.speedup:.3f}"

    def test_max_single_layer_shape_gain(self):
        # Abstract: "up to 39% higher" throughput at equal parameters.
        anchor = get_anchor("max_shape_speedup")
        model = LayerLatencyModel("A100")
        base = get_model("gpt3-2.7b")
        shapes = [base] + [
            base.with_overrides(num_heads=a) for a in (16, 20, 40, 64)
        ]
        tputs = [model.layer_throughput_tflops(cfg) for cfg in shapes]
        gain = max(tputs) / min(tputs)
        assert anchor.check(gain), f"measured {gain:.3f}"


class TestCrossGPUAnchors:
    def test_h100_a100_ratio(self):
        # Sec VIII: BERT MLPerf results show ~3:1 H100:A100, matching
        # kernel throughput.
        anchor = get_anchor("h100_a100_ratio")
        shape = (8192, 10240, 2560)
        ratio = GemmModel("H100").tflops(*shape) / GemmModel("A100").tflops(*shape)
        assert anchor.check(ratio), f"measured {ratio:.3f}"

    def test_v100_slower_than_a100(self):
        shape = (8192, 10240, 2560)
        assert GemmModel("V100").tflops(*shape) < GemmModel("A100").tflops(*shape)

    def test_same_shape_rules_hold_on_all_gpus(self):
        # The guidelines are claimed to transfer across the GPU zoo.
        for gpu in ("V100", "A100", "H100", "MI250X"):
            model = GemmModel(gpu)
            aligned = model.latency(4096, 4096, 64)
            misaligned = model.latency(4096, 4096, 80)
            assert aligned < misaligned, gpu
