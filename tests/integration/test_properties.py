"""Deep property-based invariants tying the subsystems together.

These hypothesis suites encode the contracts the rest of the library
leans on: physical bounds of the GPU model, conservation laws of the
GEMM mappings, and round-trip guarantees of the harness structures.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.config import TransformerConfig
from repro.core.formulas import forward_flops_per_layer
from repro.core.gemms import (
    backward_gemms_for,
    layer_gemm_flops,
    layer_gemms,
    training_gemms,
)
from repro.errors import ConfigError, ParallelismError
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import get_gpu
from repro.harness.results import ResultTable
from repro.types import DType

# Shared strategy: a valid transformer configuration.
configs = st.builds(
    lambda h_mult, a, L, v_mult, s_exp, b: TransformerConfig(
        name="prop",
        hidden_size=h_mult * a,
        num_heads=a,
        num_layers=L,
        vocab_size=64 * v_mult,
        seq_len=2**s_exp,
        microbatch=b,
    ),
    h_mult=st.integers(min_value=8, max_value=256),
    a=st.sampled_from([2, 4, 8, 12, 16, 20, 32]),
    L=st.integers(min_value=1, max_value=96),
    v_mult=st.integers(min_value=4, max_value=1024),
    s_exp=st.integers(min_value=5, max_value=13),
    b=st.integers(min_value=1, max_value=16),
)


class TestGemmModelPhysics:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=9000),
        st.integers(min_value=1, max_value=9000),
        st.integers(min_value=1, max_value=9000),
    )
    def test_throughput_never_exceeds_peak(self, m, n, k):
        spec = get_gpu("A100")
        perf = GemmModel(spec).evaluate(m, n, k)
        assert perf.tflops <= spec.matrix_peak_tflops(DType.FP16) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=1, max_value=4096),
    )
    def test_latency_at_least_overhead_plus_streaming(self, m, n, k):
        spec = get_gpu("A100")
        perf = GemmModel(spec).evaluate(m, n, k)
        compulsory = (m * k + k * n + m * n) * 2
        floor = spec.kernel_overhead_s + compulsory / spec.mem_bw_bytes_per_s()
        assert perf.latency_s >= floor * 0.999

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=32, max_value=2048),
        st.integers(min_value=1, max_value=64),
    )
    def test_batch_superlinearity_never_happens(self, size, batch):
        # b problems can never finish faster than 1/b of one kernel's
        # amortized rate (no free lunch from batching).
        model = GemmModel("A100")
        one = model.evaluate(size, size, 64)
        many = model.evaluate(size, size, 64, batch=batch)
        assert many.latency_s >= one.latency_s  # more work, never faster
        # And batching never does worse than b independent launches —
        # except that the batched grid can flip the tile heuristic to a
        # larger tile (cuBLAS strided-batched does the same), whose edge
        # padding inflates per-problem traffic by at most the padded-grid
        # area ratio 1/(1 - tile_waste).
        slack = 1.0 if many.tile == one.tile else 1.0 / (1.0 - many.tile_waste)
        assert many.latency_s <= batch * one.latency_s * slack * 1.001


class TestMappingConservation:
    @settings(max_examples=40, deadline=None)
    @given(configs)
    def test_layer_gemm_flops_equal_paper_formula(self, cfg):
        assert layer_gemm_flops(cfg) == forward_flops_per_layer(
            cfg.microbatch, cfg.seq_len, cfg.hidden_size
        )

    @settings(max_examples=40, deadline=None)
    @given(configs, st.sampled_from([1, 2, 4]))
    def test_tp_conserves_flops_when_feasible(self, cfg, t):
        sharded = cfg.with_overrides(tp_degree=t)
        try:
            sharded_flops = layer_gemm_flops(sharded)
        except ParallelismError:
            assume(False)
        assert sharded_flops == layer_gemm_flops(cfg)

    @settings(max_examples=40, deadline=None)
    @given(configs)
    def test_backward_gemms_preserve_flops(self, cfg):
        for op in layer_gemms(cfg):
            dgrad, wgrad = backward_gemms_for(op)
            assert dgrad.flops == op.flops == wgrad.flops

    @settings(max_examples=25, deadline=None)
    @given(configs)
    def test_training_flops_exactly_3x_forward(self, cfg):
        fwd = sum(op.flops for op in layer_gemms(cfg)) * cfg.num_layers
        logit = 2 * cfg.microbatch * cfg.seq_len * cfg.hidden_size * cfg.vocab_size
        total = sum(op.flops for op in training_gemms(cfg))
        assert total == 3 * (fwd + logit)

    @settings(max_examples=40, deadline=None)
    @given(configs)
    def test_param_count_positive_and_dominated_by_12h2L(self, cfg):
        params = cfg.param_count()
        assert params > 0
        leading = 12 * cfg.hidden_size**2 * cfg.num_layers
        assert params >= leading  # classic MLP: embeddings only add


class TestResultTableRoundTrips:
    rows = st.lists(
        st.tuples(
            st.integers(min_value=-1000, max_value=1000),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )

    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_csv_preserves_row_count(self, rows):
        table = ResultTable("t", ["a", "b"])
        table.extend(rows)
        csv = table.to_csv()
        assert len(csv.strip().split("\n")) == len(rows) + 1

    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_series_preserves_all_points(self, rows):
        table = ResultTable("t", ["a", "b"])
        table.extend(rows)
        pts = table.series("a", "b")[None]
        assert len(pts) == len(rows)

    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_best_row_is_maximal(self, rows):
        table = ResultTable("t", ["a", "b"])
        table.extend(rows)
        best = table.best_row(by="b")
        assert best["b"] == max(b for _, b in rows)


class TestRuleEngineTotality:
    @settings(max_examples=30, deadline=None)
    @given(configs)
    def test_rules_never_crash_on_valid_configs(self, cfg):
        from repro.core.rules import RuleEngine, Severity

        diags = RuleEngine("A100").check(cfg)
        assert diags
        assert all(isinstance(d.severity, Severity) for d in diags)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from([4, 8, 16, 32]),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=48),
    )
    def test_aligned_shapes_never_error(self, a, dim_mult, L):
        from repro.core.rules import RuleEngine, Severity

        cfg = TransformerConfig(
            name="aligned",
            hidden_size=a * 64 * dim_mult,
            num_heads=a,
            num_layers=L,
        )
        assert RuleEngine("A100").worst(cfg) < Severity.ERROR


class TestAdvisorContract:
    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from([2048, 2560, 4096]),
        st.sampled_from([16, 20, 32]),
    )
    def test_proposals_respect_param_budget(self, h, a):
        from repro.core.advisor import ShapeAdvisor

        assume(h % a == 0)
        cfg = TransformerConfig(
            name="prop", hidden_size=h, num_heads=a, num_layers=8
        )
        for prop in ShapeAdvisor("A100").propose(cfg, max_param_increase=0.01):
            assert prop.param_ratio <= 1.01 + 1e-9
