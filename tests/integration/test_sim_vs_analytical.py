"""Differential test: discrete-event simulator vs analytical GEMM model.

The two backends share inputs (tile selection, alignment efficiency,
roofline memory floor) but resolve scheduling differently — closed-form
synchronized waves vs an event loop with backfill.  They will never
agree to the femtosecond, but for the paper's conclusions to be
backend-independent they must agree on *structure*: which operator
dominates a layer, and which config wins a shape comparison.  This
wall sweeps the fig1 (2.7B-class shape grid) and fig2 (medium-model
operator grid) GEMMs through both and asserts rank agreement
(Kendall-tau floor) plus identical top-1 per column.
"""

import pytest
from scipy.stats import kendalltau

from repro.core.gemms import layer_gemms
from repro.gpu.gemm_model import GemmModel
from repro.gpu.simulator import SMSimulator
from repro.harness.experiments_transformer import FIG1_SHAPES, _fig1_config
from repro.harness.experiments_transformer import MEDIUM_CONFIG
from repro.types import DType

_TAU_FLOOR = 0.6


def _latencies(cfg):
    """Per-operator layer latencies under both backends: (analytical, sim)."""
    model = GemmModel("A100", DType.FP16)
    sim = SMSimulator("A100", DType.FP16)
    analytical, simulated, labels = [], [], []
    for gemm in layer_gemms(cfg):
        analytical.append(
            model.evaluate(gemm.m, gemm.n, gemm.k, batch=gemm.batch).latency_s
        )
        simulated.append(
            sim.run(gemm.m, gemm.n, gemm.k, batch=gemm.batch).latency_s
        )
        labels.append(gemm.module)
    return labels, analytical, simulated


def _rank_agreement(analytical, simulated):
    tau, _ = kendalltau(analytical, simulated)
    return tau


class TestOperatorRanking:
    """Within each fig1 config: both backends must name the same
    dominant operator and order the rest consistently."""

    @pytest.mark.parametrize("name", FIG1_SHAPES)
    def test_fig1_config_operator_ranking(self, name):
        labels, analytical, simulated = _latencies(_fig1_config(name))
        top_analytical = labels[analytical.index(max(analytical))]
        top_simulated = labels[simulated.index(max(simulated))]
        assert top_analytical == top_simulated, (
            f"{name}: dominant operator disagrees — "
            f"analytical {top_analytical}, simulated {top_simulated}"
        )
        tau = _rank_agreement(analytical, simulated)
        assert tau >= _TAU_FLOOR, (
            f"{name}: operator rank agreement tau={tau:.3f} "
            f"below floor {_TAU_FLOOR}"
        )

    def test_fig2_medium_model_operator_ranking(self):
        labels, analytical, simulated = _latencies(MEDIUM_CONFIG)
        assert (
            labels[analytical.index(max(analytical))]
            == labels[simulated.index(max(simulated))]
        )
        assert _rank_agreement(analytical, simulated) >= _TAU_FLOOR


class TestConfigRanking:
    """Across the fig1 grid: summed-layer latency must pick the same
    winner (and loser) under both backends."""

    def test_fig1_winner_and_ranking_agree(self):
        names = list(FIG1_SHAPES)
        totals_analytical, totals_simulated = [], []
        for name in names:
            _, analytical, simulated = _latencies(_fig1_config(name))
            totals_analytical.append(sum(analytical))
            totals_simulated.append(sum(simulated))

        winner_analytical = names[totals_analytical.index(min(totals_analytical))]
        winner_simulated = names[totals_simulated.index(min(totals_simulated))]
        assert winner_analytical == winner_simulated

        loser_analytical = names[totals_analytical.index(max(totals_analytical))]
        loser_simulated = names[totals_simulated.index(max(totals_simulated))]
        assert loser_analytical == loser_simulated

        tau = _rank_agreement(totals_analytical, totals_simulated)
        assert tau >= _TAU_FLOOR, f"config rank agreement tau={tau:.3f}"

    def test_latency_scale_agrees_within_2x(self):
        # Ranks could agree while magnitudes drift arbitrarily; pin the
        # scale so the simulator stays a *validation* of the model.
        for name in FIG1_SHAPES:
            _, analytical, simulated = _latencies(_fig1_config(name))
            ratio = sum(analytical) / sum(simulated)
            assert 0.5 <= ratio <= 2.0, f"{name}: scale ratio {ratio:.2f}"
