"""Resilient sweep tests: isolation, retries, timeouts, resume.

Covers the PR's acceptance scenario: a ``run_all`` sweep with an
injected worker exception and an injected timeout completes, reports
the two failures as per-experiment error outcomes (with retry counts)
while every other experiment passes; and a checkpointed sweep killed
mid-run resumes executing only the unfinished experiments.
"""

import pytest

from repro.errors import ExperimentError
from repro.harness.runner import (
    run_all,
    run_all_resilient,
    summary,
    sweep_journal,
    validate_ids,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    clear_plan,
    injected,
)

IDS = ["fig14", "fig5", "table2", "fig20"]


@pytest.fixture(autouse=True)
def no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class TestValidateIds:
    def test_valid_ids_canonicalized(self):
        assert validate_ids(["  FIG14", "table2 "]) == ["fig14", "table2"]

    def test_all_unknown_ids_reported_in_one_error(self):
        with pytest.raises(ExperimentError) as err:
            validate_ids(["fig14", "fig998", "tabel2"])
        message = str(err.value)
        assert "fig998" in message and "tabel2" in message
        assert "unknown experiment id(s)" in message

    def test_close_match_suggested(self):
        with pytest.raises(ExperimentError, match="did you mean"):
            validate_ids(["tabel2"])

    def test_unknown_id_fails_before_any_work(self):
        # The sweep itself must reject typos up front, not mid-run.
        with pytest.raises(ExperimentError, match="fig999"):
            run_all(["fig14", "fig999"])


class TestFailureIsolation:
    def test_acceptance_sweep_with_crash_and_timeout(self):
        # times=0 = persistent fault: retries are exhausted, so the
        # failure surfaces with its attempt count.
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig5", times=0,
                      exception="RuntimeError", message="worker crash"),
            FaultSpec(site="runner.experiment", match="fig20", times=0,
                      kind="delay", delay_s=5.0),
        ])
        with injected(plan):
            result = run_all_resilient(
                IDS, retries=1, timeout_s=0.3, parallel=2,
                policy=RetryPolicy(retries=1, backoff_s=0.0),
            )

        assert [r.id for r in result.reports] == IDS
        assert not result.passed
        by_id = {r.id: r for r in result.reports}

        crashed = by_id["fig5"]
        assert crashed.error_type == "RuntimeError"
        assert "worker crash" in crashed.error
        assert crashed.attempts == 2 and crashed.retries == 1
        assert not crashed.passed

        timed_out = by_id["fig20"]
        assert timed_out.error_type == "TaskTimeoutError"
        assert timed_out.attempts == 2
        assert not timed_out.passed

        for healthy in ("fig14", "table2"):
            assert by_id[healthy].passed, healthy
            assert by_id[healthy].error is None

        assert {r.id for r in result.failures()} == {"fig5", "fig20"}

    def test_transient_fault_retried_to_success(self):
        # times=1 = one-shot fault: the retry succeeds and the sweep
        # passes, recording the extra attempt.
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig5", times=1),
        ])
        with injected(plan):
            result = run_all_resilient(
                ["fig14", "fig5"],
                policy=RetryPolicy(retries=2, backoff_s=0.0),
            )
        assert result.passed
        by_id = {r.id: r for r in result.reports}
        assert by_id["fig5"].attempts == 2
        assert by_id["fig14"].attempts == 1

    def test_run_all_routes_to_resilient_path(self):
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig5", times=0),
        ])
        with injected(plan):
            # Legacy signature/return type: a plain report list, with
            # the failure folded in instead of raised.
            reports = run_all(["fig14", "fig5"], retries=0, isolate=True)
        assert [r.id for r in reports] == ["fig14", "fig5"]
        assert reports[0].passed
        assert reports[1].error_type == "FaultInjectionError"

    def test_without_resilience_args_failures_still_raise(self):
        # The legacy path is unchanged: no resilience flag, no isolation.
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig5", times=0),
        ])
        with injected(plan):
            with pytest.raises(Exception):
                run_all(["fig5"])

    def test_summary_renders_error_outcomes(self):
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig5", times=0),
        ])
        with injected(plan):
            result = run_all_resilient(["fig14", "fig5"])
        text = summary(result.reports)
        assert "ERROR" in text
        assert "FaultInjectionError" in text
        assert "1 attempt(s)" in text
        assert "1 failed with errors" in text


class TestCheckpointResume:
    def test_resume_reexecutes_only_unfinished(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"

        # First run dies on fig5 every time: the journal ends up with
        # three ok units and one failure — the same on-disk state a
        # sweep killed right after fig5's failure would leave.
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig5", times=0),
        ])
        first_journal = sweep_journal(journal_path, IDS)
        with injected(plan):
            first = run_all_resilient(IDS, journal=first_journal)
        assert not first.passed
        ok_ids = {
            e["id"] for e in first_journal.entries() if e["status"] == "ok"
        }
        assert ok_ids == {"fig14", "table2", "fig20"}

        # Resume without the fault: only fig5 is re-executed.
        resumed_journal = sweep_journal(journal_path, IDS, resume=True)
        assert resumed_journal.completed() == ok_ids
        result = run_all_resilient(IDS, journal=resumed_journal)

        assert result.passed
        assert sorted(result.skipped) == sorted(ok_ids)
        assert [o.task_id for o in result.outcomes] == ["fig5"]

        # Journal inspection: restored ids were recorded exactly once;
        # fig5 has its failure and then its successful re-execution.
        entries = resumed_journal.entries()
        per_id = {i: [e for e in entries if e["id"] == i] for i in IDS}
        for restored in ok_ids:
            assert len(per_id[restored]) == 1, restored
        assert [e["status"] for e in per_id["fig5"]] == ["failed", "ok"]

        # Restored reports are flagged; re-run report is organic.
        by_id = {r.id: r for r in result.reports}
        assert by_id["fig14"].restored
        assert not by_id["fig5"].restored

    def test_resume_with_different_sweep_refuses(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "sweep.jsonl"
        sweep_journal(path, IDS)
        with pytest.raises(CheckpointError, match="sweep"):
            sweep_journal(path, ["fig14"], resume=True)

    def test_fully_completed_journal_skips_everything(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        ids = ["fig14", "table2"]
        journal = sweep_journal(path, ids)
        run_all_resilient(ids, journal=journal)

        resumed = sweep_journal(path, ids, resume=True)
        result = run_all_resilient(ids, journal=resumed)
        assert result.outcomes == []
        assert sorted(result.skipped) == sorted(ids)
        assert result.passed
        assert all(r.restored for r in result.reports)
        assert "[restored]" in summary(result.reports)

    def test_journal_records_attempts(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(site="runner.experiment", match="fig14", times=1),
        ])
        journal = sweep_journal(tmp_path / "j.jsonl", ["fig14"])
        with injected(plan):
            run_all_resilient(
                ["fig14"], journal=journal,
                policy=RetryPolicy(retries=1, backoff_s=0.0),
            )
        entry = journal.entry_for("fig14")
        assert entry["status"] == "ok"
        assert entry["attempts"] == 2
