"""The CI perf gate's comparison logic (benchmarks/perf_gate.py)."""

import importlib.util
from pathlib import Path

_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "perf_gate.py"
_SPEC = importlib.util.spec_from_file_location("perf_gate", _PATH)
perf_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_gate)


def _record(**overrides):
    record = {
        "passed": True,
        "parity": {"mismatches": 0},
        "warm_speedup": 8.0,
        "warm_regressions": [],
        "experiments": [
            {"id": "fig5", "warm_cache_hits": 0, "warm_engine_hits": 3},
            {"id": "table2", "warm_cache_hits": 5, "warm_engine_hits": 0},
            {"id": "fig12", "warm_cache_hits": 0, "warm_engine_hits": 0},
        ],
    }
    record.update(overrides)
    return record


class TestGateFailures:
    def test_clean_record_passes(self):
        assert perf_gate.gate_failures(_record(), _record(), 4.0) == []

    def test_failed_record_flagged(self):
        fails = perf_gate.gate_failures(_record(passed=False), _record(), 4.0)
        assert any("did not pass" in f for f in fails)

    def test_parity_mismatch_flagged(self):
        fails = perf_gate.gate_failures(
            _record(parity={"mismatches": 2}), _record(), 4.0
        )
        assert any("parity" in f for f in fails)

    def test_speedup_floor(self):
        fails = perf_gate.gate_failures(_record(warm_speedup=2.0), _record(), 4.0)
        assert any("below floor" in f for f in fails)

    def test_warm_regressions_flagged(self):
        fails = perf_gate.gate_failures(
            _record(warm_regressions=["fig8"]), _record(), 4.0
        )
        assert any("fig8" in f for f in fails)

    def test_lost_cache_hits_flagged(self):
        fresh = _record(
            experiments=[
                {"id": "fig5", "warm_cache_hits": 0, "warm_engine_hits": 0},
                {"id": "table2", "warm_cache_hits": 5, "warm_engine_hits": 0},
            ]
        )
        fails = perf_gate.gate_failures(fresh, _record(), 4.0)
        assert any("fig5" in f and "lost all cache hits" in f for f in fails)
        # fig12 never hit the cache in the baseline: not required now,
        # and its absence from fresh is also fine.
        assert not any("fig12" in f for f in fails)

    def test_missing_experiment_flagged(self):
        fresh = _record(experiments=[])
        fails = perf_gate.gate_failures(fresh, _record(), 4.0)
        assert any("missing from fresh record" in f for f in fails)

    def test_main_exit_codes(self, tmp_path, capsys):
        import json

        good = tmp_path / "good.json"
        good.write_text(json.dumps(_record()))
        assert perf_gate.main([str(good), str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_record(warm_speedup=1.0)))
        assert perf_gate.main([str(bad), str(good)]) == 1
