"""Tests for the bulk artifact exporter."""

import os

import pytest

from repro.errors import ExperimentError
from repro.harness.export import export_all, export_report
from repro.harness.runner import run_experiment


class TestExportReport:
    def test_writes_csv_and_md(self, tmp_path):
        report = run_experiment("fig14")
        written = export_report(report, str(tmp_path))
        names = {os.path.basename(p) for p in written}
        assert names == {"fig14.csv", "fig14.md"}
        csv = (tmp_path / "fig14.csv").read_text()
        assert csv.startswith("ordering,n,tflops")
        md = (tmp_path / "fig14.md").read_text()
        assert "**Check [PASS]**" in md

    def test_plot_written_for_hinted_experiments(self, tmp_path):
        report = run_experiment("fig12")
        written = export_report(report, str(tmp_path))
        assert any(p.endswith("fig12.txt") for p in written)
        plot = (tmp_path / "fig12.txt").read_text()
        assert "tflops" in plot

    def test_family_member_ids_sanitized(self, tmp_path):
        report = run_experiment("fig21_33/a8")
        written = export_report(report, str(tmp_path))
        assert all("/" not in os.path.basename(p) for p in written)


class TestExportAll:
    def test_subset_with_index(self, tmp_path):
        out = tmp_path / "artifacts"
        written = export_all(str(out), ids=["fig14", "ext_gpus"])
        assert (out / "index.md").exists()
        index = (out / "index.md").read_text()
        assert "`fig14`" in index and "`ext_gpus`" in index
        assert len(written) >= 5  # 2x(csv+md) + index

    def test_non_directory_target_raises(self, tmp_path):
        path = tmp_path / "afile"
        path.write_text("x")
        with pytest.raises(ExperimentError, match="not a directory"):
            export_all(str(path), ids=["fig14"])

    def test_cli_verb(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli-out"
        assert main(["export", "--dir", str(out), "--ids", "fig14"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (out / "fig14.csv").exists()
