"""Integration: every paper figure/table experiment runs AND its
qualitative paper-shape check passes.

This is the reproduction's acceptance suite — one test per artifact in
the paper's evaluation.  A failure here means the modelled physics no
longer produces the shape the paper reports.
"""

import pytest

from repro.harness.figures import list_experiments
from repro.harness.runner import run_experiment

ALL_IDS = [e.id for e in list_experiments()]


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_reproduces_paper_shape(exp_id):
    report = run_experiment(exp_id)
    assert len(report.table) > 0
    assert report.passed, f"{exp_id}: {report.check.details}"


@pytest.mark.parametrize("heads", [8, 20, 40, 128])
def test_appendix_family_members(heads):
    # Spot-check individual appendix figures (full set is covered by
    # fig21_33 / fig35_47 above).
    for family in ("fig21_33", "fig35_47"):
        report = run_experiment(f"{family}/a{heads}")
        assert report.passed, f"{family}/a{heads}: {report.check.details}"
