"""Tests for the markdown reproduction report renderer."""

from repro.harness.runner import run_all, to_markdown_report


class TestMarkdownReport:
    def test_structure(self):
        reports = run_all(["fig14", "ext_gpus"])
        text = to_markdown_report(reports)
        assert text.startswith("# Reproduction report")
        assert "2/2 experiments" in text
        # Summary table rows plus one section per experiment.
        assert "| `fig14` |" in text
        assert "## `ext_gpus` —" in text
        assert text.count("Check:") == 2

    def test_status_marks(self):
        reports = run_all(["fig14"])
        text = to_markdown_report(reports)
        assert "✅" in text
        assert "[PASS]" in text

    def test_row_truncation(self):
        reports = run_all(["fig20"])  # ~154 rows
        text = to_markdown_report(reports, max_rows=10)
        assert "more rows" in text

    def test_tables_render_as_markdown(self):
        reports = run_all(["fig14"])
        text = to_markdown_report(reports)
        assert "| ordering | n | tflops |" in text
