"""Bench record shape: warm min-of-N sampling and the warm-regression gate."""

from repro.harness.bench import (
    REGRESSION_FACTOR,
    REGRESSION_SLACK_MS,
    _report_record,
    warm_regressions,
)
from repro.harness.compare import CheckResult
from repro.harness.results import ResultTable
from repro.harness.runner import ExperimentReport


def _report(exp_id: str, wall_s: float, **kw) -> ExperimentReport:
    return ExperimentReport(
        id=exp_id,
        title="t",
        paper_ref="ref",
        table=ResultTable("t", ["a"]),
        check=CheckResult(True, "ok"),
        wall_time_s=wall_s,
        **kw,
    )


class TestReportRecord:
    def test_warm_is_min_of_samples(self):
        rec = _report_record(
            _report("e", 0.010), _report("e", 0.009), _report("e", 0.004)
        )
        assert rec["warm_ms"] == 4.0
        assert rec["cold_ms"] == 10.0

    def test_engine_cache_fields_present(self):
        rec = _report_record(
            _report("e", 0.01, engine_hits=0, engine_misses=2),
            _report("e", 0.001, engine_hits=2, engine_misses=0),
        )
        assert rec["cold_engine_misses"] == 2
        assert rec["warm_engine_hits"] == 2


class TestWarmRegressionGate:
    def test_flags_warm_slower_than_cold(self):
        experiments = [
            {"id": "ok", "cold_ms": 10.0, "warm_ms": 1.0},
            {"id": "noisy_but_fine", "cold_ms": 0.5, "warm_ms": 0.6},
            {
                "id": "regressed",
                "cold_ms": 1.0,
                "warm_ms": 1.0 * REGRESSION_FACTOR + REGRESSION_SLACK_MS + 0.01,
            },
        ]
        assert warm_regressions(experiments) == ["regressed"]

    def test_tolerance_absorbs_sub_ms_noise(self):
        # The committed fig8 inversion: cold 0.612 ms, warm 1.365 ms
        # would have been flagged; min-of-3 warm sampling plus this
        # tolerance keeps honest sub-ms noise out of the gate while a
        # 2x-slower warm run on a >=1 ms experiment still trips it.
        assert warm_regressions(
            [{"id": "fig8", "cold_ms": 0.612, "warm_ms": 0.9}]
        ) == []
        assert warm_regressions(
            [{"id": "slow", "cold_ms": 5.0, "warm_ms": 10.0}]
        ) == ["slow"]
