"""Tests for the experiment runner."""

import pytest

from repro.analysis import Severity
from repro.errors import ExperimentError
from repro.harness.runner import run_all, run_experiment, summary


class TestRunExperiment:
    def test_report_fields(self):
        rep = run_experiment("fig14")
        assert rep.id == "fig14"
        assert rep.passed
        assert len(rep.table) > 0

    def test_render_contains_status_and_check(self):
        rep = run_experiment("fig14")
        text = rep.render()
        assert "[PASS]" in text
        assert "check:" in text

    def test_render_truncates(self):
        rep = run_experiment("fig20")
        text = rep.render(max_rows=5)
        assert "more rows" in text

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig999")


class TestPreflightLint:
    def test_experiment_without_configs_has_no_lint(self):
        rep = run_experiment("fig14")
        assert rep.lint is None
        assert rep.lint_warnings == 0

    def test_fig1_preflight_flags_inefficient_shapes(self):
        # fig1 deliberately sweeps the paper's bad shapes (gpt3-2.7b
        # h/a=80 and c1 h/a=40): the preflight must warn without
        # blocking the run.
        rep = run_experiment("fig1")
        assert rep.passed
        assert rep.lint is not None
        assert rep.lint_warnings >= 2
        assert "lint:" in rep.render()

    def test_pythia_preflight_flags_only_2_8b(self):
        # Most of the Pythia suite was sized by these rules; the one
        # exception is pythia-2.8b, which copies GPT-3 2.7B's h/a=80.
        rep = run_experiment("fig13")
        assert rep.lint is not None
        flagged = {
            d.location.config_path
            for d in rep.lint.findings(Severity.WARNING)
        }
        assert flagged == {"pythia-2.8b.num_heads"}


class TestRunAll:
    def test_subset(self):
        reports = run_all(["fig14", "table2"])
        assert [r.id for r in reports] == ["fig14", "table2"]
        assert all(r.passed for r in reports)

    def test_summary_format(self):
        reports = run_all(["fig14", "table2"])
        text = summary(reports)
        assert "2/2 experiments" in text
        assert "PASS" in text

    def test_report_carries_run_stats(self):
        (rep,) = run_all(["fig5"])
        assert rep.wall_time_s > 0
        assert rep.cache_hits + rep.cache_misses >= 0
        assert 0.0 <= rep.cache_hit_rate <= 1.0
        assert "wall time:" in rep.render()


class TestRunAllParallel:
    IDS = ["fig14", "fig5", "table2", "fig20"]

    def test_matches_serial(self):
        serial = run_all(self.IDS)
        parallel = run_all(self.IDS, parallel=3)
        assert [r.id for r in parallel] == [r.id for r in serial]
        assert [r.passed for r in parallel] == [r.passed for r in serial]
        for s, p in zip(serial, parallel):
            assert str(s.table) == str(p.table)

    def test_invalid_parallel_raises(self):
        with pytest.raises(ExperimentError):
            run_all(["fig14"], parallel=0)

    def test_unknown_executor_raises(self):
        with pytest.raises(ExperimentError):
            run_all(["fig14"], parallel=2, executor="fiber")
