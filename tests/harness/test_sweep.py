"""Tests for sweep-grid helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExperimentError
from repro.harness import sweep


class TestArange:
    def test_inclusive(self):
        assert sweep.arange_steps(2, 10, 4) == [2, 6, 10]

    def test_invalid_raises(self):
        with pytest.raises(ExperimentError):
            sweep.arange_steps(10, 2, 1)
        with pytest.raises(ExperimentError):
            sweep.arange_steps(2, 10, 0)


class TestHiddenSweep:
    def test_all_points_keep_integral_head_dim(self):
        for h in sweep.hidden_sweep_for_heads(24, min_head_dim=8, max_hidden=8192):
            assert h % 24 == 0

    def test_thinning_respects_points(self):
        grid = sweep.hidden_sweep_for_heads(8, min_head_dim=8, max_hidden=16384, points=30)
        assert len(grid) <= 35

    @given(st.sampled_from([8, 12, 16, 20, 32, 64, 128]))
    def test_thinned_grid_samples_multiple_pow2_buckets(self, a):
        # The regression this guards: an even thinning stride aliases
        # h/a onto a single pow-2 class, flattening Figs 7/21-47.
        grid = sweep.hidden_sweep_for_heads(a, min_head_dim=8, max_hidden=16384, points=40)
        buckets = {sweep.pow2_bucket(h // a) for h in grid}
        if len(grid) >= 8:
            assert len(buckets) >= 3

    def test_invalid_raises(self):
        with pytest.raises(ExperimentError):
            sweep.hidden_sweep_for_heads(0)


class TestHeadDimPreserving:
    def test_fixed_ratio(self):
        for h, a in sweep.head_dim_preserving_sweep(64, max_hidden=2048):
            assert h == 64 * a

    def test_respects_bound(self):
        pairs = sweep.head_dim_preserving_sweep(64, max_hidden=2048)
        assert max(h for h, _ in pairs) <= 2048

    def test_invalid_raises(self):
        with pytest.raises(ExperimentError):
            sweep.head_dim_preserving_sweep(0)


class TestPow2Bucket:
    def test_capped_at_64(self):
        assert sweep.pow2_bucket(256) == 64
        assert sweep.pow2_bucket(80) == 16
        assert sweep.pow2_bucket(7) == 1

    def test_invalid_raises(self):
        with pytest.raises(ExperimentError):
            sweep.pow2_bucket(0)


class TestVocabSweep:
    def test_brackets_center(self):
        grid = sweep.vocab_sweep(center=50257, span=10)
        assert 50257 in grid
        assert min(grid) == 50247 and max(grid) == 50267


class TestGeometric:
    def test_snapped_to_multiple(self):
        for v in sweep.geometric_sizes(100, 10000, factor=1.5, multiple=64):
            assert v % 64 == 0

    def test_strictly_increasing(self):
        grid = sweep.geometric_sizes(100, 100000, factor=1.4)
        assert all(b > a for a, b in zip(grid, grid[1:]))

    def test_invalid_raises(self):
        with pytest.raises(ExperimentError):
            sweep.geometric_sizes(100, 10, factor=1.5)
        with pytest.raises(ExperimentError):
            sweep.geometric_sizes(10, 100, factor=1.0)
