"""Tests for the qualitative paper-shape checkers."""

import pytest

from repro.errors import ExperimentError
from repro.harness import compare


class TestCheckResult:
    def test_truthiness(self):
        assert compare.CheckResult(True, "ok")
        assert not compare.CheckResult(False, "bad")

    def test_all_of(self):
        combined = compare.CheckResult.all_of(
            [compare.CheckResult(True, "a"), compare.CheckResult(False, "b")]
        )
        assert not combined.passed
        assert "PASS a" in combined.details and "FAIL b" in combined.details

    def test_all_of_empty_raises(self):
        with pytest.raises(ExperimentError):
            compare.CheckResult.all_of([])


class TestWinner:
    def test_higher_is_better(self):
        res = compare.check_winner({"a": 1.0, "b": 2.0}, "b")
        assert res.passed

    def test_lower_is_better(self):
        res = compare.check_winner({"a": 1.0, "b": 2.0}, "a", higher_is_better=False)
        assert res.passed

    def test_wrong_winner_fails(self):
        assert not compare.check_winner({"a": 1.0, "b": 2.0}, "a")

    def test_missing_key_fails(self):
        assert not compare.check_winner({"a": 1.0}, "z")


class TestRatio:
    def test_inside_band(self):
        assert compare.check_ratio(1.2, 1.0, 1.1, 1.3, "x")

    def test_outside_band(self):
        assert not compare.check_ratio(2.0, 1.0, 1.1, 1.3, "x")

    def test_zero_denominator_fails(self):
        assert not compare.check_ratio(1.0, 0.0, 0.5, 2.0, "x")


class TestSeriesOrdered:
    def test_ordered_series_pass(self):
        series = {
            8: [(100, 1.0), (200, 2.0)],
            64: [(100, 3.0), (200, 4.0)],
        }
        assert compare.check_series_ordered(series, [8, 64])

    def test_inverted_series_fail(self):
        series = {
            8: [(100, 5.0), (200, 6.0)],
            64: [(100, 1.0), (200, 2.0)],
        }
        assert not compare.check_series_ordered(series, [8, 64])

    def test_far_apart_points_not_compared(self):
        series = {8: [(100, 5.0)], 64: [(1000, 1.0)]}
        res = compare.check_series_ordered(series, [8, 64])
        assert not res.passed
        assert "no comparable points" in res.details


class TestMonotoneRise:
    def test_rising_passes(self):
        pts = [(i, float(i)) for i in range(10)]
        assert compare.check_monotone_rise(pts)

    def test_falling_fails(self):
        pts = [(i, float(10 - i)) for i in range(10)]
        assert not compare.check_monotone_rise(pts)

    def test_plateau_allowed(self):
        pts = [(0, 1.0), (1, 2.0), (2, 2.0), (3, 2.0), (4, 2.0)]
        assert compare.check_monotone_rise(pts)

    def test_too_few_points_fail(self):
        assert not compare.check_monotone_rise([(0, 1.0), (1, 2.0)])


class TestSaturates:
    def test_flat_tail_passes(self):
        pts = [(i, min(i, 5.0)) for i in map(float, range(20))]
        assert compare.check_saturates(pts)

    def test_linear_growth_fails(self):
        pts = [(float(i), float(i)) for i in range(1, 21)]
        assert not compare.check_saturates(pts, spread=0.1)


class TestSawtooth:
    def test_sawtooth_detected(self):
        pts = [(i, 10.0 + (i % 3) - 0.5 * i % 2 - (0.8 if i % 4 == 0 else 0)) for i in range(20)]
        assert compare.check_sawtooth(pts, min_drops=2, drop_rel=0.01)

    def test_smooth_curve_fails(self):
        pts = [(i, float(i)) for i in range(20)]
        assert not compare.check_sawtooth(pts)


class TestAllEqual:
    def test_equal_within_tolerance(self):
        assert compare.check_all_equal({"a": 1.0, "b": 1.01}, tolerance=0.05)

    def test_unequal_fails(self):
        assert not compare.check_all_equal({"a": 1.0, "b": 2.0}, tolerance=0.05)

    def test_empty_fails(self):
        assert not compare.check_all_equal({})
