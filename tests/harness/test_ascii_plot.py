"""Tests for the ASCII plot renderer."""

import pytest

from repro.errors import ExperimentError
from repro.harness.ascii_plot import PLOT_HINTS, line_plot, plot_experiment
from repro.harness.results import ResultTable
from repro.harness.runner import run_experiment


class TestLinePlot:
    def test_basic_render(self):
        text = line_plot(
            {None: [(0, 0.0), (5, 5.0), (10, 10.0)]},
            width=20,
            height=6,
            title="demo",
            x_label="x",
            y_label="y",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert any("o" in line for line in lines)
        assert "0" in text and "10" in text

    def test_multiple_series_get_distinct_marks_and_legend(self):
        text = line_plot(
            {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 3.0), (1, 4.0)]},
            width=20,
            height=6,
        )
        assert "o = a" in text
        assert "x = b" in text

    def test_extremes_land_on_grid_edges(self):
        text = line_plot({None: [(0, 0.0), (10, 10.0)]}, width=20, height=6)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert rows[-1].split("|")[1][0] == "o"  # min at bottom-left

    def test_zero_anchoring_for_throughput_like_data(self):
        text = line_plot({None: [(0, 10.0), (1, 100.0)]}, width=20, height=6)
        assert "\n      0|" in text or " 0|" in text

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            line_plot({})
        with pytest.raises(ExperimentError):
            line_plot({"a": []})

    def test_tiny_area_raises(self):
        with pytest.raises(ExperimentError):
            line_plot({None: [(0, 1.0)]}, width=4, height=2)

    def test_constant_series_renders(self):
        text = line_plot({None: [(0, 5.0), (1, 5.0)]}, width=20, height=6)
        assert "o" in text


class TestPlotExperiment:
    def test_hinted_figures_plot(self):
        report = run_experiment("fig12")
        text = plot_experiment("fig12", report.table)
        assert "FlashAttention" in text
        assert "hidden" in text

    def test_grouped_figure_has_legend(self):
        report = run_experiment("fig10")
        text = plot_experiment("fig10", report.table)
        assert "h_to_4h" in text and "4h_to_h" in text

    def test_unhinted_id_raises(self):
        table = ResultTable("t", ["a", "b"])
        table.add(1, 2)
        with pytest.raises(ExperimentError, match="no plot hint"):
            plot_experiment("table2", table)

    def test_all_hints_reference_existing_experiments(self):
        from repro.harness.figures import get_experiment

        for exp_id in PLOT_HINTS:
            assert get_experiment(exp_id) is not None

    def test_all_hints_reference_existing_columns(self):
        # Light check on a few cheap experiments.
        for exp_id in ("fig8", "fig20", "ext_flash_e2e"):
            report = run_experiment(exp_id)
            x, y, group = PLOT_HINTS[exp_id]
            cols = set(report.table.columns)
            assert {x, y} <= cols
            if group is not None:
                assert group in cols
