"""Tests for ResultTable."""

import pytest

from repro.errors import ExperimentError
from repro.harness.results import ResultTable


@pytest.fixture
def table():
    t = ResultTable("demo", ["x", "group", "y"], notes="a note")
    t.add(1, "a", 10.0)
    t.add(2, "a", 20.0)
    t.add(1, "b", 5.0)
    return t


class TestBuilding:
    def test_positional_add(self, table):
        assert len(table) == 3

    def test_named_add(self):
        t = ResultTable("t", ["a", "b"])
        t.add(a=1, b=2)
        assert t.rows == [(1, 2)]

    def test_named_add_missing_column_raises(self):
        t = ResultTable("t", ["a", "b"])
        with pytest.raises(ExperimentError, match="missing columns"):
            t.add(a=1)

    def test_mixed_add_raises(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ExperimentError):
            t.add(1, a=1)

    def test_wrong_width_raises(self, table):
        with pytest.raises(ExperimentError):
            table.add(1, 2)

    def test_duplicate_columns_raise(self):
        with pytest.raises(ExperimentError):
            ResultTable("t", ["a", "a"])

    def test_empty_columns_raise(self):
        with pytest.raises(ExperimentError):
            ResultTable("t", [])

    def test_extend(self):
        t = ResultTable("t", ["a", "b"])
        t.extend([(1, 2), (3, 4)])
        assert len(t) == 2


class TestAccess:
    def test_column(self, table):
        assert table.column("x") == [1, 2, 1]

    def test_unknown_column_raises(self, table):
        with pytest.raises(ExperimentError):
            table.column("z")

    def test_series_ungrouped(self, table):
        assert table.series("x", "y")[None] == [(1, 10.0), (2, 20.0), (1, 5.0)]

    def test_series_grouped(self, table):
        series = table.series("x", "y", group="group")
        assert series["a"] == [(1, 10.0), (2, 20.0)]
        assert series["b"] == [(1, 5.0)]

    def test_rows_as_dicts(self, table):
        assert table.rows_as_dicts()[0] == {"x": 1, "group": "a", "y": 10.0}

    def test_best_row_max(self, table):
        assert table.best_row(by="y")["y"] == 20.0

    def test_best_row_min(self, table):
        assert table.best_row(by="y", minimize=True)["y"] == 5.0

    def test_best_row_empty_raises(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ExperimentError):
            t.best_row(by="a")


class TestRendering:
    def test_markdown(self, table):
        md = table.to_markdown()
        assert "### demo" in md
        assert "a note" in md
        assert "| x | group | y |" in md
        assert md.count("\n") >= 7

    def test_markdown_truncation(self, table):
        md = table.to_markdown(max_rows=1)
        assert "more rows" in md

    def test_csv(self, table):
        csv = table.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "x,group,y"
        assert len(lines) == 4

    def test_str_fixed_width(self, table):
        text = str(table)
        assert "demo" in text
        assert "---" in text

    def test_float_formatting(self):
        t = ResultTable("t", ["v"])
        t.add(0.000001234)
        t.add(123456.7)
        t.add(0)
        text = t.to_csv()
        assert "1.234e-06" in text
        assert "1.235e+05" in text
