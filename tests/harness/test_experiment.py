"""Tests for the Experiment wrapper and the figure registry."""

import pytest

from repro.errors import ExperimentError
from repro.harness.compare import CheckResult
from repro.harness.experiment import Experiment
from repro.harness.figures import get_experiment, list_experiments
from repro.harness.results import ResultTable


def make_table():
    t = ResultTable("t", ["a"])
    t.add(1)
    return t


class TestExperiment:
    def test_run_returns_table(self):
        exp = Experiment("e", "t", "Fig X", run_fn=make_table)
        assert len(exp.run()) == 1

    def test_empty_table_raises(self):
        exp = Experiment("e", "t", "Fig X", run_fn=lambda: ResultTable("t", ["a"]))
        with pytest.raises(ExperimentError, match="no rows"):
            exp.run()

    def test_wrong_type_raises(self):
        exp = Experiment("e", "t", "Fig X", run_fn=lambda: [1, 2])
        with pytest.raises(ExperimentError, match="expected ResultTable"):
            exp.run()

    def test_check_without_fn_passes(self):
        exp = Experiment("e", "t", "Fig X", run_fn=make_table)
        assert exp.check().passed

    def test_check_reuses_table(self):
        calls = []

        def run():
            calls.append(1)
            return make_table()

        exp = Experiment(
            "e", "t", "Fig X", run_fn=run, check_fn=lambda t: CheckResult(True, "ok")
        )
        table = exp.run()
        exp.check(table)
        assert len(calls) == 1

    def test_describe(self):
        exp = Experiment("e", "title", "Fig X", run_fn=make_table)
        assert "Fig X" in exp.describe()


class TestRegistry:
    EXPECTED_IDS = {
        "fig1",
        "fig2",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21_33",
        "fig34",
        "fig35_47",
        "table2",
        "gemm_share",
        "case_gpt3",
        "case_swiglu",
        "case_6gpu",
    }

    def test_every_paper_artifact_registered(self):
        ids = {e.id for e in list_experiments()}
        assert self.EXPECTED_IDS <= ids

    def test_top_level_listing_hides_family_members(self):
        ids = {e.id for e in list_experiments()}
        assert not any("/" in i for i in ids)

    def test_family_members_listed_when_requested(self):
        ids = {e.id for e in list_experiments(include_family_members=True)}
        assert "fig21_33/a32" in ids
        assert "fig35_47/a128" in ids

    def test_get_by_id(self):
        assert get_experiment("fig8").paper_ref == "Fig 8"

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError, match="known:"):
            get_experiment("fig99")

    def test_all_have_checks(self):
        for exp in list_experiments():
            assert exp.check_fn is not None, exp.id
