"""Public-API hygiene: exports resolve, are documented, and are stable."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.gpu",
    "repro.transformer",
    "repro.core",
    "repro.parallelism",
    "repro.inference",
    "repro.autotune",
    "repro.calibration",
    "repro.harness",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_public_objects_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


@pytest.mark.parametrize("pkg", SUBPACKAGES)
class TestSubpackages:
    def test_importable_with_docstring(self, pkg):
        mod = importlib.import_module(pkg)
        assert mod.__doc__ and len(mod.__doc__) > 40

    def test_all_resolves(self, pkg):
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{pkg}.{name}"


class TestModuleDocstrings:
    def test_every_source_module_documented(self):
        import os

        root = os.path.dirname(repro.__file__)
        undocumented = []
        for dirpath, _dirs, files in os.walk(root):
            for fname in files:
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path) as fh:
                    head = fh.read(400).lstrip()
                if not head.startswith(('"""', "'''", '#!', 'r"""')):
                    rel = os.path.relpath(path, root)
                    if head:  # empty __init__ allowed
                        undocumented.append(rel)
        assert not undocumented, f"modules without docstrings: {undocumented}"
