"""Resolver behaviour: loading, staleness refusal, memo, fallback."""

import dataclasses

import pytest

from repro.engine.cache import model_version
from repro.errors import KernelTableError
from repro.kernels import TABLES_ENV, KernelParamResolver, load_tables
from repro.kernels.search import best_for_shape


@pytest.fixture()
def table_dir(tmp_path, tiny_table):
    path = tmp_path / f"{tiny_table.gpu}-{tiny_table.dtype}.json"
    path.write_text(tiny_table.to_json())
    return tmp_path


class TestLoadTables:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(KernelTableError, match="directory not found"):
            load_tables(tmp_path / "nope")

    def test_corrupt_artifact_names_the_path(self, table_dir):
        bad = table_dir / "H100-FP16.json"
        bad.write_text('{"schema": 1, "broken": tru')
        with pytest.raises(KernelTableError, match="H100-FP16.json"):
            load_tables(table_dir)

    def test_loads_and_verifies(self, table_dir, tiny_table):
        (loaded,) = load_tables(table_dir)
        assert loaded == tiny_table


class TestResolver:
    def test_hit_serves_the_bucket_entry(self, tiny_table, engine):
        resolver = KernelParamResolver(tables=[tiny_table], engine=engine)
        entry = tiny_table.lookup(1, 256, 512, 256)
        payload = resolver.resolve(1, 256, 512, 256, "A100", "fp16")
        assert payload["table_hit"] is True
        assert payload["table_checksum"] == tiny_table.checksum()
        assert payload["model_version"] == model_version()
        for key, value in entry.to_dict().items():
            assert payload[key] == value

    def test_whole_bucket_shares_one_answer(self, tiny_table, engine):
        resolver = KernelParamResolver(tables=[tiny_table], engine=engine)
        rep = resolver.resolve(1, 256, 512, 256, "A100", "fp16")
        off = resolver.resolve(1, 300, 700, 280, "A100", "fp16")
        assert off == rep  # same log2 buckets -> same entry

    def test_miss_falls_back_to_exact_shape_argmin(self, tiny_table, engine):
        resolver = KernelParamResolver(tables=[tiny_table], engine=engine)
        # m=64 is outside the tiny grid's octaves: a clean miss.
        payload = resolver.resolve(1, 64, 256, 256, "A100", "fp16")
        assert payload["table_hit"] is False
        assert payload["table_checksum"] is None
        expected = best_for_shape(1, 64, 256, 256, "A100", engine=engine)
        for key, value in expected.to_dict().items():
            assert payload[key] == value

    def test_empty_resolver_always_falls_back(self, engine):
        resolver = KernelParamResolver(engine=engine)
        payload = resolver.resolve(1, 512, 512, 512, "A100", "fp16")
        assert payload["table_hit"] is False
        assert payload["tile"]

    def test_stale_table_refused_and_reported(self, tiny_table, engine):
        stale = dataclasses.replace(tiny_table, model_version="0:stale")
        resolver = KernelParamResolver(tables=[stale], engine=engine)
        assert resolver.tables == {}
        assert "stale" in resolver.describe()
        payload = resolver.resolve(1, 256, 256, 256, "A100", "fp16")
        assert payload["table_hit"] is False

    def test_memo_returns_copies(self, tiny_table, engine):
        resolver = KernelParamResolver(tables=[tiny_table], engine=engine)
        first = resolver.resolve(1, 256, 256, 256, "A100", "fp16")
        first["tile"] = "tampered"
        second = resolver.resolve(1, 256, 256, 256, "A100", "fp16")
        assert second["tile"] != "tampered"

    def test_describe_names_loaded_tables(self, tiny_table, engine):
        resolver = KernelParamResolver(tables=[tiny_table], engine=engine)
        assert "A100/FP16" in resolver.describe()


class TestFromEnv:
    def test_env_directory_is_loaded(self, table_dir, engine, monkeypatch):
        monkeypatch.setenv(TABLES_ENV, str(table_dir))
        resolver = KernelParamResolver.from_env(engine=engine)
        assert ("A100", "FP16") in resolver.tables

    def test_unset_env_means_empty_resolver(self, engine, monkeypatch):
        monkeypatch.delenv(TABLES_ENV, raising=False)
        resolver = KernelParamResolver.from_env(engine=engine)
        assert resolver.tables == {}

    def test_bad_env_directory_raises(self, engine, monkeypatch, tmp_path):
        monkeypatch.setenv(TABLES_ENV, str(tmp_path / "missing"))
        with pytest.raises(KernelTableError):
            KernelParamResolver.from_env(engine=engine)
