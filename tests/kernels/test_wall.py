"""The differential wall: tuned picks vs the discrete-event simulator."""

import pytest

from repro.errors import KernelTableError
from repro.kernels import WallReport, run_wall, validation_shapes
from repro.kernels.wall import NEAR_TOP1_REL, ShapeVerdict


def _verdict(tau=1.0, gap=0.0, pick="128x256", sim=None, hit=True):
    sim_pick = pick if sim is None else sim
    return ShapeVerdict(
        shape=(1, 512, 512, 512),
        table_pick=pick,
        table_hit=hit,
        sim_pick=sim_pick,
        tau=tau,
        pick_gap_rel=gap,
    )


class TestValidationShapes:
    def test_deterministic_per_seed(self):
        assert validation_shapes(seed=3) == validation_shapes(seed=3)
        assert validation_shapes(seed=3) != validation_shapes(seed=4)

    def test_count_and_uniqueness(self):
        shapes = validation_shapes(seed=0, count=20)
        assert len(shapes) == 20
        assert len(set(shapes)) == 20

    def test_prefix_property(self):
        # Smaller counts are prefixes: CI can shrink the wall without
        # sampling a different population.
        assert validation_shapes(seed=0, count=6) == validation_shapes(
            seed=0, count=12
        )[:6]

    def test_bad_count_rejected(self):
        with pytest.raises(KernelTableError):
            validation_shapes(count=0)


class TestThresholds:
    def test_empty_report_fails(self):
        assert not WallReport(gpu="A100", dtype="FP16").passed

    def test_clean_report_passes(self):
        report = WallReport(
            gpu="A100", dtype="FP16", verdicts=[_verdict() for _ in range(5)]
        )
        assert report.mean_tau == 1.0
        assert report.top1_agreement == 1.0
        assert report.passed
        assert "PASS" in report.describe()

    def test_low_tau_fails_despite_perfect_top1(self):
        report = WallReport(
            gpu="A100", dtype="FP16",
            verdicts=[_verdict(tau=0.2) for _ in range(5)],
        )
        assert report.top1_agreement == 1.0
        assert not report.passed
        assert "FAIL" in report.describe()

    def test_top1_floor_enforced(self):
        good = [_verdict() for _ in range(3)]
        bad = [_verdict(sim="64x64", gap=0.5) for _ in range(2)]
        report = WallReport(gpu="A100", dtype="FP16", verdicts=good + bad)
        assert report.top1_agreement == pytest.approx(0.6)
        assert not report.passed

    def test_near_tie_counts_as_agreement(self):
        tied = _verdict(sim="64x64", gap=NEAR_TOP1_REL / 2)
        assert tied.top1_ok
        separated = _verdict(sim="64x64", gap=NEAR_TOP1_REL * 10)
        assert not separated.top1_ok


class TestRunWall:
    def test_quick_table_passes_the_wall(self, quick_table, engine):
        report = run_wall(quick_table, seed=0, count=8, engine=engine)
        assert len(report.verdicts) == 8
        assert report.passed, report.describe()
        assert report.gpu == "A100" and report.dtype == "FP16"
        # The sampled pool straddles the table's octave range, so the
        # wall exercises the fallback path too.
        assert any(not v.table_hit for v in report.verdicts)

    def test_explicit_shapes_pin_hit_and_miss(self, quick_table, engine):
        shapes = [
            (1, 512, 512, 512),  # tuning representative: table hit
            (2, 512, 512, 512),  # batch octave untuned: fallback
        ]
        report = run_wall(quick_table, shapes=shapes, engine=engine)
        assert [v.table_hit for v in report.verdicts] == [True, False]
        assert all(v.tau > 0 for v in report.verdicts)
