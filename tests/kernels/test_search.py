"""Property suite for the batched analytical tuner.

Three contracts from the issue, as hypothesis properties:

- the tuned pick is always drawn from the feasible candidate pool for
  that (GPU, dtype) — never an invented geometry;
- re-tuning under one engine model version is deterministic down to
  the byte, which is what the golden-drift CI gate stands on;
- under the analytical model the tuned pick is never slower than the
  untuned :func:`~repro.gpu.tiles.select_tile` heuristic's pick — the
  tuner's argmin ranges over a pool that *contains* the heuristic's
  choice, so tuning can only help.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.core import ShapeEngine
from repro.engine.grid import ShapeGrid
from repro.errors import KernelTableError
from repro.gpu.specs import get_gpu
from repro.gpu.tiles import candidate_tiles, select_tile
from repro.kernels import tune_table
from repro.kernels.search import best_for_shape, tune_grid
from repro.types import DType

# One engine for every example: resolution is stateless, and the
# per-example cost is the point of the whole-grid path.
_ENGINE = ShapeEngine()

_dims = st.integers(min_value=32, max_value=8192)
_batches = st.integers(min_value=1, max_value=16)
_gpus = st.sampled_from(["A100", "H100", "V100"])


def _pinned_latency(tile, batch, m, n, k, spec, dtype):
    """The analytical latency of one tile at one exact shape."""
    grid = ShapeGrid.from_columns(
        batch=np.asarray([batch], dtype=np.int64),
        m=np.asarray([m], dtype=np.int64),
        n=np.asarray([n], dtype=np.int64),
        k=np.asarray([k], dtype=np.int64),
    )
    ((_tile, result),) = _ENGINE.evaluate_tiles(
        grid, spec, dtype, candidates=(tile,)
    )
    return float(result.batch.latency_s[0])


class TestPickMembership:
    @settings(max_examples=25, deadline=None)
    @given(batch=_batches, m=_dims, n=_dims, k=_dims, gpu=_gpus)
    def test_tuned_pick_is_a_real_candidate(self, batch, m, n, k, gpu):
        spec = get_gpu(gpu)
        dtype = DType.parse("fp16")
        pool = {t.name for t in candidate_tiles(spec, dtype)}
        entry = best_for_shape(batch, m, n, k, gpu, engine=_ENGINE)
        assert entry.tile in pool
        assert entry.runner_up is None or entry.runner_up in pool
        assert entry.runner_up != entry.tile
        assert entry.margin >= 1.0
        assert entry.latency_s > 0 and entry.tflops > 0

    def test_tuned_table_picks_are_candidates(self, tiny_table):
        pool = {
            t.name
            for t in candidate_tiles(get_gpu("A100"), DType.parse("fp16"))
        }
        assert {e.tile for e in tiny_table.entries} <= pool


class TestNeverSlowerThanHeuristic:
    @settings(max_examples=25, deadline=None)
    @given(batch=_batches, m=_dims, n=_dims, k=_dims, gpu=_gpus)
    def test_tuned_beats_or_matches_select_tile(self, batch, m, n, k, gpu):
        spec = get_gpu(gpu)
        dtype = DType.parse("fp16")
        entry = best_for_shape(batch, m, n, k, gpu, engine=_ENGINE)
        heuristic = select_tile(m, n, k, spec, dtype, batch=batch)
        heuristic_latency = _pinned_latency(
            heuristic, batch, m, n, k, spec, dtype
        )
        # argmin over a pool containing the heuristic's pick: <= holds
        # exactly (same model, same floats), no tolerance needed.
        assert entry.latency_s <= heuristic_latency


class TestDeterminism:
    def test_retune_is_byte_identical(self, engine):
        a = tune_table("A100", dims=(256, 512), batches=(1,), engine=engine)
        b = tune_table(
            "A100", dims=(256, 512), batches=(1,), engine=ShapeEngine()
        )
        assert a.to_json() == b.to_json()
        assert a.checksum() == b.checksum()

    def test_point_order_does_not_matter(self, engine):
        # The grid is a cross product in meshgrid order; permuting the
        # *input* points permutes rows but the entries land in the same
        # buckets with the same winners.
        a = tune_table("A100", dims=(256, 512), batches=(1,), engine=engine)
        b = tune_table("A100", dims=(512, 256), batches=(1,), engine=engine)
        assert a.index().keys() == b.index().keys()
        for bucket, entry in a.index().items():
            assert b.index()[bucket].tile == entry.tile

    def test_fallback_at_representative_matches_table(self, tiny_table):
        # Same argmin, same pinned path: a fallback answer at a tuning
        # point is the table entry tuned there.
        entry = tiny_table.lookup(1, 512, 256, 512)
        fallback = best_for_shape(1, 512, 256, 512, "A100", engine=_ENGINE)
        assert fallback == entry


class TestTuneGridValidation:
    def test_grid_is_the_full_cross_product(self):
        grid = tune_grid(dims=(256, 512), batches=(1, 8))
        assert len(grid) == 2 * 2 ** 3
        shapes = {tuple(int(v) for v in row) for row in grid.shapes}
        assert (8, 512, 256, 512) in shapes

    @pytest.mark.parametrize(
        "kw",
        [
            dict(dims=()),
            dict(batches=()),
            dict(dims=(256, 300)),  # not a power of two
            dict(dims=(256, 256)),  # duplicate representative
            dict(batches=(0,)),
        ],
    )
    def test_bad_tuning_points_rejected(self, kw):
        with pytest.raises(KernelTableError):
            tune_grid(**kw)
