"""Golden kernel tables: checked-in artifacts gate tuner drift.

The stored tables were produced by::

    repro tune-kernels --gpu A100 H100 --quick --out tests/golden/kernels

Loading them verifies their checksums; re-tuning and diffing catches
any change to the analytical model, the candidate pool, or the tuner
itself.  A legitimate change refreshes them with ``--update-golden``
(same command, same output directory).
"""

import json
from pathlib import Path

import pytest

from repro.kernels import (
    TUNE_DIMS_QUICK,
    KernelTable,
    compare_tables,
    tune_table,
)

GOLDEN_DIR = Path(__file__).parent.parent / "golden" / "kernels"

_GPUS = ("A100", "H100")


@pytest.mark.parametrize("gpu", _GPUS)
class TestGoldenTables:
    def test_artifact_loads_and_checksum_verifies(self, gpu):
        path = GOLDEN_DIR / f"{gpu}-FP16.json"
        table = KernelTable.from_json(path.read_text())  # verifies checksum
        assert table.gpu == gpu
        assert table.dtype == "FP16"
        stated = json.loads(path.read_text())["checksum"]
        assert stated == table.checksum()

    def test_fresh_tune_matches_bit_for_bit(self, gpu, engine):
        path = GOLDEN_DIR / f"{gpu}-FP16.json"
        stored = KernelTable.from_json(path.read_text())
        fresh = tune_table(gpu, dims=TUNE_DIMS_QUICK, engine=engine)
        diff = compare_tables(stored, fresh)
        assert not diff, "\n".join(
            [f"golden kernel table drift for {gpu}/FP16:"]
            + diff
            + [
                "if intentional, refresh with: repro tune-kernels "
                f"--gpu {' '.join(_GPUS)} --quick --out tests/golden/kernels"
            ]
        )
        assert stored.to_json() == fresh.to_json()


def test_goldens_cover_the_advertised_targets():
    found = sorted(p.name for p in GOLDEN_DIR.glob("*.json"))
    assert found == [f"{gpu}-FP16.json" for gpu in _GPUS]
