"""Shared tuning fixtures: tables are expensive, tune each once."""

import pytest

from repro.engine.core import ShapeEngine
from repro.kernels import TUNE_DIMS_QUICK, tune_table


@pytest.fixture(scope="session")
def engine():
    return ShapeEngine()


@pytest.fixture(scope="session")
def tiny_table(engine):
    """The smallest useful table: 2 dims x 1 batch = 8 buckets."""
    return tune_table("A100", dims=(256, 512), batches=(1,), engine=engine)


@pytest.fixture(scope="session")
def quick_table(engine):
    """The CI smoke grid (same one the golden tables are tuned on)."""
    return tune_table("A100", dims=TUNE_DIMS_QUICK, engine=engine)
