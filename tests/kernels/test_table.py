"""Table-artifact invariants: buckets, checksums, round-trips, diffs."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelTableError
from repro.kernels import KernelEntry, KernelTable, compare_tables
from repro.kernels.table import SCHEMA_VERSION, bucket_of


def _entry(batch=1, m=256, n=256, k=256, tile="128x256", **kw):
    base = dict(
        batch=batch, m=m, n=n, k=k,
        tile=tile, tile_m=128, tile_n=256, k_stage=32, threads=256,
        waves=2, blocks=16, latency_s=1e-4, tflops=100.0,
        runner_up="128x128", margin=1.2,
    )
    base.update(kw)
    return KernelEntry(**base)


def _table(entries, **kw):
    base = dict(
        gpu="A100",
        dtype="FP16",
        model_version="1:test",
        schema=SCHEMA_VERSION,
        provenance=(("tuner", "test"),),
        entries=tuple(entries),
    )
    base.update(kw)
    return KernelTable(**base)


class TestBucketOf:
    def test_octaves(self):
        assert bucket_of(1) == 0
        assert bucket_of(64) == 6
        assert bucket_of(96) == 6  # the 64..127 octave
        assert bucket_of(127) == 6
        assert bucket_of(128) == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(KernelTableError):
            bucket_of(0)
        with pytest.raises(KernelTableError):
            bucket_of(-4)

    @given(v=st.integers(min_value=1, max_value=1 << 40))
    def test_matches_floor_log2(self, v):
        assert 2 ** bucket_of(v) <= v < 2 ** (bucket_of(v) + 1)


_finite = st.floats(
    min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False
)
_extent = st.integers(min_value=1, max_value=1 << 16)

_entries = st.builds(
    KernelEntry,
    batch=_extent, m=_extent, n=_extent, k=_extent,
    tile=st.sampled_from(["256x128", "128x256", "64x64", "32x32"]),
    tile_m=st.sampled_from([32, 64, 128, 256]),
    tile_n=st.sampled_from([32, 64, 128, 256]),
    k_stage=st.just(32),
    threads=st.sampled_from([64, 128, 256]),
    waves=st.integers(min_value=1, max_value=4096),
    blocks=st.integers(min_value=1, max_value=1 << 20),
    latency_s=_finite,
    tflops=_finite,
    runner_up=st.one_of(st.none(), st.just("64x128")),
    margin=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
)


class TestRoundTrip:
    def test_tuned_table_round_trips_bit_for_bit(self, tiny_table):
        text = tiny_table.to_json()
        assert KernelTable.from_json(text).to_json() == text
        assert KernelTable.from_json(text) == tiny_table

    @settings(max_examples=50, deadline=None)
    @given(entries=st.lists(_entries, min_size=0, max_size=4))
    def test_any_table_round_trips_bit_for_bit(self, entries):
        table = _table(entries)
        text = table.to_json()
        assert KernelTable.from_json(text).to_json() == text

    def test_checksum_is_pure_function_of_payload(self, tiny_table):
        assert tiny_table.checksum() == tiny_table.checksum()
        moved = dataclasses.replace(tiny_table, model_version="1:other")
        assert moved.checksum() != tiny_table.checksum()


class TestVerificationAtLoad:
    def test_tampered_entry_fails_checksum(self, tiny_table):
        data = json.loads(tiny_table.to_json())
        data["entries"][0]["latency_s"] *= 2
        with pytest.raises(KernelTableError, match="checksum mismatch"):
            KernelTable.from_json(json.dumps(data))

    def test_tampered_checksum_fails(self, tiny_table):
        data = json.loads(tiny_table.to_json())
        data["checksum"] = "0" * 16
        with pytest.raises(KernelTableError, match="checksum mismatch"):
            KernelTable.from_json(json.dumps(data))

    def test_unsupported_schema_rejected(self, tiny_table):
        data = json.loads(tiny_table.to_json())
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(KernelTableError, match="unsupported table schema"):
            KernelTable.from_json(json.dumps(data))

    def test_malformed_json_rejected(self):
        with pytest.raises(KernelTableError, match="malformed table JSON"):
            KernelTable.from_json("{not json")
        with pytest.raises(KernelTableError, match="JSON object"):
            KernelTable.from_json("[1, 2]")

    def test_bad_containers_rejected(self):
        base = {"schema": SCHEMA_VERSION, "provenance": {}, "entries": []}
        bad_prov = dict(base, provenance=[1])
        with pytest.raises(KernelTableError, match="provenance"):
            KernelTable.from_json(json.dumps(bad_prov))
        bad_entries = dict(base, entries={})
        with pytest.raises(KernelTableError, match="entries"):
            KernelTable.from_json(json.dumps(bad_entries))
        missing_fields = dict(base, entries=[{"batch": 1}])
        with pytest.raises(KernelTableError, match="bad table entry"):
            KernelTable.from_json(json.dumps(missing_fields))


class TestLookup:
    def test_hit_anywhere_in_bucket_and_miss_outside(self, tiny_table):
        rep = tiny_table.lookup(1, 256, 512, 256)
        assert rep is not None and (rep.m, rep.n, rep.k) == (256, 512, 256)
        # 300 and 256 share the log2 bucket; 700 lands in 512's.
        assert tiny_table.lookup(1, 300, 700, 300) == rep
        assert tiny_table.lookup(1, 64, 256, 256) is None  # m octave untuned
        assert tiny_table.lookup(8, 256, 256, 256) is None  # batch untuned

    def test_one_entry_per_bucket(self, tiny_table):
        assert len(tiny_table.entries) == 8  # 2 dims ** 3 x 1 batch
        assert len(tiny_table.index()) == len(tiny_table.entries)


class TestCompareTables:
    def test_identical_tables_diff_empty(self, tiny_table):
        assert compare_tables(tiny_table, tiny_table) == []
        reparsed = KernelTable.from_json(tiny_table.to_json())
        assert compare_tables(tiny_table, reparsed) == []

    def test_model_version_line_first_and_checksum_last(self, tiny_table):
        fresh = dataclasses.replace(tiny_table, model_version="2:bumped")
        diff = compare_tables(tiny_table, fresh)
        assert diff
        assert "model_version" in diff[0]
        assert "--update-golden" in diff[0]
        assert diff[-1].startswith("checksum:")

    def test_target_change_short_circuits(self, tiny_table):
        fresh = dataclasses.replace(tiny_table, gpu="H100")
        diff = compare_tables(tiny_table, fresh)
        assert len(diff) == 1
        assert "target changed" in diff[0]

    def test_pick_changes_ranked_by_latency_move(self):
        small = _entry(m=256, tile="128x256", latency_s=1e-4)
        big = _entry(m=512, tile="128x256", latency_s=1e-4)
        stored = _table([small, big])
        fresh = _table([
            # Small move on the m=256 bucket, big move on m=512.
            dataclasses.replace(small, tile="64x64", latency_s=1.05e-4),
            dataclasses.replace(big, tile="32x32", latency_s=3e-4),
        ])
        diff = compare_tables(stored, fresh)
        picks = [line for line in diff if "pick" in line]
        assert len(picks) == 2
        assert "512" in picks[0] and "200.0% move" in picks[0]
        assert "256" in picks[1]
        assert diff[-1].startswith("checksum:")

    def test_numeric_drift_without_pick_change_is_reported(self):
        entry = _entry()
        stored = _table([entry])
        fresh = _table([dataclasses.replace(entry, latency_s=2e-4)])
        diff = compare_tables(stored, fresh)
        assert any("numbers drifted" in line for line in diff)

    def test_bucket_count_and_membership_changes(self):
        a, b = _entry(m=256), _entry(m=512)
        diff = compare_tables(_table([a, b]), _table([a]))
        assert any("bucket count" in line for line in diff)
        assert any("entry removed" in line for line in diff)
        diff = compare_tables(_table([a]), _table([a, b]))
        assert any("new entry" in line for line in diff)
