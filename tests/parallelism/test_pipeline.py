"""Tests for pipeline stage assignment and bubble model."""

import pytest

from repro.errors import ParallelismError
from repro.parallelism.pipeline import (
    PipelinePlan,
    assign_stages,
    bubble_fraction,
    is_balanced,
)


class TestAssignStages:
    def test_even_split(self):
        assert assign_stages(32, 8) == [4] * 8

    def test_remainder_front_loaded(self):
        assert assign_stages(10, 4) == [3, 3, 2, 2]

    def test_sum_preserved(self):
        for L, p in [(32, 8), (10, 4), (7, 3), (5, 5)]:
            assert sum(assign_stages(L, p)) == L

    def test_more_stages_than_layers_raises(self):
        with pytest.raises(ParallelismError):
            assign_stages(4, 5)

    def test_nonpositive_raises(self):
        with pytest.raises(ParallelismError):
            assign_stages(0, 1)

    def test_is_balanced(self):
        assert is_balanced(32, 8)
        assert not is_balanced(32, 5)


class TestBubble:
    def test_formula(self):
        assert bubble_fraction(4, 12) == pytest.approx(3 / 12)

    def test_single_stage_no_bubble(self):
        assert bubble_fraction(1, 8) == 0.0

    def test_nonpositive_raises(self):
        with pytest.raises(ParallelismError):
            bubble_fraction(0, 8)


class TestPipelinePlan:
    def make(self, L, p, m=8, layer_s=1e-3, boundary=0.0):
        return PipelinePlan(
            num_layers=L,
            num_stages=p,
            num_microbatches=m,
            layer_time_s=layer_s,
            stage_boundary_s=boundary,
        )

    def test_balanced_iteration_time(self):
        plan = self.make(32, 4, m=8)
        # (m + p - 1) * stage_time; stage = 8 layers.
        assert plan.iteration_time_s == pytest.approx((8 + 3) * 8e-3)

    def test_unbalanced_runs_at_slowest_stage(self):
        # Paper: "optimal for the number of layers to be divisible by
        # the number of pipeline parallel stages".
        balanced = self.make(30, 5)
        unbalanced = self.make(31, 5)  # one stage has 7 layers
        per_layer_bal = balanced.iteration_time_s / 30
        per_layer_unb = unbalanced.iteration_time_s / 31
        assert per_layer_unb > per_layer_bal

    def test_efficiency_bounded(self):
        for L, p in [(32, 8), (31, 8), (30, 7)]:
            plan = self.make(L, p)
            assert 0 < plan.efficiency <= 1

    def test_balanced_beats_unbalanced_efficiency(self):
        assert self.make(32, 8).efficiency > self.make(33, 8).efficiency

    def test_more_microbatches_shrink_bubble(self):
        small = self.make(32, 8, m=8)
        large = self.make(32, 8, m=64)
        assert large.efficiency > small.efficiency

    def test_boundary_cost_counted(self):
        free = self.make(32, 4)
        costly = self.make(32, 4, boundary=1e-3)
        assert costly.iteration_time_s > free.iteration_time_s
