"""Tests for the (t, p, d) parallelism planner."""

import pytest

from repro.core.config import get_model
from repro.errors import ParallelismError
from repro.parallelism.planner import ParallelPlanner, _divisors


@pytest.fixture(scope="module")
def planner():
    return ParallelPlanner("aws-p4d")


class TestDivisors:
    def test_divisors(self):
        assert _divisors(12) == [1, 2, 3, 4, 6, 12]
        assert _divisors(1) == [1]


class TestEvaluate:
    def test_plan_fields(self, planner):
        plan = planner.evaluate(get_model("gpt3-6.7b", microbatch=1), 4, 2, 1)
        assert plan.gpus == 8
        assert plan.iteration_time_s > 0
        assert 0 <= plan.comm_fraction <= 1
        assert plan.balanced_pipeline  # 32 layers / 2 stages

    def test_infeasible_tp_raises(self, planner):
        with pytest.raises(ParallelismError):
            planner.evaluate(get_model("gpt3-2.7b"), 6, 1, 1)

    def test_too_many_stages_raises(self, planner):
        with pytest.raises(ParallelismError):
            planner.evaluate(get_model("pythia-70m"), 1, 16, 1)

    def test_describe(self, planner):
        plan = planner.evaluate(get_model("gpt3-6.7b", microbatch=1), 8, 1, 1)
        assert "t=8" in plan.describe()


class TestMemory:
    def test_large_model_needs_sharding(self, planner):
        cfg = get_model("gpt3-6.7b", microbatch=1)
        assert not planner.fits(cfg, 1, 1)  # 6.7B Adam states >> 40GB
        assert planner.fits(cfg, 8, 1) or planner.fits(cfg, 8, 2)

    def test_memory_decreases_with_sharding(self, planner):
        cfg = get_model("gpt3-6.7b", microbatch=1)
        assert planner.memory_per_gpu_bytes(cfg, 4, 2) < planner.memory_per_gpu_bytes(
            cfg, 1, 1
        )


class TestPlanning:
    def test_plans_sorted_fastest_first(self, planner):
        plans = planner.plan(get_model("gpt3-6.7b", microbatch=1), 16)
        assert len(plans) >= 1
        times = [p.iteration_time_s for p in plans]
        assert times == sorted(times)

    def test_all_plans_use_all_gpus(self, planner):
        for plan in planner.plan(get_model("gpt3-6.7b", microbatch=1), 16):
            assert plan.gpus == 16

    def test_tp_capped_at_node_size(self, planner):
        plans = planner.plan(get_model("gpt3-6.7b", microbatch=1), 32)
        assert all(p.tp <= 8 for p in plans)

    def test_best_returns_first(self, planner):
        cfg = get_model("gpt3-6.7b", microbatch=1)
        plans = planner.plan(cfg, 16)
        assert planner.best(cfg, 16) == plans[0]

    def test_require_fit_filters(self, planner):
        cfg = get_model("gpt3-6.7b", microbatch=1)
        strict = planner.plan(cfg, 8, require_fit=True)
        loose = planner.plan(cfg, 8, require_fit=False)
        assert len(loose) >= len(strict)
        assert all(p.fits_memory for p in strict)

    def test_nonpositive_gpus_raises(self, planner):
        with pytest.raises(ParallelismError):
            planner.plan(get_model("gpt3-6.7b"), 0)


class TestSummitCase:
    def test_summit_prefers_intra_node_tp(self):
        planner = ParallelPlanner("ornl-summit")
        cfg = get_model("gpt3-6.7b", microbatch=1).with_overrides(
            hidden_size=4096, num_heads=32
        )
        plans = planner.plan(cfg, 12, require_fit=False)
        assert plans, "no feasible plans found"
        # 4096 is not divisible by 6 -> t in {1, 2, 4} only.
        assert all(p.tp in (1, 2, 4) for p in plans)
