"""Tests for the Table III node topologies."""

import pytest

from repro.errors import ParallelismError
from repro.parallelism.topology import NodeTopology, get_system, list_systems


class TestTableIII:
    def test_p4d_is_8x_a100(self):
        topo = get_system("aws-p4d")
        assert topo.gpus_per_node == 8
        assert topo.gpu.name == "A100"

    def test_summit_is_6x_v100(self):
        topo = get_system("ornl-summit")
        assert topo.gpus_per_node == 6
        assert topo.gpu.name == "V100"

    def test_expanse_is_4x_v100_32gb(self):
        topo = get_system("sdsc-expanse")
        assert topo.gpus_per_node == 4
        assert topo.gpu.memory_gb == 32.0

    def test_nvlink_faster_than_network(self):
        for topo in list_systems():
            assert topo.intra_node_bw > topo.inter_node_bw


class TestCommFor:
    def test_intra_node_group_uses_nvlink(self):
        topo = get_system("aws-p4d")
        comm = topo.comm_for(8)
        assert comm.bw_bytes_s == topo.intra_node_bw

    def test_cross_node_group_uses_network(self):
        topo = get_system("aws-p4d")
        comm = topo.comm_for(16)
        assert comm.bw_bytes_s == topo.inter_node_bw

    def test_summit_boundary_is_6(self):
        topo = get_system("ornl-summit")
        assert topo.comm_for(6).bw_bytes_s == topo.intra_node_bw
        assert topo.comm_for(7).bw_bytes_s == topo.inter_node_bw


class TestRegistry:
    def test_unknown_raises(self):
        with pytest.raises(ParallelismError, match="known:"):
            get_system("frontier")

    def test_passthrough(self):
        topo = get_system("aws-p4d")
        assert get_system(topo) is topo

    def test_invalid_gpus_per_node_rejected(self):
        from repro.gpu.specs import get_gpu

        with pytest.raises(ParallelismError):
            NodeTopology(
                name="bad",
                gpu=get_gpu("A100"),
                gpus_per_node=0,
                intra_node_bw=1e9,
                inter_node_bw=1e9,
            )

    def test_describe(self):
        assert "V100" in get_system("ornl-summit").describe()
