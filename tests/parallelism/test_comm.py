"""Tests for the alpha-beta collective cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParallelismError
from repro.parallelism.comm import (
    CommModel,
    point_to_point_s,
    ring_allgather_s,
    ring_allreduce_s,
)

BW = 100e9
ALPHA = 5e-6


class TestAllReduce:
    def test_single_rank_free(self):
        assert ring_allreduce_s(1e9, 1, BW, ALPHA) == 0.0

    def test_two_ranks(self):
        # 2(n-1) steps of alpha + 2(n-1)/n volume.
        got = ring_allreduce_s(1e9, 2, BW, ALPHA)
        assert got == pytest.approx(2 * ALPHA + 1e9 / BW)

    def test_bandwidth_term_saturates(self):
        # As n grows the volume term approaches 2V/bw.
        big = ring_allreduce_s(1e9, 1000, BW, 0.0)
        assert big == pytest.approx(2 * 1e9 / BW, rel=0.01)

    def test_negative_bytes_raise(self):
        with pytest.raises(ParallelismError):
            ring_allreduce_s(-1, 2, BW, ALPHA)

    def test_zero_ranks_raise(self):
        with pytest.raises(ParallelismError):
            ring_allreduce_s(1e9, 0, BW, ALPHA)

    @given(
        st.floats(min_value=1.0, max_value=1e12),
        st.integers(min_value=2, max_value=64),
    )
    def test_monotone_in_volume(self, nbytes, ranks):
        a = ring_allreduce_s(nbytes, ranks, BW, ALPHA)
        b = ring_allreduce_s(2 * nbytes, ranks, BW, ALPHA)
        assert b > a


class TestAllGather:
    def test_half_of_allreduce_volume(self):
        ag = ring_allgather_s(1e9, 8, BW, 0.0)
        ar = ring_allreduce_s(1e9, 8, BW, 0.0)
        assert ar == pytest.approx(2 * ag)

    def test_single_rank_free(self):
        assert ring_allgather_s(1e9, 1, BW, ALPHA) == 0.0


class TestPointToPoint:
    def test_alpha_beta(self):
        assert point_to_point_s(1e9, BW, ALPHA) == pytest.approx(ALPHA + 1e9 / BW)


class TestCommModel:
    def test_facade(self):
        model = CommModel(bw_bytes_s=BW, alpha_s=ALPHA)
        assert model.allreduce(1e9, 4) == ring_allreduce_s(1e9, 4, BW, ALPHA)
        assert model.allgather(1e9, 4) == ring_allgather_s(1e9, 4, BW, ALPHA)
        assert model.send(1e9) == point_to_point_s(1e9, BW, ALPHA)
