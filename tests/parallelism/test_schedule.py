"""Tests for the event-based pipeline schedule simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParallelismError
from repro.parallelism.pipeline import bubble_fraction
from repro.parallelism.schedule import simulate_pipeline


class TestValidity:
    @pytest.mark.parametrize("schedule", ["1f1b", "gpipe"])
    def test_all_ops_executed_once(self, schedule):
        res = simulate_pipeline(4, 8, schedule=schedule)
        keys = {(op.stage, op.microbatch, op.kind) for op in res.ops}
        assert len(res.ops) == len(keys) == 2 * 4 * 8

    @pytest.mark.parametrize("schedule", ["1f1b", "gpipe"])
    def test_no_stage_overlap(self, schedule):
        res = simulate_pipeline(4, 6, schedule=schedule)
        for stage in range(4):
            intervals = sorted(
                (op.start, op.end) for op in res.ops if op.stage == stage
            )
            for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
                assert s1 >= e0 - 1e-12

    @pytest.mark.parametrize("schedule", ["1f1b", "gpipe"])
    def test_dependencies_respected(self, schedule):
        res = simulate_pipeline(3, 5, schedule=schedule)
        fwd = {(o.stage, o.microbatch): o for o in res.ops if o.kind == "fwd"}
        bwd = {(o.stage, o.microbatch): o for o in res.ops if o.kind == "bwd"}
        for (stage, mb), op in fwd.items():
            if stage > 0:
                assert op.start >= fwd[(stage - 1, mb)].end - 1e-12
        for (stage, mb), op in bwd.items():
            assert op.start >= fwd[(stage, mb)].end - 1e-12
            if stage < 2:
                assert op.start >= bwd[(stage + 1, mb)].end - 1e-12

    def test_invalid_args_raise(self):
        with pytest.raises(ParallelismError):
            simulate_pipeline(0, 4)
        with pytest.raises(ParallelismError):
            simulate_pipeline(4, 4, fwd_time=0)
        with pytest.raises(ParallelismError):
            simulate_pipeline(4, 4, schedule="zb-h1")


class TestBubble:
    def test_single_stage_no_bubble(self):
        res = simulate_pipeline(1, 4)
        assert res.bubble_fraction == pytest.approx(0.0)

    def test_1f1b_matches_closed_form(self):
        # With uniform stages the 1F1B bubble is exactly (p-1)/m.
        for p, m in [(2, 4), (4, 8), (4, 16), (8, 8)]:
            res = simulate_pipeline(p, m, fwd_time=1.0, bwd_time=2.0)
            assert res.bubble_fraction == pytest.approx(
                bubble_fraction(p, m), rel=1e-9
            ), (p, m)

    def test_gpipe_same_bubble_uniform_ops(self):
        # With one pass of forwards and one of backwards, GPipe's bubble
        # is also (p-1)/m for uniform op times.
        res = simulate_pipeline(4, 8, schedule="gpipe")
        assert res.bubble_fraction == pytest.approx(bubble_fraction(4, 8))

    def test_more_microbatches_shrink_bubble(self):
        small = simulate_pipeline(4, 4).bubble_fraction
        large = simulate_pipeline(4, 32).bubble_fraction
        assert large < small

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=24),
    )
    def test_bubble_never_negative(self, p, m):
        res = simulate_pipeline(p, m)
        assert res.bubble_fraction >= -1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=16),
    )
    def test_1f1b_never_slower_than_gpipe(self, p, m):
        f1b = simulate_pipeline(p, m, schedule="1f1b").makespan
        gpipe = simulate_pipeline(p, m, schedule="gpipe").makespan
        assert f1b <= gpipe + 1e-9


class TestInterleaved:
    def test_closed_form(self):
        from repro.parallelism.schedule import interleaved_bubble_fraction

        assert interleaved_bubble_fraction(8, 8, 1) == pytest.approx(7 / 8)
        assert interleaved_bubble_fraction(8, 8, 2) == pytest.approx(7 / 16)
        assert interleaved_bubble_fraction(8, 8, 4) == pytest.approx(7 / 32)

    def test_v1_matches_plain_bubble(self):
        from repro.parallelism.schedule import interleaved_bubble_fraction

        assert interleaved_bubble_fraction(4, 16, 1) == bubble_fraction(4, 16)

    def test_invalid_raises(self):
        from repro.parallelism.schedule import interleaved_bubble_fraction

        with pytest.raises(ParallelismError):
            interleaved_bubble_fraction(4, 4, 0)


class TestMemoryProperty:
    def test_1f1b_caps_inflight_activations(self):
        # The defining property: stage i holds at most p - i in-flight
        # microbatches, independent of m.
        p, m = 4, 32
        res = simulate_pipeline(p, m, schedule="1f1b")
        for stage in range(p):
            assert res.peak_activations(stage) <= p - stage

    def test_gpipe_holds_all_microbatches(self):
        p, m = 4, 16
        res = simulate_pipeline(p, m, schedule="gpipe")
        assert res.peak_activations(0) == m

    def test_1f1b_memory_advantage_grows_with_m(self):
        p = 4
        for m in (8, 32):
            f1b = simulate_pipeline(p, m, 1.0, 2.0, "1f1b")
            gp = simulate_pipeline(p, m, 1.0, 2.0, "gpipe")
            assert f1b.peak_activations(0) < gp.peak_activations(0)
