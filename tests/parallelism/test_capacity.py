"""OOM-wall regression tests: the planner's typed capacity gate.

Satellite of the training-step estimator PR: a config known not to fit
at (t=1, p=1) must be rejected with a typed CapacityError naming the
overflowing phase, and accepted at the first (t, p) the estimator says
fits. Plus the embedding double-count regression under TP.
"""

import pytest

from repro.core.config import get_model
from repro.core.memory import ADAM_STATE_BYTES_PER_PARAM, MemoryBudget
from repro.errors import CapacityError, ParallelismError
from repro.parallelism.planner import ParallelPlanner, capacity_matrix
from repro.trainstep.memory import estimate_memory, module_param_elements


@pytest.fixture(scope="module")
def planner():
    return ParallelPlanner("aws-p4d")


@pytest.fixture(scope="module")
def cfg():
    return get_model("gpt3-6.7b", microbatch=1)


class TestCheckCapacity:
    def test_rejected_at_1_1_naming_phase(self, planner, cfg):
        with pytest.raises(CapacityError) as exc:
            planner.check_capacity(cfg, 1, 1)
        err = exc.value
        assert err.phase == "backward"
        assert err.required_bytes > err.budget_bytes
        assert "backward" in str(err)

    def test_accepted_at_first_fitting_cell(self, planner, cfg):
        """Walk the matrix in (t, p) order; the first cell the estimator
        says fits must pass check_capacity, everything before must not."""
        cells = capacity_matrix(planner, cfg)
        first_fit = next(c for c in cells if c["fits"])
        assert (first_fit["tp"], first_fit["pp"]) == (2, 2)
        report = planner.check_capacity(cfg, first_fit["tp"], first_fit["pp"])
        assert report.peak_bytes <= planner.budget().usable_bytes
        for cell in cells:
            if cell is first_fit:
                break
            assert not cell["fits"]

    def test_checkpointing_rescues_borderline_cell(self, planner, cfg):
        """(t=1, p=4) misses the budget by a hair without checkpointing."""
        with pytest.raises(CapacityError):
            planner.check_capacity(cfg, 1, 4)
        report = planner.check_capacity(cfg, 1, 4, checkpointing="full")
        assert report.fits(planner.budget())


class TestCapacityMatrix:
    def test_matrix_verdicts_match_budget(self, planner, cfg):
        budget_gb = planner.budget().usable_bytes / 1e9
        for cell in capacity_matrix(planner, cfg):
            assert cell["budget_gb"] == pytest.approx(budget_gb)
            if cell["fits"]:
                assert cell["peak_gb"] <= cell["budget_gb"]
                assert cell["phase"] == "backward"  # peak phase, informational
            else:
                assert cell["peak_gb"] > cell["budget_gb"]
                assert cell["phase"] == "backward"

    def test_matrix_monotone_in_t_and_p(self, planner, cfg):
        cells = {(c["tp"], c["pp"]): c["peak_gb"] for c in capacity_matrix(planner, cfg)}
        for (t, p), peak in cells.items():
            if (2 * t, p) in cells:
                assert cells[(2 * t, p)] <= peak
            if (t, 2 * p) in cells:
                assert cells[(t, 2 * p)] <= peak


class TestPlanRejectsOOM:
    def test_plan_never_returns_an_oom_plan(self, planner, cfg):
        """Acceptance criterion: every returned plan passes the memory
        model, and the paper's pick for 16 GPUs survives the wall."""
        plans = planner.plan(cfg, 16)
        budget = planner.budget()
        for plan in plans:
            report = estimate_memory(
                cfg, tp=plan.tp, pipeline_stages=plan.pp,
                checkpointing=plan.checkpointing,
            )
            assert report.fits(budget)
            assert plan.peak_memory_bytes == report.peak_bytes
        best = plans[0]
        assert (best.tp, best.pp, best.dp) == (4, 4, 1)

    def test_oom_cells_excluded_from_plans(self, planner, cfg):
        plans = planner.plan(cfg, 4)  # only (t,p) with t*p*d == 4
        assert all((p.tp, p.pp) != (1, 1) for p in plans)

    def test_auto_checkpointing_recovers_cells(self, planner, cfg):
        loose = planner.plan(cfg, 4, checkpointing="auto")
        strict = planner.plan(cfg, 4, checkpointing="none")
        assert len(loose) >= len(strict)
        recovered = {(p.tp, p.pp) for p in loose} - {(p.tp, p.pp) for p in strict}
        for t, p in recovered:
            assert not planner.fits(cfg, t, p, checkpointing="none")
            assert planner.fits(cfg, t, p, checkpointing="full")

    def test_infeasible_vs_oom_are_distinct_errors(self, planner, cfg):
        with pytest.raises(CapacityError):
            planner.check_capacity(cfg, 1, 1)
        with pytest.raises(ParallelismError) as exc:
            planner.evaluate(cfg, 6, 1, 1)  # 6 doesn't divide heads
        assert not isinstance(exc.value, CapacityError)


class TestEmbeddingDedupRegression:
    """Satellite 4: ``fits`` no longer double-counts the tied embedding."""

    def test_per_rank_bytes_exactly_adam_residency(self, planner):
        cfg = get_model("gpt3-2.7b", tp_degree=4)
        mem = estimate_memory(cfg, tp=4)
        resident = (
            mem.parameter_bytes + mem.gradient_bytes + mem.optimizer_state_bytes
        )
        assert resident == pytest.approx(
            cfg.param_count() / 4 * ADAM_STATE_BYTES_PER_PARAM, rel=1e-12
        )

    def test_naive_walk_overcounts_by_vocab_times_hidden(self):
        cfg = get_model("gpt3-2.7b")
        naive = module_param_elements(cfg, dedup_tied=False)
        dedup = module_param_elements(cfg)
        assert sum(naive.values()) - sum(dedup.values()) == (
            cfg.vocab_size * cfg.hidden_size
        )

    def test_double_count_is_material_to_verdicts(self, planner):
        """The double-count was worth ~2 GB/rank of Adam residency on
        gpt3-2.7b at t=1 — a meaningful slice of an A100's budget."""
        cfg = get_model("gpt3-2.7b")
        extra = cfg.vocab_size * cfg.hidden_size * ADAM_STATE_BYTES_PER_PARAM
        budget = MemoryBudget.for_gpu(planner.topology.gpu)
        assert extra > 2e9
        assert extra > 0.05 * budget.usable_bytes
