"""Tests for Megatron-style tensor parallel sharding and cost."""

import pytest

from repro.core.config import get_model
from repro.errors import ParallelismError
from repro.parallelism.tensor_parallel import (
    TensorParallelLayer,
    validate_tp_feasible,
)


@pytest.fixture(scope="module")
def tp():
    return TensorParallelLayer("aws-p4d")


@pytest.fixture(scope="module")
def cfg():
    return get_model("gpt3-6.7b")  # h=4096, a=32


class TestFeasibility:
    def test_power_of_two_degrees_ok(self, cfg):
        for t in (1, 2, 4, 8):
            validate_tp_feasible(cfg, t)

    def test_t6_infeasible_for_2560(self):
        # The Sec VII-A problem: 2560 % 6 != 0, 32 heads % 6 != 0.
        with pytest.raises(ParallelismError, match="infeasible TP"):
            validate_tp_feasible(get_model("gpt3-2.7b"), 6)

    def test_heads_constraint(self):
        cfg = get_model("gpt3-2.7b").with_overrides(num_heads=20)
        with pytest.raises(ParallelismError, match="a=20"):
            validate_tp_feasible(cfg, 8)

    def test_nonpositive_raises(self, cfg):
        with pytest.raises(ParallelismError):
            validate_tp_feasible(cfg, 0)


class TestSharding:
    def test_shard_config_sets_degree(self, tp, cfg):
        sharded = tp.shard_config(cfg, 4)
        assert sharded.tp_degree == 4
        assert "tp4" in sharded.name

    def test_rank_gemms_match_table2(self, tp, cfg):
        ops = {op.module: op for op in tp.rank_gemms(cfg, 4)}
        assert ops["qkv_transform"].n == 3 * 4096 // 4
        assert ops["mlp_h_to_4h"].n == 4 * 4096 // 4
        assert ops["attention_score"].batch == cfg.microbatch * 32 // 4


class TestCost:
    def test_compute_shrinks_with_t(self, tp, cfg):
        c1 = tp.layer_cost(cfg, 1)
        c4 = tp.layer_cost(cfg, 4)
        assert c4.compute_s < c1.compute_s

    def test_comm_zero_at_t1(self, tp, cfg):
        assert tp.layer_cost(cfg, 1).comm_s == 0.0

    def test_comm_positive_beyond_t1(self, tp, cfg):
        cost = tp.layer_cost(cfg, 4)
        assert cost.comm_s > 0
        assert 0 < cost.comm_fraction < 1

    def test_total_is_sum(self, tp, cfg):
        cost = tp.layer_cost(cfg, 2)
        assert cost.total_s == pytest.approx(cost.compute_s + cost.comm_s)

    def test_scaling_table_skips_infeasible(self, tp):
        table = tp.scaling_table(get_model("gpt3-2.7b"), [1, 2, 3, 4, 6, 8])
        assert set(table) == {1, 2, 4, 8}  # 3 and 6 dropped

    def test_diminishing_returns(self, tp, cfg):
        # Per the paper ("t should be as small as possible"): per-rank
        # speedup from doubling t is sublinear because comm grows and
        # GEMMs shrink into less efficient regimes.
        t1 = tp.layer_cost(cfg, 1).total_s
        t8 = tp.layer_cost(cfg, 8).total_s
        assert t8 > t1 / 8
