"""Tests for the sequence-parallel cost model."""

import pytest

from repro.core.config import get_model
from repro.errors import ParallelismError
from repro.parallelism.sequence_parallel import (
    SequenceParallelLayer,
    validate_sp_feasible,
)
from repro.parallelism.tensor_parallel import TensorParallelLayer


@pytest.fixture(scope="module")
def sp():
    return SequenceParallelLayer("aws-p4d")


@pytest.fixture(scope="module")
def tp():
    return TensorParallelLayer("aws-p4d")


@pytest.fixture(scope="module")
def cfg():
    return get_model("gpt3-6.7b")


class TestFeasibility:
    def test_pow2_seq_divides(self, cfg):
        for t in (2, 4, 8):
            validate_sp_feasible(cfg, t)

    def test_odd_seq_rejected(self, cfg):
        odd = cfg.with_overrides(seq_len=2050)
        with pytest.raises(ParallelismError, match="sequence length"):
            validate_sp_feasible(odd, 4)


class TestCost:
    def test_sp_never_slower_than_tp(self, sp, tp, cfg):
        for t in (2, 4, 8):
            assert sp.layer_cost(cfg, t).total_s <= tp.layer_cost(cfg, t).total_s

    def test_pointwise_saving_grows_with_t(self, sp, cfg):
        saved = [sp.layer_cost(cfg, t).pointwise_saved_s for t in (2, 4, 8)]
        assert saved[0] < saved[1] < saved[2]
        assert all(s > 0 for s in saved)

    def test_comm_volume_matches_tp(self, sp, tp, cfg):
        # RS + AG == ring all-reduce: identical modelled comm time.
        for t in (2, 8):
            assert sp.layer_cost(cfg, t).comm_s == pytest.approx(
                tp.layer_cost(cfg, t).comm_s
            )

    def test_gemm_time_unchanged(self, sp, tp, cfg):
        # The saving is exactly the pointwise delta.
        t = 4
        sp_cost = sp.layer_cost(cfg, t)
        tp_cost = tp.layer_cost(cfg, t)
        assert tp_cost.compute_s - sp_cost.compute_s == pytest.approx(
            sp_cost.pointwise_saved_s
        )

    def test_activation_savings_fraction(self, sp, cfg):
        assert sp.activation_savings_fraction(cfg, 8) == pytest.approx(0.875)
        assert sp.activation_savings_fraction(cfg, 2) == pytest.approx(0.5)


class TestNewShapeRule:
    def test_sp_adds_s_divisibility_rule(self):
        """The new sizing rule SP introduces: s % t == 0.

        An s that is a large power of two (the paper's recommendation
        for other reasons) automatically satisfies it for power-of-two
        t — but not for Summit-style t=6."""
        cfg = get_model("gpt3-6.7b").with_overrides(hidden_size=4608, num_heads=36)
        # s=2048 is not divisible by 6 even when h and a are.
        with pytest.raises(ParallelismError):
            validate_sp_feasible(cfg, 6)
        validate_sp_feasible(cfg.with_overrides(seq_len=2052), 6)
