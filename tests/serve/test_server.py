"""AdvisoryServer behaviour: coalescing, parity, cache, backpressure,
deadlines, fault retries, sharding, lint, and lifecycle."""

import time

import numpy as np
import pytest

from repro.engine.core import ShapeEngine
from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ServerClosedError,
)
from repro.observability import metrics, reset_metrics
from repro.resilience import FaultPlan, clear_plan, install_plan
from repro.serve import (
    AdvisoryClient,
    AdvisoryServer,
    ServeConfig,
    ShapeQuery,
    shard_for,
)


def _latency_query(m, n, k, batch=1, gpu="A100"):
    return ShapeQuery(kind="latency", m=m, n=n, k=k, batch=batch, gpu=gpu)


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


class TestShardFor:
    def test_stable_and_in_range(self):
        for workers in (1, 2, 3, 8):
            for name in ("A100", "H100", "V100", "MI250X"):
                shard = shard_for(name, workers)
                assert 0 <= shard < workers
                assert shard == shard_for(name, workers)

    def test_single_worker_takes_everything(self):
        assert shard_for("A100", 1) == 0
        assert shard_for("H100", 1) == 0


class TestCoalescing:
    def test_prestart_backlog_coalesces_into_one_engine_call(self):
        cfg = ServeConfig(workers=1, max_batch=64, cache_ttl_s=0)
        server = AdvisoryServer(cfg)
        futures = [server.submit(_latency_query(512, 512, 512)) for _ in range(8)]
        futures += [
            server.submit(_latency_query(256 * i + 64, 512, 512))
            for i in range(1, 5)
        ]
        server.start()
        advisories = [f.result(timeout=30) for f in futures]
        server.close()
        assert all(a.ok for a in advisories)
        stats = server.stats()
        assert stats.engine_calls == 1
        assert stats.coalesced_duplicates == 7
        assert stats.engine_rows == 5
        assert stats.shape_dispatched == 12
        assert stats.coalesce_ratio == 12.0
        # The batcher's win is visible in the registry too.
        assert metrics().counter("serve.engine_calls").value == 1
        assert metrics().counter("serve.coalesced_duplicates").value == 7

    def test_merged_batch_answers_are_bit_identical_to_direct_calls(self):
        shapes = [(1, 512, 512, 512), (2, 1000, 1111, 2049), (4, 96, 4096, 256)]
        cfg = ServeConfig(workers=1, max_batch=64, cache_ttl_s=0)
        server = AdvisoryServer(cfg)
        futures = [
            server.submit(ShapeQuery(kind="evaluate", batch=b, m=m, n=n, k=k))
            for (b, m, n, k) in shapes
        ]
        server.start()
        advisories = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats().engine_calls == 1  # all three merged

        engine = ShapeEngine()
        for (b, m, n, k), advisory in zip(shapes, advisories):
            ref = engine.evaluate(
                np.asarray([[b, m, n, k]], dtype=np.int64), "A100", "fp16"
            )
            assert advisory.payload["latency_s"] == float(ref.latency_s[0])
            assert advisory.payload["tflops"] == float(ref.tflops[0])
            assert advisory.payload["tile"] == ref.tile(0).name

    def test_duplicate_requests_get_equal_payloads(self):
        cfg = ServeConfig(workers=1, cache_ttl_s=0)
        server = AdvisoryServer(cfg)
        futures = [server.submit(_latency_query(768, 768, 768)) for _ in range(4)]
        server.start()
        payloads = [f.result(timeout=30).payload for f in futures]
        server.close()
        assert all(p == payloads[0] for p in payloads)


class TestResponseCache:
    def test_repeat_query_hits_cache(self):
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=60.0)) as server:
            first = server.request(_latency_query(640, 640, 640), timeout_s=30)
            second = server.request(_latency_query(640, 640, 640), timeout_s=30)
        assert first.source == "engine"
        assert second.source == "cache"
        assert second.payload == first.payload
        assert server.stats().cache_hits == 1
        assert metrics().counter("serve.cache_hits").value == 1

    def test_ttl_zero_disables_cache(self):
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0)) as server:
            server.request(_latency_query(640, 640, 640), timeout_s=30)
            second = server.request(_latency_query(640, 640, 640), timeout_s=30)
        assert second.source == "engine"
        assert server.stats().cache_hits == 0

    def test_entries_expire_after_ttl(self):
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0.05)) as server:
            server.request(_latency_query(640, 640, 640), timeout_s=30)
            time.sleep(0.08)
            again = server.request(_latency_query(640, 640, 640), timeout_s=30)
        assert again.source == "engine"

    def test_different_kind_same_shape_is_a_distinct_entry(self):
        with AdvisoryServer(ServeConfig(workers=1)) as server:
            lat = server.request(_latency_query(640, 640, 640), timeout_s=30)
            tfl = server.request(
                ShapeQuery(kind="tflops", m=640, n=640, k=640), timeout_s=30
            )
        assert lat.payload.keys() == {"latency_s"}
        assert tfl.payload.keys() == {"tflops"}
        assert tfl.source == "engine"  # not served from the latency entry


class TestBackpressure:
    def test_queue_full_raises_typed_and_counts(self):
        cfg = ServeConfig(workers=1, max_queue=4, cache_ttl_s=0)
        server = AdvisoryServer(cfg)  # not started: backlog is deterministic
        futures = [
            server.submit(_latency_query(64 * i, 128, 128)) for i in range(1, 5)
        ]
        with pytest.raises(QueueFullError):
            server.submit(_latency_query(999, 128, 128))
        stats = server.stats()
        assert stats.rejected_queue_full == 1
        assert metrics().counter("serve.rejected.queue_full").value == 1
        # Draining the backlog restores admission.
        server.start()
        assert all(f.result(timeout=30).ok for f in futures)
        accepted = server.request(_latency_query(999, 128, 128), timeout_s=30)
        assert accepted.ok
        server.close()


class TestDeadlines:
    def test_expired_request_is_rejected_not_computed(self):
        cfg = ServeConfig(workers=1, deadline_s=0.01, cache_ttl_s=0)
        server = AdvisoryServer(cfg)
        future = server.submit(_latency_query(320, 320, 320))
        time.sleep(0.05)  # let the deadline lapse while unstarted
        server.start()
        advisory = future.result(timeout=30)
        server.close()
        assert advisory.status == "rejected"
        assert advisory.error_type == "DeadlineExceededError"
        stats = server.stats()
        assert stats.rejected_deadline == 1
        assert stats.engine_calls == 0  # never wasted a batch slot
        assert metrics().counter("serve.rejected.deadline").value == 1

    def test_client_unwrap_raises_typed_deadline_error(self):
        from repro.serve.client import _unwrap

        cfg = ServeConfig(workers=1, deadline_s=0.01, cache_ttl_s=0)
        server = AdvisoryServer(cfg)
        future = server.submit(_latency_query(320, 320, 320))
        time.sleep(0.05)
        server.start()
        advisory = future.result(timeout=30)
        server.close()
        assert advisory.status == "rejected"
        with pytest.raises(DeadlineExceededError):
            _unwrap(advisory)


class TestFaultInjection:
    def test_injected_engine_fault_is_absorbed_by_retry(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 0,
                "faults": [
                    {
                        "site": "engine.batch_eval",
                        "kind": "raise",
                        "times": 1,
                        "exception": "RuntimeError",
                        "message": "injected engine crash",
                    }
                ],
            }
        )
        install_plan(plan)
        try:
            cfg = ServeConfig(
                workers=1, retries=1, retry_backoff_s=0.0, cache_ttl_s=0
            )
            with AdvisoryServer(cfg) as server:
                advisory = server.request(
                    _latency_query(448, 448, 448), timeout_s=30
                )
        finally:
            clear_plan()
        assert plan.fired() == 1
        assert advisory.ok

    def test_injected_engine_fault_without_retry_fails_typed(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 0,
                "faults": [
                    {
                        "site": "engine.batch_eval",
                        "kind": "raise",
                        "times": 1,
                        "exception": "RuntimeError",
                        "message": "injected engine crash",
                    }
                ],
            }
        )
        install_plan(plan)
        try:
            cfg = ServeConfig(workers=1, retries=0, cache_ttl_s=0)
            with AdvisoryServer(cfg) as server:
                advisory = server.request(
                    _latency_query(448, 448, 448), timeout_s=30
                )
        finally:
            clear_plan()
        assert advisory.status == "failed"
        assert advisory.error_type == "RuntimeError"
        assert "injected engine crash" in advisory.error
        client_exc = None
        try:
            from repro.serve.client import _unwrap

            _unwrap(advisory)
        except ServeError as exc:
            client_exc = exc
        assert client_exc is not None


class TestLint:
    def test_lint_preset_returns_verdict_and_fixits(self):
        with AdvisoryServer(ServeConfig(workers=1)) as server:
            verdict = AdvisoryClient(server).lint("gpt3-2.7b")
        assert verdict["exit_code"] in (0, 1)
        assert isinstance(verdict["findings"], list)
        assert isinstance(verdict["fixits"], list)
        assert "gpt3-2.7b" in verdict["target"]

    def test_lint_inline_config(self):
        config = {
            "name": "inline",
            "hidden_size": 2048,
            "num_heads": 16,
            "num_layers": 2,
            "vocab_size": 51200,
            "seq_len": 2048,
        }
        with AdvisoryServer(ServeConfig(workers=1)) as server:
            verdict = AdvisoryClient(server).lint(config)
        assert "exit_code" in verdict

    def test_unknown_model_fails_typed_without_killing_server(self):
        with AdvisoryServer(ServeConfig(workers=1)) as server:
            client = AdvisoryClient(server)
            with pytest.raises(ServeError):
                client.lint("no-such-model")
            # Server still serves.
            assert client.latency(512, 512, 512) > 0


class TestValidationAndLifecycle:
    def test_unknown_gpu_resolves_failed_not_raises(self):
        with AdvisoryServer(ServeConfig(workers=1)) as server:
            advisory = server.request(
                _latency_query(512, 512, 512, gpu="NOPE"), timeout_s=30
            )
        assert advisory.status == "failed"
        assert advisory.source == "validation"

    def test_submit_after_close_raises(self):
        server = AdvisoryServer(ServeConfig(workers=1))
        server.start()
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(_latency_query(512, 512, 512))

    def test_close_rejects_undispatched_backlog(self):
        server = AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0))
        future = server.submit(_latency_query(512, 512, 512))
        server.close()  # never started
        advisory = future.result(timeout=5)
        assert advisory.status == "rejected"
        assert advisory.error_type == "ServerClosedError"
        assert server.stats().rejected_closed == 1

    def test_close_is_idempotent_and_start_after_close_raises(self):
        server = AdvisoryServer(ServeConfig(workers=1))
        server.start()
        server.close()
        server.close()
        with pytest.raises(ServerClosedError):
            server.start()

    def test_multi_worker_sharding_routes_by_gpu(self):
        cfg = ServeConfig(workers=2, cache_ttl_s=0)
        with AdvisoryServer(cfg) as server:
            a = server.request(_latency_query(512, 512, 512, gpu="A100"), timeout_s=30)
            h = server.request(_latency_query(512, 512, 512, gpu="H100"), timeout_s=30)
        assert a.shard == server.shard_of(a.query)
        assert h.shard == server.shard_of(h.query)

    def test_stats_snapshot_is_isolated(self):
        with AdvisoryServer(ServeConfig(workers=1)) as server:
            server.request(_latency_query(512, 512, 512), timeout_s=30)
            snap = server.stats()
            snap.requests = 10_000
            assert server.stats().requests == 1
