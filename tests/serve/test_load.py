"""The load wall: >=1000 concurrent requests with heavy duplication.

Asserts the three serving guarantees end to end:

(a) every served answer is **bit-identical** to a direct call on a
    fresh private engine — dynamic batching changes how answers are
    computed, never what they are;
(b) dynamic batching works: strictly fewer vectorized engine calls
    than requests (coalesce ratio > 1);
(c) backpressure rejections are **typed** (QueueFullError) and counted
    in the metrics registry.
"""

import numpy as np
import pytest

from repro.engine.core import ShapeEngine
from repro.errors import QueueFullError
from repro.observability import metrics, reset_metrics
from repro.serve import (
    AdvisoryServer,
    ServeConfig,
    ShapeQuery,
    generate_queries,
    run_load,
)


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


class TestGenerateQueries:
    def test_same_seed_same_stream(self):
        a = generate_queries(200, seed=11, unique=16)
        b = generate_queries(200, seed=11, unique=16)
        assert a == b

    def test_different_seed_different_stream(self):
        assert generate_queries(200, seed=1) != generate_queries(200, seed=2)

    def test_duplication_is_heavy(self):
        queries = generate_queries(500, seed=3, unique=10)
        distinct = {q.batch_key() for q in queries}
        assert len(distinct) <= 10
        assert len(queries) == 500


class TestLoadWall:
    def test_thousand_requests_coalesce_and_stay_bit_identical(self):
        queries = generate_queries(1200, seed=123, unique=32)
        cfg = ServeConfig(workers=2, max_batch=64, max_queue=2048, cache_ttl_s=0)
        with AdvisoryServer(cfg) as server:
            report = run_load(server, queries, clients=12, seed=123, verify=True)

        assert report.requests == 1200
        assert report.ok == 1200
        assert report.failed == 0
        assert report.rejected_queue_full == 0

        # (a) bit-identical to direct engine calls (the loadgen's own
        # verifier, plus a spot-check below).
        assert report.verified_rows > 0
        assert report.verify_mismatches == 0

        # (b) strictly fewer engine batch calls than requests.  Shape
        # queries go through the batcher; kernel_params requests ride
        # the passthrough path and are counted separately.
        shape_requests = sum(1 for q in queries if q.is_shape_query)
        kernel_requests = sum(1 for q in queries if q.is_kernel_query)
        assert shape_requests + kernel_requests == 1200
        assert kernel_requests > 0
        assert 0 < report.engine_calls < shape_requests
        assert report.coalesce_ratio > 1.0
        assert report.server["shape_dispatched"] == shape_requests
        assert report.server["kernel_served"] == kernel_requests
        assert metrics().counter("serve.engine_calls").value == report.engine_calls

        # Spot-check (a) directly against a fresh engine, independently
        # of the loadgen's verifier.
        engine = ShapeEngine()
        spot = {q.batch_key(): q for q in queries if q.kind == "latency"}
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0)) as server:
            for query in list(spot.values())[:5]:
                advisory = server.request(query, timeout_s=30)
                ref = engine.evaluate(
                    np.asarray([query.shape_tuple()], dtype=np.int64),
                    query.gpu,
                    query.dtype,
                )
                assert advisory.payload["latency_s"] == float(ref.latency_s[0])

    def test_cached_load_run_still_answers_identically(self):
        # With the TTL cache on, most repeats short-circuit the queue;
        # the answers must not change.
        queries = generate_queries(400, seed=7, unique=12)
        cfg = ServeConfig(workers=2, max_batch=64, max_queue=1024, cache_ttl_s=300.0)
        with AdvisoryServer(cfg) as server:
            report = run_load(server, queries, clients=8, seed=7, verify=True)
        assert report.ok == 400
        assert report.verify_mismatches == 0
        assert report.cache_hits > 0
        assert report.engine_calls < 400

    def test_backpressure_rejections_typed_and_counted(self):
        # (c) an unstarted server builds a deterministic backlog: the
        # shard queue fills to max_queue, then admission control rejects.
        cfg = ServeConfig(workers=1, max_queue=16, cache_ttl_s=0)
        server = AdvisoryServer(cfg)
        backlog = [
            ShapeQuery(kind="latency", m=64 * i, n=128, k=128)
            for i in range(1, 17)
        ]
        futures = [server.submit(q) for q in backlog]
        rejected = 0
        for i in range(3):
            with pytest.raises(QueueFullError):
                server.submit(ShapeQuery(kind="latency", m=8192, n=64 + i, k=64))
            rejected += 1

        stats = server.stats()
        assert stats.rejected_queue_full == rejected
        assert metrics().counter("serve.rejected.queue_full").value == rejected

        server.start()
        assert all(f.result(timeout=30).ok for f in futures)
        server.close()
