"""Cluster front-end over TCP: network parity, chaos (worker SIGKILL,
torn connections, front-end restart), and the multi-process load wall.

One module-scoped cluster serves the cheap tests; the chaos tests that
kill things get private clusters so carnage never leaks across tests.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import ServeError
from repro.resilience import FaultPlan, FaultSpec, clear_plan, install_plan
from repro.resilience.execute import RetryPolicy
from repro.serve import (
    AdvisoryClient,
    AdvisoryServer,
    ClusterServer,
    ServeConfig,
    ShapeQuery,
    SocketTransport,
    generate_queries,
    run_load,
    run_load_processes,
    verify_against_engine,
)

#: Worker boot is interpreter start + imports; generous for loaded CI.
_BOOT_S = 60.0


def _query(**kw):
    base = dict(kind="latency", m=512, n=512, k=512, gpu="A100")
    base.update(kw)
    return ShapeQuery(**base)


def _fast_config(**kw):
    base = dict(
        workers=2,
        cache_ttl_s=0,
        heartbeat_s=0.05,
        heartbeat_timeout_s=0.25,
        heartbeat_misses=3,
        restart_backoff_s=0.01,
        restart_budget=5,
        restart_window_s=30.0,
        drain_s=10.0,
    )
    base.update(kw)
    return ServeConfig(**base)


def _wait_for(predicate, timeout_s=_BOOT_S, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def cluster():
    with ClusterServer(_fast_config()) as server:
        yield server


@pytest.fixture
def transport(cluster):
    with SocketTransport("127.0.0.1", cluster.bound_port) as t:
        yield t


class TestNetworkParity:
    def test_advisory_is_bit_identical_to_direct_engine(self, transport):
        query = _query()
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0)) as local:
            expected = local.request(query, timeout_s=_BOOT_S)
        advisory = transport.request(query, timeout_s=_BOOT_S)
        assert advisory.ok
        assert advisory.payload == expected.payload
        (rows, mismatches) = verify_against_engine([(query, advisory)])
        assert rows == 1 and mismatches == 0

    def test_ping_reports_live_workers(self, transport):
        assert transport.ping(timeout_s=_BOOT_S)["live"] == 2

    def test_stats_roundtrip(self, transport):
        transport.request(_query(), timeout_s=_BOOT_S)
        stats = transport.server_stats(timeout_s=_BOOT_S)
        assert stats["cluster"]["workers"] == 2
        assert stats["workers"].get("served", 0) >= 1

    def test_client_facade_over_the_network(self, cluster, transport):
        client = AdvisoryClient(transport)
        latency_ms = client.latency(m=512, n=512, k=512, gpu="A100")
        assert latency_ms > 0

    def test_malformed_query_gets_typed_error_not_traceback(self, transport):
        advisory = transport.request(
            _query(gpu="NOT_A_GPU"), timeout_s=_BOOT_S
        )
        assert not advisory.ok
        assert advisory.error_type
        assert advisory.retryable is False
        assert "Traceback" not in (advisory.error or "")
        client = AdvisoryClient(transport)
        with pytest.raises(ServeError):
            client.latency(m=512, n=512, k=512, gpu="NOT_A_GPU")

    def test_load_wall_over_the_network(self, transport):
        report = run_load(
            transport,
            generate_queries(60, seed=3, unique=16),
            clients=4,
            seed=3,
            verify=True,
            timeout_s=_BOOT_S,
        )
        assert report.requests == 60
        assert report.failed == 0
        assert report.ok == 60
        assert report.verified_rows > 0
        assert report.verify_mismatches == 0


class TestChaos:
    def test_sigkill_worker_mid_load_loses_no_accepted_requests(self):
        with ClusterServer(_fast_config()) as server:
            with SocketTransport("127.0.0.1", server.bound_port) as transport:
                queries = generate_queries(120, seed=7, unique=24)
                report_box = {}

                def drive():
                    report_box["report"] = run_load(
                        transport, queries, clients=4, seed=7,
                        verify=True, timeout_s=_BOOT_S,
                    )

                loader = threading.Thread(target=drive)
                loader.start()
                # Kill a worker while the load is in flight.
                victim = next(
                    p for p in server.supervisor.worker_pids()
                    if p is not None
                )
                os.kill(victim, signal.SIGKILL)
                loader.join(timeout=300)
                assert not loader.is_alive()
                report = report_box["report"]
                # Every accepted request was answered ok — failover
                # replays on a sibling, so the kill is invisible.
                assert report.ok == report.requests == 120
                assert report.failed == 0
                assert report.verify_mismatches == 0
                assert _wait_for(
                    lambda: server.supervisor.cluster_stats()["restarts"] >= 1
                )

    def test_torn_connection_triggers_reconnect_and_recovers(self):
        # Fault site cluster.conn fires in the front-end (this
        # process): a 'raise' spec tears the TCP connection after
        # accepting 2 lines; the client must reconnect and succeed.
        with ClusterServer(_fast_config(workers=1)) as server:
            install_plan(
                FaultPlan([
                    FaultSpec(site="cluster.conn", kind="raise", skip=2),
                ])
            )
            try:
                with SocketTransport(
                    "127.0.0.1", server.bound_port,
                    policy=RetryPolicy(retries=4, backoff_s=0.01),
                ) as transport:
                    for _ in range(4):
                        advisory = transport.request(
                            _query(), timeout_s=_BOOT_S
                        )
                        assert advisory.ok
                    assert transport.reconnects >= 1
            finally:
                clear_plan()

    def test_client_survives_front_end_restart(self):
        config = _fast_config(workers=1)
        first = ClusterServer(config).start_background()
        port = first.bound_port
        transport = SocketTransport(
            "127.0.0.1", port, policy=RetryPolicy(retries=8, backoff_s=0.05),
        )
        try:
            assert transport.request(_query(), timeout_s=_BOOT_S).ok
            first.stop()
            # Same port, brand-new server + fleet: the client's next
            # request rides its reconnect-with-backoff loop.
            with ClusterServer(config, port=port) as second:
                advisory = transport.request(_query(), timeout_s=_BOOT_S)
                assert advisory.ok
                assert transport.reconnects >= 1
        finally:
            transport.close()

    def test_mid_request_drop_is_resent_not_lost(self):
        # Tear on the 3rd accepted line: the first two queries answer,
        # the third drops mid-request and must be transparently resent.
        with ClusterServer(_fast_config(workers=1)) as server:
            install_plan(
                FaultPlan([
                    FaultSpec(site="cluster.conn", kind="raise", skip=2),
                ])
            )
            try:
                with SocketTransport(
                    "127.0.0.1", server.bound_port,
                    policy=RetryPolicy(retries=4, backoff_s=0.01),
                ) as transport:
                    answers = [
                        transport.request(_query(m=64 * (i + 1)), timeout_s=_BOOT_S)
                        for i in range(3)
                    ]
                    assert all(a.ok for a in answers)
                    assert transport.reconnects >= 1
            finally:
                clear_plan()


class TestMultiProcessWall:
    def test_two_client_processes_against_two_workers(self, cluster):
        report = run_load_processes(
            cluster.address,
            requests=80,
            procs=2,
            clients=2,
            seed=11,
            unique=16,
            verify=True,
            timeout_s=_BOOT_S,
        )
        assert report.requests == 80
        assert report.ok == 80
        assert report.failed == 0
        assert report.verified_rows > 0
        assert report.verify_mismatches == 0
        # The merged report still carries the front-end's view.
        assert report.server.get("cluster", {}).get("workers") == 2
