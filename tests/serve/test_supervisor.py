"""Supervision tree behaviour: spawn, heartbeat, crash recovery,
crash-loop budget, degraded mode, hot-reload, and shedding.

These tests drive real worker *processes* (the same ``python -m
repro.serve.worker`` the production supervisor spawns), so they lean on
polling helpers with generous deadlines rather than sleeps of fixed
length — worker boot time is interpreter + imports and varies with
machine load.
"""

import os
import signal
import time

import pytest

from repro.errors import (
    ClusterError,
    LoadShedError,
    ServeError,
    ServerClosedError,
)
from repro.serve import AdvisoryServer, ServeConfig, ShapeQuery, Supervisor

#: Worker boot is interpreter start + imports; generous for loaded CI.
_BOOT_S = 60.0


def _query(**kw):
    base = dict(kind="latency", m=256, n=256, k=256, gpu="A100")
    base.update(kw)
    return ShapeQuery(**base)


def _fast_config(**kw):
    base = dict(
        workers=2,
        cache_ttl_s=0,
        heartbeat_s=0.05,
        heartbeat_timeout_s=0.25,
        heartbeat_misses=3,
        restart_backoff_s=0.01,
        restart_budget=2,
        restart_window_s=30.0,
        drain_s=10.0,
    )
    base.update(kw)
    return ServeConfig(**base)


def _wait_for(predicate, timeout_s=_BOOT_S, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestLifecycle:
    def test_request_matches_in_process_server(self):
        query = _query()
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0)) as local:
            expected = local.request(query, timeout_s=_BOOT_S).payload
        with Supervisor(_fast_config()) as sup:
            advisory = sup.request(query, timeout_s=_BOOT_S)
        assert advisory.ok
        assert advisory.source != "degraded"
        assert advisory.payload == expected  # bit-identical across the pipe

    def test_start_is_idempotent_and_close_is_terminal(self):
        sup = Supervisor(_fast_config(workers=1))
        assert sup.start() is sup
        assert sup.start() is sup
        assert sup.live_workers() == 1
        sup.close()
        sup.close()  # second close is a no-op
        with pytest.raises(ServerClosedError):
            sup.request(_query())
        with pytest.raises(ServerClosedError):
            sup.start()

    def test_stats_shape(self):
        with Supervisor(_fast_config()) as sup:
            sup.request(_query(), timeout_s=_BOOT_S)
            stats = sup.cluster_stats()
            assert stats["workers"] == 2
            assert stats["live"] == 2
            assert stats["down"] == []
            assert stats["restarts"] == 0
            worker_totals = sup.worker_stats()
            assert worker_totals.get("served", 0) >= 1


class TestCrashRecovery:
    def test_sigkill_worker_restarts_and_requests_survive(self):
        with Supervisor(_fast_config()) as sup:
            sup.request(_query(), timeout_s=_BOOT_S)
            victim = next(p for p in sup.worker_pids() if p is not None)
            os.kill(victim, signal.SIGKILL)
            # Failover: requests during the outage land on the sibling.
            for _ in range(5):
                assert sup.request(_query(), timeout_s=_BOOT_S).ok
            assert _wait_for(lambda: sup.live_workers() == 2)
            stats = sup.cluster_stats()
            assert stats["restarts"] >= 1
            assert stats["down"] == []
            assert victim not in sup.worker_pids()

    def test_crash_loop_exhausts_budget_and_degrades(self):
        config = _fast_config(workers=1, restart_budget=1, degrade_local=True)
        with Supervisor(config) as sup:
            sup.request(_query(), timeout_s=_BOOT_S)

            def kill_current():
                pids = [p for p in sup.worker_pids() if p is not None]
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                return bool(pids)

            # First death consumes the only budgeted restart; the
            # second marks the worker down for good.
            kill_current()
            assert _wait_for(lambda: sup.cluster_stats()["restarts"] >= 1)
            assert _wait_for(kill_current)
            assert _wait_for(lambda: sup.cluster_stats()["down"] == [0])
            # Degraded mode still answers, bit-identically, and says so.
            advisory = sup.request(_query(), timeout_s=_BOOT_S)
            assert advisory.ok
            assert advisory.source == "degraded"
            assert sup.cluster_stats()["degraded"] >= 1
            # The crash loop stays down: no restart resurrects it.
            assert sup.live_workers() == 0

    def test_all_workers_down_without_degrade_raises_typed(self):
        config = _fast_config(
            workers=1, restart_budget=1, degrade_local=False,
        )
        with Supervisor(config) as sup:
            sup.request(_query(), timeout_s=_BOOT_S)
            first = next(p for p in sup.worker_pids() if p is not None)
            os.kill(first, signal.SIGKILL)
            # Wait for the budgeted restart to produce a *new* pid
            # before the second kill, so two distinct deaths land.
            assert _wait_for(
                lambda: any(
                    p not in (None, first) for p in sup.worker_pids()
                )
            )
            second = next(
                p for p in sup.worker_pids() if p not in (None, first)
            )
            os.kill(second, signal.SIGKILL)
            assert _wait_for(lambda: sup.cluster_stats()["down"] == [0])
            with pytest.raises((ClusterError, ServeError)):
                sup.request(_query(), timeout_s=_BOOT_S)

    def test_hung_worker_is_detected_and_replaced(self):
        config = _fast_config(
            workers=1, heartbeat_s=0.05, heartbeat_timeout_s=0.2,
            heartbeat_misses=2, restart_budget=5,
        )
        with Supervisor(config) as sup:
            sup.request(_query(), timeout_s=_BOOT_S)
            victim = next(p for p in sup.worker_pids() if p is not None)
            os.kill(victim, signal.SIGSTOP)  # alive but unresponsive
            try:
                assert _wait_for(
                    lambda: sup.cluster_stats()["restarts"] >= 1
                )
                assert _wait_for(lambda: sup.live_workers() == 1)
                assert victim not in sup.worker_pids()
            finally:
                try:
                    os.kill(victim, signal.SIGCONT)
                except ProcessLookupError:
                    pass  # already SIGKILLed by the monitor
            assert sup.request(_query(), timeout_s=_BOOT_S).ok


class TestHotReload:
    def test_reload_adopts_policy_but_pins_worker_count(self):
        with Supervisor(_fast_config(workers=2, shed_depth=512)) as sup:
            new = _fast_config(workers=8, shed_depth=64)
            sup.reload(new)
            assert sup.config.shed_depth == 64
            assert sup.config.workers == 2  # shard function is fixed
            assert sup.live_workers() == 2

    def test_reload_from_json_rejects_invalid_and_keeps_old(self):
        config = _fast_config(workers=1, shed_depth=512)
        with Supervisor(config) as sup:
            before = sup.config
            assert sup.reload_from_json('{"workers": -3}') is False
            assert sup.config is before
            assert sup.reload_from_json("{not json") is False
            assert sup.config is before
            assert sup.reload_from_json('{"shed_depth": 128}') is True
            assert sup.config.shed_depth == 128
            assert sup.request(_query(), timeout_s=_BOOT_S).ok


class TestLoadShedding:
    def test_sustained_backpressure_sheds_low_priority_only(self):
        config = _fast_config(
            workers=1, shed_depth=1, shed_after=1, shed_priority=3,
        )
        sup = Supervisor(config)  # not started: _admit is pre-dispatch
        try:
            # One admitted request holds the in-flight depth at the
            # shed threshold; the next low-priority admission sheds.
            sup._admit(_query(priority=9))
            with pytest.raises(LoadShedError):
                sup._admit(_query(priority=0))
            # At the boundary: priority == shed_priority is shed...
            with pytest.raises(LoadShedError):
                sup._admit(_query(priority=3))
            # ...but higher priorities always pass.
            sup._admit(_query(priority=4))
            assert sup.cluster_stats()["shed"] == 2
        finally:
            sup.close()

    def test_blip_below_shed_after_is_not_shed(self):
        config = _fast_config(
            workers=1, shed_depth=1, shed_after=3, shed_priority=9,
        )
        sup = Supervisor(config)
        try:
            sup._admit(_query())  # depth 0 -> 1
            sup._admit(_query())  # over-depth streak 1
            sup._admit(_query())  # streak 2: still below shed_after
            with pytest.raises(LoadShedError):
                sup._admit(_query())  # streak 3: sheds
        finally:
            sup.close()
