"""Transport-agnostic dispatch layer: wire codec, typed error
advisories, retryability, and the unwrap inverse."""

import pytest

from repro.errors import (
    ClusterError,
    ConfigError,
    DeadlineExceededError,
    FaultInjectionError,
    LoadShedError,
    QueueFullError,
    ServeError,
    ServerClosedError,
    TaskTimeoutError,
    WorkerDiedError,
)
from repro.serve import (
    AdvisoryServer,
    Advisory,
    ServeConfig,
    ShapeQuery,
    Transport,
    error_to_advisory,
    is_retryable,
    unwrap_advisory,
)
from repro.serve import wire
from repro.serve.dispatch import RETRYABLE_ERRORS, TYPED_ERRORS


def _query(**kw):
    base = dict(kind="latency", m=128, n=128, k=128)
    base.update(kw)
    return ShapeQuery(**base)


class TestWireCodec:
    def test_roundtrip(self):
        line = wire.encode_message("advisory", id=7, advisory={"a": 1})
        assert line.endswith("\n")
        assert "\n" not in line[:-1]
        message = wire.decode_line(line)
        assert message == {"op": "advisory", "id": 7, "advisory": {"a": 1}}

    def test_none_fields_are_elided(self):
        line = wire.encode_message("pong", id=None, live=2)
        assert "id" not in wire.decode_line(line)

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            wire.decode_line('{"op": "mystery"}\n')

    def test_missing_op_defaults_to_query(self):
        # A bare query object is a valid request line (nc-friendly).
        assert wire.decode_line('{"m": 4096}\n')["op"] == "query"

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            wire.decode_line("not json at all\n")
        with pytest.raises(ConfigError):
            wire.decode_line('["a", "list"]\n')

    def test_query_message_and_payload(self):
        query = _query(gpu="H100")
        line = wire.query_message(query.to_dict(), 3)
        message = wire.decode_line(line)
        assert message["op"] == "query"
        assert message["id"] == 3
        payload = wire.request_payload(message)
        assert ShapeQuery.from_dict(payload) == query

    def test_request_payload_accepts_bare_query(self):
        # A minimal peer may put the query fields at the top level.
        bare = wire.decode_line(
            wire.encode_message("query", id=1, **_query().to_dict())
        )
        assert ShapeQuery.from_dict(wire.request_payload(bare)) == _query()


class TestErrorToAdvisory:
    def test_backpressure_is_rejected_and_retryable(self):
        query = _query()
        for exc in (
            QueueFullError("full"),
            DeadlineExceededError("late"),
            LoadShedError("shed"),
        ):
            advisory = error_to_advisory(query, exc)
            assert advisory.status == "rejected"
            assert advisory.retryable is True
            assert advisory.error_type == type(exc).__name__
            assert not advisory.ok

    def test_model_error_is_failed_and_not_retryable(self):
        advisory = error_to_advisory(_query(), ConfigError("bad model"))
        assert advisory.status == "failed"
        assert advisory.retryable is False
        assert advisory.error_type == "ConfigError"

    def test_no_raw_traceback_crosses_the_wire(self):
        try:
            raise QueueFullError("queue full at depth 512")
        except QueueFullError as exc:
            advisory = error_to_advisory(_query(), exc)
        flat = repr(advisory.to_dict())
        assert "Traceback" not in flat
        assert "queue full at depth 512" in flat

    def test_unparseable_query_echoes_raw_request(self):
        raw = {"kind": "latency", "m": "not-a-number"}
        advisory = error_to_advisory(None, ConfigError("bad m"), raw_query=raw)
        assert advisory.payload["request"] == raw
        assert advisory.status == "failed"

    def test_shard_is_stamped(self):
        advisory = error_to_advisory(_query(), LoadShedError("x"), shard=3)
        assert advisory.shard == 3

    def test_wire_roundtrip_preserves_typing(self):
        advisory = error_to_advisory(_query(), WorkerDiedError("gone"))
        back = Advisory.from_dict(advisory.to_dict())
        assert back.error_type == "WorkerDiedError"
        assert back.retryable is True
        assert back.status == advisory.status


class TestRetryability:
    def test_transient_capacity_errors_retryable(self):
        for exc in (
            QueueFullError("x"),
            DeadlineExceededError("x"),
            LoadShedError("x"),
            WorkerDiedError("x"),
            TaskTimeoutError("x"),
        ):
            assert is_retryable(exc), exc

    def test_query_properties_not_retryable(self):
        for exc in (
            ConfigError("x"),
            ServerClosedError("x"),
            FaultInjectionError("x"),
        ):
            assert not is_retryable(exc), exc

    def test_environmental_errors_retryable(self):
        assert is_retryable(OSError("torn pipe"))
        assert is_retryable(EOFError("closed"))
        assert not is_retryable(ValueError("programming bug"))

    def test_registry_names_match_classes(self):
        assert RETRYABLE_ERRORS == {
            "QueueFullError", "DeadlineExceededError", "LoadShedError",
            "WorkerDiedError", "TaskTimeoutError",
        }


class TestUnwrapAdvisory:
    def test_ok_advisory_returns_payload(self):
        advisory = Advisory(query=_query(), status="ok")
        advisory.payload = {"latency_ms": 1.5}
        assert unwrap_advisory(advisory) == {"latency_ms": 1.5}

    def test_typed_reraise(self):
        for exc_cls in (QueueFullError, LoadShedError, WorkerDiedError):
            advisory = error_to_advisory(_query(), exc_cls("boom"))
            with pytest.raises(exc_cls, match="boom"):
                unwrap_advisory(advisory)

    def test_unknown_error_type_folds_to_serve_error(self):
        advisory = Advisory(
            query=_query(), status="failed",
            error="who knows", error_type="SomethingNovelError",
        )
        with pytest.raises(ServeError, match="who knows"):
            unwrap_advisory(advisory)

    def test_config_error_folds_to_serve_error(self):
        # Callers catching ServeError must always get one: non-serve
        # error types re-raise as the base class, the precise name
        # stays on the advisory for logs.
        advisory = error_to_advisory(_query(), ConfigError("bad model"))
        with pytest.raises(ServeError, match="bad model"):
            unwrap_advisory(advisory)
        assert not isinstance(TYPED_ERRORS.get("ConfigError"), type)

    def test_every_typed_error_is_a_serve_error(self):
        for cls in TYPED_ERRORS.values():
            assert issubclass(cls, ServeError), cls


class TestTransportProtocol:
    def test_in_process_server_satisfies_transport(self):
        server = AdvisoryServer(ServeConfig(workers=1))
        assert isinstance(server, Transport)

    def test_priority_rides_the_wire_only_when_set(self):
        assert "priority" not in _query().to_dict()
        elevated = _query(priority=7)
        assert elevated.to_dict()["priority"] == 7
        assert ShapeQuery.from_dict(elevated.to_dict()).priority == 7

    def test_priority_does_not_change_cache_key(self):
        assert _query(priority=0).cache_key() == _query(priority=9).cache_key()
