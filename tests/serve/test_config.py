"""ServeConfig: validation contract and exact JSON round-trip (property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.serve import ServeConfig

_POS_INT = st.integers(min_value=1, max_value=10_000)
_NONNEG_S = st.floats(min_value=0.0, max_value=120.0, allow_nan=False)
_OPT_POS_S = st.one_of(
    st.none(), st.floats(min_value=1e-3, max_value=120.0, allow_nan=False)
)

valid_configs = st.builds(
    ServeConfig,
    workers=st.integers(min_value=1, max_value=32),
    max_batch=_POS_INT,
    max_queue=_POS_INT,
    linger_s=_NONNEG_S,
    deadline_s=_OPT_POS_S,
    cache_ttl_s=_NONNEG_S,
    cache_entries=_POS_INT,
    retries=st.integers(min_value=0, max_value=8),
    retry_backoff_s=_NONNEG_S,
    compute_timeout_s=_OPT_POS_S,
)


class TestRoundTrip:
    @given(valid_configs)
    @settings(max_examples=150, deadline=None)
    def test_json_round_trip_is_exact(self, cfg):
        assert ServeConfig.from_json(cfg.to_json()) == cfg

    @given(valid_configs)
    @settings(max_examples=50, deadline=None)
    def test_dict_round_trip_is_exact(self, cfg):
        assert ServeConfig.from_dict(cfg.to_dict()) == cfg

    def test_defaults_round_trip(self):
        cfg = ServeConfig()
        assert ServeConfig.from_json(cfg.to_json()) == cfg

    def test_partial_dict_fills_defaults(self):
        cfg = ServeConfig.from_dict({"workers": 4})
        assert cfg.workers == 4
        assert cfg.max_batch == ServeConfig().max_batch


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("workers", 0),
            ("workers", -1),
            ("max_batch", 0),
            ("max_queue", 0),
            ("linger_s", -0.1),
            ("deadline_s", 0.0),
            ("deadline_s", -1.0),
            ("cache_ttl_s", -1.0),
            ("cache_entries", 0),
            ("retries", -1),
            ("retry_backoff_s", -0.5),
            ("compute_timeout_s", 0.0),
        ],
    )
    def test_bad_value_raises(self, field, value):
        with pytest.raises(ConfigError):
            ServeConfig(**{field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown serve config field"):
            ServeConfig.from_dict({"workerz": 2})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError):
            ServeConfig.from_dict([1, 2, 3])

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            ServeConfig.from_json("{not json")

    def test_frozen(self):
        cfg = ServeConfig()
        with pytest.raises(AttributeError):
            cfg.workers = 9

    def test_describe_mentions_knobs(self):
        text = ServeConfig(workers=3, max_batch=16).describe()
        assert "3 worker(s)" in text
        assert "batch<=16" in text
