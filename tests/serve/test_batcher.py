"""RequestQueue admission/linger semantics and plan_batch coalescing."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.errors import QueueFullError
from repro.serve import PendingRequest, RequestQueue, ShapeQuery, plan_batch


def _pending(query: ShapeQuery) -> PendingRequest:
    return PendingRequest(query=query, future=Future())


def _shape(m, n, k, batch=1, gpu="A100", dtype="fp16", kind="latency"):
    return _pending(
        ShapeQuery(kind=kind, m=m, n=n, k=k, batch=batch, gpu=gpu, dtype=dtype)
    )


class TestRequestQueue:
    def test_fifo_order(self):
        q = RequestQueue(maxsize=8)
        items = [_shape(64 * i, 64, 64) for i in range(1, 4)]
        for item in items:
            q.put(item)
        assert q.take_batch(8, linger_s=0.0) == items

    def test_depth_cap_is_typed_rejection(self):
        q = RequestQueue(maxsize=2)
        q.put(_shape(64, 64, 64))
        q.put(_shape(128, 64, 64))
        with pytest.raises(QueueFullError):
            q.put(_shape(256, 64, 64))
        assert len(q) == 2

    def test_max_batch_respected(self):
        q = RequestQueue(maxsize=16)
        for i in range(1, 6):
            q.put(_shape(64 * i, 64, 64))
        first = q.take_batch(3, linger_s=0.0)
        rest = q.take_batch(3, linger_s=0.0)
        assert [len(first), len(rest)] == [3, 2]

    def test_close_returns_remaining_then_empty(self):
        q = RequestQueue(maxsize=4)
        q.put(_shape(64, 64, 64))
        q.close()
        assert len(q.take_batch(4, linger_s=0.0)) == 1
        assert q.take_batch(4, linger_s=0.0) == []

    def test_close_wakes_blocked_taker(self):
        q = RequestQueue(maxsize=4)
        out = []

        def taker():
            out.append(q.take_batch(4, linger_s=0.0))

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.05)
        q.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out == [[]]

    def test_linger_coalesces_late_arrival(self):
        q = RequestQueue(maxsize=8)
        q.put(_shape(64, 64, 64))

        def late_producer():
            time.sleep(0.02)
            q.put(_shape(128, 64, 64))

        thread = threading.Thread(target=late_producer)
        thread.start()
        batch = q.take_batch(8, linger_s=0.5)
        thread.join()
        assert len(batch) == 2

    def test_full_batch_returns_without_lingering(self):
        q = RequestQueue(maxsize=8)
        q.put(_shape(64, 64, 64))
        q.put(_shape(128, 64, 64))
        t0 = time.monotonic()
        batch = q.take_batch(2, linger_s=5.0)
        assert len(batch) == 2
        assert time.monotonic() - t0 < 1.0

    def test_bad_maxsize_raises(self):
        with pytest.raises(ValueError):
            RequestQueue(maxsize=0)


class TestPlanBatch:
    def test_identical_shapes_share_one_row(self):
        pending = [_shape(512, 512, 512) for _ in range(5)]
        calls, passthrough = plan_batch(pending)
        assert passthrough == []
        assert len(calls) == 1
        call = calls[0]
        assert call.rows == 1
        assert call.duplicates == 4
        assert len(call.assignments) == 5
        assert all(row == 0 for _, row in call.assignments)

    def test_distinct_shapes_merge_into_one_call(self):
        pending = [_shape(64 * i, 256, 128) for i in range(1, 5)]
        calls, _ = plan_batch(pending)
        assert len(calls) == 1
        call = calls[0]
        assert call.rows == 4
        assert call.duplicates == 0
        # Rows are first-seen order: (batch, m, n, k).
        np.testing.assert_array_equal(
            call.shapes,
            np.asarray([[1, 64 * i, 256, 128] for i in range(1, 5)]),
        )

    def test_kind_is_not_part_of_the_coalescing_identity(self):
        pending = [
            _shape(512, 512, 512, kind="latency"),
            _shape(512, 512, 512, kind="tflops"),
            _shape(512, 512, 512, kind="evaluate"),
        ]
        calls, _ = plan_batch(pending)
        assert len(calls) == 1
        assert calls[0].rows == 1
        assert calls[0].duplicates == 2

    def test_gpu_and_dtype_split_buckets(self):
        pending = [
            _shape(512, 512, 512, gpu="A100"),
            _shape(512, 512, 512, gpu="H100"),
            _shape(512, 512, 512, gpu="A100", dtype="fp32"),
        ]
        calls, _ = plan_batch(pending)
        assert len(calls) == 3
        assert {(c.gpu, c.dtype) for c in calls} == {
            ("A100", "fp16"), ("H100", "fp16"), ("A100", "fp32"),
        }

    def test_lint_queries_pass_through(self):
        lint = _pending(ShapeQuery(kind="lint", model="gpt3-2.7b"))
        shape = _shape(512, 512, 512)
        calls, passthrough = plan_batch([lint, shape])
        assert passthrough == [lint]
        assert len(calls) == 1

    def test_assignments_map_each_request_to_its_row(self):
        a, b = _shape(512, 512, 512), _shape(1024, 512, 512)
        calls, _ = plan_batch([a, b, _shape(512, 512, 512)])
        call = calls[0]
        rows = {id(item): row for item, row in call.assignments}
        assert rows[id(a)] == 0
        assert rows[id(b)] == 1
        assert call.shapes[rows[id(a)]].tolist() == [1, 512, 512, 512]
        assert call.shapes[rows[id(b)]].tolist() == [1, 1024, 512, 512]
