"""``kernel_params`` end to end: the answer must be bit-identical no
matter which transport carried it.

Resolution is a pure function of (query, loaded tables, engine model
version), and every process in the tree loads the same tables from
``REPRO_KERNEL_TABLES`` — so the in-process server, a supervisor's
pipe worker, and a TCP cluster worker must all return the exact same
payload dict, hit or miss.  Errors stay typed across the same paths.
"""

import pytest

from repro.errors import KernelTableError, ServeError, ShapeError
from repro.kernels import TABLES_ENV, KernelParamResolver, tune_table
from repro.serve import (
    AdvisoryClient,
    AdvisoryServer,
    ClusterServer,
    ServeConfig,
    ShapeQuery,
    SocketTransport,
    Supervisor,
)

#: Worker boot is interpreter start + imports; generous for loaded CI.
_BOOT_S = 60.0

#: A tuning representative (table hit) and an untuned batch octave
#: (analytical fallback) — both must be transport-invariant.
_HIT = dict(kind="kernel_params", m=512, n=512, k=512, batch=1, gpu="A100")
_MISS = dict(kind="kernel_params", m=512, n=512, k=512, batch=2, gpu="A100")


def _fast_config(**kw):
    base = dict(
        workers=2,
        cache_ttl_s=0,
        heartbeat_s=0.05,
        heartbeat_timeout_s=0.25,
        heartbeat_misses=3,
        restart_backoff_s=0.01,
        restart_budget=5,
        restart_window_s=30.0,
        drain_s=10.0,
    )
    base.update(kw)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def tables_env(tmp_path_factory):
    """Tune one small table and export it to every process in the tree."""
    directory = tmp_path_factory.mktemp("ktables")
    table = tune_table("A100", dims=(256, 512, 1024), batches=(1,))
    path = directory / f"{table.gpu}-{table.dtype}.json"
    path.write_text(table.to_json())
    mp = pytest.MonkeyPatch()
    mp.setenv(TABLES_ENV, str(directory))
    yield table
    mp.undo()


@pytest.fixture(scope="module")
def reference(tables_env):
    """The direct resolver answer each transport must reproduce."""
    resolver = KernelParamResolver.from_env()
    return {
        "hit": resolver.resolve(1, 512, 512, 512, "A100", "fp16"),
        "miss": resolver.resolve(2, 512, 512, 512, "A100", "fp16"),
    }


class TestTransportParity:
    def test_in_process_server(self, tables_env, reference):
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0)) as server:
            hit = server.request(ShapeQuery(**_HIT), timeout_s=_BOOT_S)
            miss = server.request(ShapeQuery(**_MISS), timeout_s=_BOOT_S)
        assert hit.ok and miss.ok
        assert hit.payload == reference["hit"]
        assert hit.payload["table_hit"] is True
        assert hit.payload["table_checksum"] == tables_env.checksum()
        assert miss.payload == reference["miss"]
        assert miss.payload["table_hit"] is False
        assert miss.payload["table_checksum"] is None

    def test_supervisor_pipe_workers(self, tables_env, reference):
        with Supervisor(_fast_config()) as sup:
            hit = sup.request(ShapeQuery(**_HIT), timeout_s=_BOOT_S)
            miss = sup.request(ShapeQuery(**_MISS), timeout_s=_BOOT_S)
        assert hit.ok and miss.ok
        assert hit.source != "degraded"
        assert hit.payload == reference["hit"]
        assert miss.payload == reference["miss"]

    def test_tcp_cluster(self, tables_env, reference):
        with ClusterServer(_fast_config()) as server:
            with SocketTransport("127.0.0.1", server.bound_port) as transport:
                hit = transport.request(ShapeQuery(**_HIT), timeout_s=_BOOT_S)
                miss = transport.request(
                    ShapeQuery(**_MISS), timeout_s=_BOOT_S
                )
                client = AdvisoryClient(transport, timeout_s=_BOOT_S)
                via_client = client.kernel_params(m=512, n=512, k=512)
        assert hit.ok and miss.ok
        # JSON round-trip over the socket must not perturb a single bit.
        assert hit.payload == reference["hit"]
        assert miss.payload == reference["miss"]
        assert via_client == reference["hit"]

    def test_repeat_is_cache_stable(self, tables_env, reference):
        # With the TTL cache on, the second answer comes from the cache
        # and must equal the first byte for byte.
        cfg = ServeConfig(workers=1, cache_ttl_s=300.0)
        with AdvisoryServer(cfg) as server:
            first = server.request(ShapeQuery(**_HIT), timeout_s=_BOOT_S)
            second = server.request(ShapeQuery(**_HIT), timeout_s=_BOOT_S)
        assert first.payload == second.payload == reference["hit"]
        assert second.source == "cache"


class TestTypedErrors:
    def test_nonpositive_dims_rejected_at_construction(self):
        with pytest.raises(ShapeError):
            ShapeQuery(kind="kernel_params", m=0, n=512, k=512)
        with pytest.raises(ShapeError):
            ShapeQuery(kind="kernel_params", m=512, n=512, k=512, batch=-1)

    def test_unknown_gpu_is_a_typed_failure(self, tables_env):
        query = ShapeQuery(**dict(_HIT, gpu="NOT_A_GPU"))
        with AdvisoryServer(ServeConfig(workers=1, cache_ttl_s=0)) as server:
            advisory = server.request(query, timeout_s=_BOOT_S)
        assert not advisory.ok
        assert advisory.status == "failed"
        assert advisory.error_type
        assert advisory.retryable is False
        assert "Traceback" not in (advisory.error or "")

    def test_unknown_gpu_over_the_network(self, tables_env):
        query = ShapeQuery(**dict(_HIT, gpu="NOT_A_GPU"))
        with ClusterServer(_fast_config(workers=1)) as server:
            with SocketTransport("127.0.0.1", server.bound_port) as transport:
                advisory = transport.request(query, timeout_s=_BOOT_S)
                client = AdvisoryClient(transport, timeout_s=_BOOT_S)
                with pytest.raises(ServeError):
                    client.kernel_params(m=512, n=512, k=512, gpu="NOT_A_GPU")
        assert not advisory.ok
        assert advisory.error_type
        assert advisory.retryable is False

    def test_broken_table_dir_fails_typed_not_crash(self, tmp_path):
        mp = pytest.MonkeyPatch()
        mp.setenv(TABLES_ENV, str(tmp_path / "missing"))
        try:
            with AdvisoryServer(
                ServeConfig(workers=1, cache_ttl_s=0)
            ) as server:
                advisory = server.request(
                    ShapeQuery(**_HIT), timeout_s=_BOOT_S
                )
                assert not advisory.ok
                assert advisory.error_type == KernelTableError.__name__
                assert advisory.retryable is False
                # The worker survives: shape queries still answer.
                shape = server.request(
                    ShapeQuery(kind="latency", m=256, n=256, k=256),
                    timeout_s=_BOOT_S,
                )
                assert shape.ok
        finally:
            mp.undo()
