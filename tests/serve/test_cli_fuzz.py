"""Fuzz the ``repro serve`` / ``repro loadgen`` CLI exit-code contract.

The documented contract: 0 = every query answered ok (loadgen: run
passed), 1 = at least one query failed or was rejected (loadgen: run
failed), 2 = a :class:`~repro.errors.ReproError` (bad config, bad
query file, unknown field) — argparse usage errors also exit 2.
Whatever arguments the fuzzer throws, the CLI must land on one of
those three codes, never crash with a traceback.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main


def _run(argv, tmp_path=None):
    try:
        return main(argv)
    except SystemExit as exc:  # argparse usage errors
        return exc.code if isinstance(exc.code, int) else 2


_dims = st.integers(min_value=-4, max_value=2048)
_kinds = st.sampled_from(["evaluate", "latency", "tflops", "bogus"])
_gpus = st.sampled_from(["A100", "H100", "NOPE"])

_query_dicts = st.fixed_dictionaries(
    {
        "kind": _kinds,
        "m": _dims,
        "n": _dims,
        "k": _dims,
        "gpu": _gpus,
    }
)


class TestServeFuzz:
    @given(queries=st.lists(_query_dicts, min_size=1, max_size=6))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_exit_codes_follow_contract(self, tmp_path, queries):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(json.dumps(q) for q in queries) + "\n")
        code = _run(
            ["serve", "--queries", str(path), "--workers", "1", "--linger", "0"]
        )
        assert code in (0, 1, 2)
        if any(q["kind"] == "bogus" or min(q["m"], q["n"], q["k"]) <= 0
               for q in queries):
            # Malformed queries are a ReproError before serving starts.
            assert code == 2
        elif all(q["gpu"] != "NOPE" for q in queries):
            assert code == 0
        else:
            # Unknown GPUs fail per-request, not the whole process.
            assert code == 1

    @given(
        workers=st.integers(min_value=-1, max_value=2),
        max_batch=st.integers(min_value=-1, max_value=8),
        max_queue=st.integers(min_value=-1, max_value=64),
    )
    @settings(max_examples=10, deadline=None)
    def test_config_knob_fuzz(self, workers, max_batch, max_queue):
        code = _run(
            [
                "serve",
                "--workers", str(workers),
                "--max-batch", str(max_batch),
                "--max-queue", str(max_queue),
                "--linger", "0",
            ]
        )
        if workers < 1 or max_batch < 1 or max_queue < 1:
            assert code == 2  # ConfigError at construction
        else:
            assert code in (0, 1)  # tiny queues may shed demo queries

    def test_demo_battery_exits_zero(self):
        assert _run(["serve"]) == 0

    def test_bad_query_json_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert _run(["serve", "--queries", str(path)]) == 2

    def test_missing_query_file_exits_two(self):
        assert _run(["serve", "--queries", "/no/such/file.jsonl"]) == 2

    def test_empty_query_file_exits_two(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert _run(["serve", "--queries", str(path)]) == 2

    def test_unknown_flag_exits_two(self):
        assert _run(["serve", "--frobnicate"]) == 2


class TestLoadgenFuzz:
    @given(
        requests=st.integers(min_value=-1, max_value=40),
        unique=st.integers(min_value=-1, max_value=8),
        clients=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=8, deadline=None)
    def test_exit_codes_follow_contract(self, requests, unique, clients, seed):
        code = _run(
            [
                "loadgen",
                "--requests", str(requests),
                "--unique", str(unique),
                "--clients", str(clients),
                "--seed", str(seed),
                "--workers", "1",
                "--no-verify",
                "--output", "-",
            ]
        )
        if requests < 1 or unique < 1:
            assert code == 2  # ConfigError from generate_queries
        else:
            assert code == 0

    def test_unknown_gpu_fails_with_one(self):
        code = _run(
            [
                "loadgen",
                "--requests", "5",
                "--gpus", "NOPE",
                "--no-verify",
                "--output", "-",
            ]
        )
        assert code == 1

    def test_writes_benchmark_record(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = _run(
            [
                "loadgen",
                "--requests", "60",
                "--unique", "8",
                "--seed", "4",
                "--output", str(out),
            ]
        )
        assert code == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "repro loadgen"
        assert record["requests"] == 60
        assert record["passed"] is True
        assert record["coalesce_ratio"] > 0
        assert record["verify_mismatches"] == 0

    def test_bad_fault_plan_exits_two(self):
        code = _run(
            [
                "loadgen",
                "--requests", "5",
                "--inject-faults", "/no/such/plan.json",
                "--output", "-",
            ]
        )
        assert code == 2
