"""Tests for deterministic fault injection."""

import json

import pytest

from repro.errors import ConfigError, FaultInjectionError
from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    fault_site,
    injected,
    install_plan,
    iter_sites,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class TestFaultSpecValidation:
    def test_defaults(self):
        spec = FaultSpec(site="runner.experiment")
        assert spec.kind == "raise" and spec.times == 1

    def test_bad_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            FaultSpec(site="x", kind="explode")

    def test_missing_site(self):
        with pytest.raises(ConfigError, match="site"):
            FaultSpec(site="")

    def test_bad_probability(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(site="x", probability=1.5)

    def test_negative_counters(self):
        with pytest.raises(ConfigError):
            FaultSpec(site="x", skip=-1)
        with pytest.raises(ConfigError):
            FaultSpec(site="x", delay_s=-0.1)

    def test_unknown_exception_name(self):
        with pytest.raises(ConfigError, match="unknown exception"):
            FaultSpec(site="x", exception="NoSuchError")

    def test_repro_and_builtin_exception_names_accepted(self):
        FaultSpec(site="x", exception="CacheError")
        FaultSpec(site="x", exception="RuntimeError")


class TestFaultPlanParsing:
    def test_from_dict_round_trip(self):
        plan = FaultPlan.from_dict(
            {"seed": 7, "faults": [{"site": "a", "kind": "delay"}]}
        )
        assert plan.seed == 7
        assert plan.to_dict()["faults"][0]["site"] == "a"

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fields"):
            FaultPlan.from_dict(
                {"faults": [{"site": "a", "kaboom": True}]}
            )

    def test_missing_faults_key_rejected(self):
        with pytest.raises(ConfigError, match="faults"):
            FaultPlan.from_dict({"seed": 1})

    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"faults": [{"site": "runner.experiment", "match": "fig5"}]}
        ))
        plan = FaultPlan.load(path)
        assert plan.specs[0].match == "fig5"

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="invalid JSON"):
            FaultPlan.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            FaultPlan.load(tmp_path / "absent.json")

    def test_example_chaos_plan_parses(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        plan = FaultPlan.load(repo / "examples" / "faults" / "chaos.json")
        sites = {s.site for s in plan.specs}
        assert sites <= set(KNOWN_SITES)


class TestFiring:
    def test_raise_kind_default_exception(self):
        plan = FaultPlan([FaultSpec(site="s")])
        with injected(plan):
            with pytest.raises(FaultInjectionError):
                fault_site("s")
        assert plan.fired() == 1

    def test_named_exception_and_message(self):
        spec = FaultSpec(
            site="s", exception="ValueError", message="chaos says hi"
        )
        with injected(FaultPlan([spec])):
            with pytest.raises(ValueError, match="chaos says hi"):
                fault_site("s")

    def test_times_limits_firings(self):
        plan = FaultPlan([FaultSpec(site="s", times=2)])
        with injected(plan):
            for _ in range(2):
                with pytest.raises(FaultInjectionError):
                    fault_site("s")
            fault_site("s")  # third call passes clean
        assert plan.fired() == 2

    def test_times_zero_is_unlimited(self):
        plan = FaultPlan([FaultSpec(site="s", times=0)])
        with injected(plan):
            for _ in range(5):
                with pytest.raises(FaultInjectionError):
                    fault_site("s")
        assert plan.fired() == 5

    def test_skip_lets_first_calls_pass(self):
        plan = FaultPlan([FaultSpec(site="s", skip=2)])
        with injected(plan):
            fault_site("s")
            fault_site("s")
            with pytest.raises(FaultInjectionError):
                fault_site("s")

    def test_match_targets_context(self):
        plan = FaultPlan([FaultSpec(site="s", match="fig5")])
        with injected(plan):
            fault_site("s", id="fig14")  # no match, passes
            with pytest.raises(FaultInjectionError):
                fault_site("s", id="fig5")
        assert plan.events[0].context == {"id": "fig5"}

    def test_site_isolation(self):
        plan = FaultPlan([FaultSpec(site="cache.disk_get")])
        with injected(plan):
            fault_site("runner.experiment")  # different site, passes
            with pytest.raises(FaultInjectionError):
                fault_site("cache.disk_get")

    def test_probability_is_seeded_and_replayable(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                [FaultSpec(site="s", times=0, probability=0.5)], seed=seed
            )
            pattern = []
            with injected(plan):
                for _ in range(20):
                    try:
                        fault_site("s")
                        pattern.append(False)
                    except FaultInjectionError:
                        pattern.append(True)
            return pattern

        assert firing_pattern(3) == firing_pattern(3)
        assert any(firing_pattern(3))
        assert not all(firing_pattern(3))

    def test_delay_kind_sleeps(self):
        import time

        plan = FaultPlan([FaultSpec(site="s", kind="delay", delay_s=0.05)])
        with injected(plan):
            start = time.perf_counter()
            fault_site("s")
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.04

    def test_corrupt_kind_garbles_target_file(self, tmp_path):
        target = tmp_path / "entry.npz"
        target.write_bytes(b"real cache payload")
        plan = FaultPlan([FaultSpec(site="s", kind="corrupt")])
        with injected(plan):
            fault_site("s", path=target)
        assert target.read_bytes() != b"real cache payload"
        # Deterministic: the same plan produces identical garbage.
        garbage = target.read_bytes()
        target.write_bytes(b"real cache payload")
        plan2 = FaultPlan([FaultSpec(site="s", kind="corrupt")])
        with injected(plan2):
            fault_site("s", path=target)
        assert target.read_bytes() == garbage

    def test_corrupt_without_path_is_noop(self):
        plan = FaultPlan([FaultSpec(site="s", kind="corrupt")])
        with injected(plan):
            fault_site("s")  # nothing to corrupt; still counted
        assert plan.fired() == 1

    def test_at_most_one_spec_fires_per_call(self):
        plan = FaultPlan([
            FaultSpec(site="s", kind="delay", delay_s=0.0),
            FaultSpec(site="s", exception="RuntimeError"),
        ])
        with injected(plan):
            fault_site("s")  # first spec (delay) wins; raise not reached
            with pytest.raises(RuntimeError):
                fault_site("s")  # delay exhausted; second spec fires


class TestPlanInstallation:
    def test_no_plan_is_noop(self):
        assert active_plan() is None
        fault_site("runner.experiment", id="fig5")  # must not raise

    def test_install_and_clear(self):
        plan = FaultPlan([])
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None

    def test_injected_context_manager_restores(self):
        plan = FaultPlan([])
        with injected(plan) as active:
            assert active is plan and active_plan() is plan
        assert active_plan() is None

    def test_iter_sites_covers_known(self):
        documented = {site for site, _ in iter_sites()}
        assert documented == set(KNOWN_SITES)
