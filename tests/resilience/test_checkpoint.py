"""Tests for the append-only sweep journal."""

import json
import threading

import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import SweepJournal


class TestJournalBasics:
    def test_header_written_on_create(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepJournal(path, sweep_id="sweep-1")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["sweep"] == "sweep-1"

    def test_record_and_query(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl", sweep_id="s")
        journal.record("a", "ok", payload={"x": 1}, attempts=2)
        journal.record("b", "failed", payload={"error": "boom"})
        assert journal.completed() == {"a"}
        assert journal.entry_for("a")["attempts"] == 2
        assert journal.entry_for("b")["status"] == "failed"
        assert journal.entry_for("zzz") is None
        assert len(journal.entries()) == 2

    def test_failed_unit_reexecuted_after_success(self, tmp_path):
        # A later success for the same unit supersedes the failure.
        journal = SweepJournal(tmp_path / "j.jsonl", sweep_id="s")
        journal.record("a", "failed")
        journal.record("a", "ok")
        assert journal.completed() == {"a"}
        assert journal.entry_for("a")["status"] == "ok"

    def test_creates_parent_directory(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "j.jsonl", sweep_id="s")
        journal.record("a", "ok")
        assert journal.path.exists()


class TestResume:
    def test_resume_loads_prior_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = SweepJournal(path, sweep_id="s")
        first.record("a", "ok")
        first.record("b", "timeout")

        resumed = SweepJournal(path, sweep_id="s", resume=True)
        assert resumed.completed() == {"a"}
        assert resumed.entry_for("b")["status"] == "timeout"

    def test_resume_appends_not_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepJournal(path, sweep_id="s").record("a", "ok")
        resumed = SweepJournal(path, sweep_id="s", resume=True)
        resumed.record("b", "ok")
        again = SweepJournal(path, sweep_id="s", resume=True)
        assert again.completed() == {"a", "b"}

    def test_sweep_mismatch_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepJournal(path, sweep_id="sweep-A")
        with pytest.raises(CheckpointError, match="sweep-A"):
            SweepJournal(path, sweep_id="sweep-B", resume=True)

    def test_without_resume_overwrites(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepJournal(path, sweep_id="s").record("a", "ok")
        fresh = SweepJournal(path, sweep_id="s", resume=False)
        assert fresh.completed() == set()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "unit", "id": "a", "status": "ok"}\n')
        with pytest.raises(CheckpointError, match="header"):
            SweepJournal(path, sweep_id="s", resume=True)


class TestCrashSafety:
    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path, sweep_id="s")
        journal.record("a", "ok")
        # Simulate a crash mid-append: half a JSON record, no newline.
        with open(path, "a") as fh:
            fh.write('{"kind": "unit", "id": "b", "sta')
        resumed = SweepJournal(path, sweep_id="s", resume=True)
        assert resumed.completed() == {"a"}
        assert resumed.dropped_lines == 1
        assert "torn" in resumed.describe()

    def test_unterminated_but_parseable_tail_dropped(self, tmp_path):
        # A record that parses but was never newline-terminated may be
        # incomplete (e.g. truncated payload that still parses): the
        # fsync contract only covers terminated lines.
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path, sweep_id="s")
        journal.record("a", "ok")
        with open(path, "a") as fh:
            fh.write('{"kind": "unit", "id": "b", "status": "ok"}')
        resumed = SweepJournal(path, sweep_id="s", resume=True)
        assert resumed.completed() == {"a"}

    def test_garbage_middle_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path, sweep_id="s")
        journal.record("a", "ok")
        with open(path, "a") as fh:
            fh.write("\x00\xff garbage not json\n")
        resumed = SweepJournal(path, sweep_id="s", resume=True)
        assert resumed.completed() == {"a"}
        assert resumed.dropped_lines == 1


class TestThreadSafety:
    def test_concurrent_records_all_land(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl", sweep_id="s")
        workers = 8
        per_worker = 25

        def hammer(worker):
            for i in range(per_worker):
                journal.record(f"w{worker}-{i}", "ok")

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(journal.completed()) == workers * per_worker
        # Every line on disk is intact JSON.
        resumed = SweepJournal(journal.path, sweep_id="s", resume=True)
        assert resumed.dropped_lines == 0
        assert len(resumed.completed()) == workers * per_worker
