"""Tests for the fault-tolerant task execution core."""

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.resilience.execute import (
    ExecutionReport,
    RetryPolicy,
    TaskOutcome,
    TaskStatus,
    execute_tasks,
    run_one,
)


def ok_task(task_id):
    return f"done:{task_id}"


def boom_task(task_id):
    raise ValueError(f"boom:{task_id}")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_s=-0.1)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            retries=5, backoff_s=0.1, multiplier=2.0,
            max_backoff_s=0.3, jitter_frac=0.0,
        )
        delays = [policy.delay_s("t", n) for n in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, backoff_s=1.0, jitter_frac=0.25)
        first = policy.delay_s("taskA", 0)
        assert first == policy.delay_s("taskA", 0)  # replayable
        assert 0.75 <= first <= 1.25
        # Different tasks / retry numbers draw different jitter.
        draws = {
            policy.delay_s(t, n) for t in ("a", "b", "c") for n in (0,)
        }
        assert len(draws) == 3


class TestRunOne:
    def test_success(self):
        outcome = run_one(ok_task, "x")
        assert outcome.ok
        assert outcome.status is TaskStatus.OK
        assert outcome.value == "done:x"
        assert outcome.attempts == 1 and outcome.retries == 0

    def test_failure_is_captured_not_raised(self):
        outcome = run_one(boom_task, "x")
        assert not outcome.ok
        assert outcome.status is TaskStatus.FAILED
        assert outcome.error_type == "ValueError"
        assert "boom:x" in outcome.error
        assert "ValueError" in outcome.describe()

    def test_retries_until_success(self):
        calls = {"n": 0}

        def flaky(task_id):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "recovered"

        policy = RetryPolicy(retries=3, backoff_s=0.0)
        outcome = run_one(flaky, "x", policy)
        assert outcome.ok and outcome.value == "recovered"
        assert outcome.attempts == 3 and outcome.retries == 2

    def test_retries_exhausted(self):
        policy = RetryPolicy(retries=2, backoff_s=0.0)
        outcome = run_one(boom_task, "x", policy)
        assert outcome.status is TaskStatus.FAILED
        assert outcome.attempts == 3

    def test_timeout(self):
        def slow(task_id):
            time.sleep(0.5)
            return "late"

        outcome = run_one(slow, "x", timeout_s=0.05)
        assert outcome.status is TaskStatus.TIMEOUT
        assert outcome.error_type == "TaskTimeoutError"
        assert "deadline" in outcome.error

    def test_timeout_then_retry_succeeds(self):
        calls = {"n": 0}

        def slow_once(task_id):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.5)
            return "fast now"

        policy = RetryPolicy(retries=1, backoff_s=0.0)
        outcome = run_one(slow_once, "x", policy, timeout_s=0.1)
        assert outcome.ok and outcome.attempts == 2


class TestExecuteTasks:
    def test_order_matches_ids(self):
        report = execute_tasks(ok_task, ["c", "a", "b"])
        assert [o.task_id for o in report.outcomes] == ["c", "a", "b"]
        assert report.ok

    def test_failure_is_isolated(self):
        def mixed(task_id):
            if task_id == "bad":
                raise RuntimeError("dies")
            return task_id

        report = execute_tasks(mixed, ["x", "bad", "y"], parallel=2)
        assert not report.ok
        statuses = {o.task_id: o.status for o in report.outcomes}
        assert statuses["bad"] is TaskStatus.FAILED
        assert statuses["x"] is TaskStatus.OK
        assert statuses["y"] is TaskStatus.OK
        assert [o.task_id for o in report.failed()] == ["bad"]

    def test_on_outcome_sees_every_completion(self):
        seen = []
        lock = threading.Lock()

        def collect(outcome):
            with lock:
                seen.append(outcome.task_id)

        execute_tasks(ok_task, ["a", "b", "c"], parallel=2, on_outcome=collect)
        assert sorted(seen) == ["a", "b", "c"]

    def test_parallel_one_runs_serially(self):
        report = execute_tasks(ok_task, ["a", "b"], parallel=1, executor="process")
        assert report.executor == "serial"
        assert report.ok

    def test_process_pool_degrades_on_unpicklable_work(self):
        # A closure cannot cross a process boundary: the pool dies on
        # submit and the sweep must downgrade to threads, not fail.
        local = {"token": "captured"}

        def closure_task(task_id):
            return local["token"] + task_id

        report = execute_tasks(
            closure_task, ["a", "b"], parallel=2, executor="process"
        )
        assert report.ok
        assert report.executor in ("thread", "serial")
        assert report.downgrades
        assert report.downgrades[0][0] == "process"

    def test_validation(self):
        with pytest.raises(ConfigError):
            execute_tasks(ok_task, ["a"], parallel=0)
        with pytest.raises(ConfigError):
            execute_tasks(ok_task, ["a"], executor="fiber")
        with pytest.raises(ConfigError):
            execute_tasks(ok_task, ["a"], timeout_s=0)

    def test_empty_ids(self):
        report = execute_tasks(ok_task, [])
        assert report.outcomes == [] and report.ok

    def test_outcome_executor_recorded(self):
        report = execute_tasks(ok_task, ["a"], parallel=2, executor="thread")
        assert report.outcomes[0].executor == "thread"


class TestExecutionReport:
    def test_ok_and_failed(self):
        good = TaskOutcome(task_id="a", status=TaskStatus.OK)
        bad = TaskOutcome(
            task_id="b", status=TaskStatus.FAILED,
            error="x", error_type="ValueError",
        )
        report = ExecutionReport(outcomes=[good, bad])
        assert not report.ok
        assert report.failed() == [bad]
