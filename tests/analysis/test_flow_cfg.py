"""CFG builder + fixpoint framework tests on adversarial Python.

Node/edge counts are asserted exactly: the builder's block allocation
is deterministic (entry, exit, then construction order), so a count
change means the lowering changed and every analysis on top needs a
fresh look.
"""

import ast
import sys
import textwrap

import pytest

from repro.analysis.flow import (
    DataflowAnalysis,
    FixpointLimitError,
    build_cfg,
    run_fixpoint,
)


def cfg_of(src):
    tree = ast.parse(textwrap.dedent(src))
    func = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func)


class _Reach(DataflowAnalysis):
    """Trivial reachability lattice: False=bottom, True=reached."""

    def initial(self):
        return True

    def bottom(self):
        return False

    def join(self, a, b):
        return a or b

    def transfer(self, instr, state):
        return state


def solve(cfg):
    return run_fixpoint(cfg, _Reach())


class TestStructure:
    def test_straight_line(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
                return a + b
            """
        )
        assert cfg.node_count == 2  # entry + exit
        assert cfg.edge_count == 1
        assert cfg.blocks[cfg.entry].succs == [cfg.exit]

    def test_if_else_diamond(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
            """
        )
        assert cfg.node_count == 5
        assert cfg.edge_count == 5

    def test_early_return_skips_join(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    return 1
                else:
                    y = 2
                return y
            """
        )
        # then-branch edges straight to exit; the after-block is only
        # reachable through the else branch.
        assert cfg.node_count == 5
        assert cfg.edge_count == 5
        exits_preds = cfg.blocks[cfg.exit].preds
        assert len(exits_preds) == 2

    def test_while_else_with_break(self):
        cfg = cfg_of(
            """
            def f(n):
                while n > 0:
                    if n == 3:
                        break
                    n -= 1
                else:
                    n = -1
                return n
            """
        )
        assert cfg.node_count == 8
        assert cfg.edge_count == 9
        # Every block is reachable from entry.
        states = solve(cfg)
        assert all(states[bid] for bid in cfg.blocks)

    def test_for_else_and_continue(self):
        cfg = cfg_of(
            """
            def f(xs):
                total = 0
                for x in xs:
                    if x < 0:
                        continue
                    total += x
                else:
                    total += 1
                return total
            """
        )
        # continue edges back to the loop header, not to after.
        header = next(
            bid
            for bid, blk in cfg.blocks.items()
            if any(i.kind == "loop_iter" for i in blk.instrs)
        )
        continue_blocks = [
            bid
            for bid, blk in cfg.blocks.items()
            if any(isinstance(i.node, ast.Continue) for i in blk.instrs)
        ]
        assert continue_blocks
        for bid in continue_blocks:
            assert header in cfg.blocks[bid].succs
        assert all(solve(cfg)[bid] for bid in cfg.blocks)

    def test_try_except_finally(self):
        cfg = cfg_of(
            """
            def f(path):
                try:
                    x = g(path)
                except OSError:
                    x = None
                finally:
                    y = 1
                return x
            """
        )
        assert cfg.node_count == 5
        assert cfg.edge_count == 6
        # finally sits on both routes: it is a predecessor of exit
        # (unwinding) and of the return block.
        finally_block = next(
            bid
            for bid, blk in cfg.blocks.items()
            if any(
                isinstance(i.node, ast.Assign)
                and isinstance(i.node.targets[0], ast.Name)
                and i.node.targets[0].id == "y"
                for i in blk.instrs
            )
        )
        assert cfg.exit in cfg.blocks[finally_block].succs
        assert len(cfg.blocks[finally_block].succs) == 2

    def test_try_body_edges_to_every_handler(self):
        cfg = cfg_of(
            """
            def f(path):
                try:
                    a = 1
                    b = 2
                except OSError:
                    r = 1
                except ValueError:
                    r = 2
                return r
            """
        )
        handler_entries = [
            bid
            for bid, blk in cfg.blocks.items()
            if any(
                isinstance(i.node, ast.Assign)
                and isinstance(i.node.targets[0], ast.Name)
                and i.node.targets[0].id == "r"
                for i in blk.instrs
            )
        ]
        assert len(handler_entries) == 2
        for h in handler_entries:
            assert h in cfg.blocks[cfg.entry].succs

    def test_nested_comprehensions_stay_expression_grained(self):
        cfg = cfg_of(
            """
            def f(rows):
                out = [[c * 2 for c in row] for row in rows if row]
                return {k: v for k, v in out if v}
            """
        )
        # Comprehensions never become blocks: straight line.
        assert cfg.node_count == 2
        assert cfg.edge_count == 1

    @pytest.mark.skipif(
        sys.version_info < (3, 10), reason="match statements need 3.10+"
    )
    def test_match_statement(self):
        cfg = cfg_of(
            """
            def f(x):
                match x:
                    case 1:
                        r = "one"
                    case _:
                        r = "other"
                return r
            """
        )
        # Wildcard case is exhaustive: no fall-through edge.
        assert cfg.node_count == 5
        assert cfg.edge_count == 5

    @pytest.mark.skipif(
        sys.version_info < (3, 10), reason="match statements need 3.10+"
    )
    def test_match_without_wildcard_falls_through(self):
        cfg = cfg_of(
            """
            def f(x):
                match x:
                    case 1:
                        r = "one"
                return x
            """
        )
        # No wildcard: the subject block edges directly to after.
        match_block = next(
            bid
            for bid, blk in cfg.blocks.items()
            if any(i.kind == "match" for i in blk.instrs)
        )
        assert len(cfg.blocks[match_block].succs) == 2

    def test_with_enter_exit_pseudo_instrs(self):
        cfg = cfg_of(
            """
            def f(lock):
                with lock:
                    x = 1
                return x
            """
        )
        kinds = [
            i.kind for blk in cfg.blocks.values() for i in blk.instrs
        ]
        assert kinds.count("with_enter") == 1
        assert kinds.count("with_exit") == 1

    def test_unreachable_code_still_gets_blocks(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                x = 2
                return x
            """
        )
        states = solve(cfg)
        unreachable = [bid for bid in cfg.blocks if not states[bid]]
        assert unreachable  # dead tail exists but never flows


class TestRpo:
    def test_rpo_starts_at_entry_covers_all(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    if n % 2:
                        n -= 1
                    else:
                        n //= 2
                return n
            """
        )
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert sorted(order) == sorted(cfg.blocks)


class TestFixpoint:
    def test_terminates_on_nested_loops(self):
        cfg = cfg_of(
            """
            def f(n):
                total = 0
                while n:
                    for i in range(n):
                        while i:
                            i -= 1
                            if i == 2:
                                break
                    n -= 1
                return total
            """
        )
        states = solve(cfg)
        assert states[cfg.exit] is True

    def test_infinite_while_true_terminates_analysis(self):
        cfg = cfg_of(
            """
            def f(q):
                while True:
                    item = q.get()
                    if item is None:
                        break
            """
        )
        assert solve(cfg)[cfg.exit] is True

    def test_bounded_iteration_guard_raises(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )

        class Diverging(DataflowAnalysis):
            """Deliberately non-monotone: state grows forever."""

            def initial(self):
                return 0

            def bottom(self):
                return 0

            def join(self, a, b):
                return max(a, b)

            def transfer(self, instr, state):
                return state + 1  # never stabilizes around the loop

        with pytest.raises(FixpointLimitError, match="did not converge"):
            run_fixpoint(cfg, Diverging())

    def test_guard_bound_is_configurable(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        with pytest.raises(FixpointLimitError):
            run_fixpoint(cfg, _Reach(), max_visits_per_block=0)
