"""Tests for engine-backed fix-it quantification."""

import pytest

from repro.analysis import (
    best_candidate,
    modeled_latency,
    nearest_multiple,
    neighborhood_multiples,
    rank_candidates,
    strictly_better,
)
from repro.errors import ConfigError


class TestNearestMultiple:
    def test_rounds_to_nearest(self):
        assert nearest_multiple(100, 64) == 128
        assert nearest_multiple(70, 64) == 64

    def test_ties_round_up(self):
        assert nearest_multiple(96, 64) == 128

    def test_up_only(self):
        assert nearest_multiple(65, 64, up_only=True) == 128
        assert nearest_multiple(64, 64, up_only=True) == 64

    def test_never_zero(self):
        assert nearest_multiple(3, 64) == 64

    def test_vocab_padding_case(self):
        # The paper's Fig 20 case: 50257 pads up to 50304 = 786 * 64.
        assert nearest_multiple(50257, 64, up_only=True) == 50304

    def test_bad_multiple(self):
        with pytest.raises(ConfigError):
            nearest_multiple(100, 0)


class TestNeighborhoodMultiples:
    def test_brackets_value(self):
        out = neighborhood_multiples(100, 64, span=2)
        assert out == [64, 128, 192, 256]
        assert all(v % 64 == 0 for v in out)

    def test_up_only_never_below_value(self):
        out = neighborhood_multiples(50257, 64, span=3, up_only=True)
        assert min(out) >= 50257
        assert 50304 in out

    def test_all_positive(self):
        assert all(v > 0 for v in neighborhood_multiples(10, 64, span=4))


class TestStrictlyBetter:
    def test_improvement(self):
        assert strictly_better(2.0, 1.0) == 2.0

    def test_regression_or_wash_is_none(self):
        assert strictly_better(1.0, 1.0) is None
        assert strictly_better(1.0, 2.0) is None

    def test_min_gain_threshold(self):
        assert strictly_better(1.05, 1.0, min_gain=0.10) is None
        assert strictly_better(1.2, 1.0, min_gain=0.10) == pytest.approx(1.2)


class TestRankCandidates:
    def test_sorted_best_first(self):
        # Larger aligned GEMMs still cost more time; ranking must be by
        # latency, so the small candidate wins here.
        ranked = rank_candidates(
            [512, 4096], lambda n: [(n, n, n, 1)], "A100"
        )
        assert ranked[0].value == 512
        assert ranked[0].latency_s < ranked[1].latency_s

    def test_aligned_beats_misaligned_at_same_scale(self):
        ranked = rank_candidates(
            [4096, 4097], lambda n: [(2048, n, 2048, 1)], "A100"
        )
        assert ranked[0].value == 4096

    def test_matches_per_candidate_modeled_latency(self):
        shapes_for = lambda n: [(n, 1024, 1024, 1), (1024, n, 512, 1)]
        ranked = rank_candidates([768, 1024], shapes_for, "A100")
        for cand in ranked:
            assert cand.latency_s == pytest.approx(
                modeled_latency(shapes_for(cand.value), "A100"), rel=1e-9
            )

    def test_empty_candidates_raise(self):
        with pytest.raises(ConfigError):
            rank_candidates([], lambda n: [(n, n, n, 1)], "A100")

    def test_best_candidate(self):
        best = best_candidate([512, 4096], lambda n: [(n, n, n, 1)], "A100")
        assert best.value == 512


class TestModeledLatency:
    def test_positive_and_additive(self):
        one = modeled_latency([(1024, 1024, 1024, 1)], "A100")
        two = modeled_latency([(1024, 1024, 1024, 1)] * 2, "A100")
        assert one > 0
        assert two == pytest.approx(2 * one, rel=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            modeled_latency([], "A100")
