"""Unit/dimension lattice + flow-sensitive unit checker tests."""

import ast
import textwrap

import pytest

from repro.analysis.flow.unit_rules import (
    RULE_UNIT_COMPARE,
    RULE_UNIT_MISMATCH,
    RULE_UNIT_RETURN,
    UnitChecker,
)
from repro.analysis.flow.units import (
    BYTES,
    DIMENSIONLESS,
    FLOPS,
    SECONDS,
    Dim,
    infer_name,
    parse_dim,
    parse_unit_pragma,
)
from repro.analysis.selflint import _suppressed
from repro.errors import ConfigError


def unit_diags(src):
    src = textwrap.dedent(src)
    tree = ast.parse(src)
    return UnitChecker("mod.py", src.splitlines(), _suppressed).check_module(
        tree
    )


def rules_of(diags):
    return [d.rule_id for d in diags]


class TestDimAlgebra:
    def test_identity_and_equality(self):
        assert Dim.of(flops=1) == FLOPS
        assert Dim.of(flops=0) == DIMENSIONLESS
        assert FLOPS != BYTES

    def test_mul_div_cancel(self):
        bandwidth = BYTES.div(SECONDS)
        assert bandwidth.mul(SECONDS) == BYTES
        assert BYTES.div(BYTES) == DIMENSIONLESS

    def test_pow(self):
        assert SECONDS.pow(2).div(SECONDS) == SECONDS
        assert SECONDS.pow(-1) == DIMENSIONLESS.div(SECONDS)

    def test_str_forms(self):
        assert str(DIMENSIONLESS) == "dimensionless"
        assert str(FLOPS.div(SECONDS)) == "flops/seconds"
        assert str(DIMENSIONLESS.div(SECONDS)) == "1/seconds"


class TestParseDim:
    def test_bases_and_aliases(self):
        assert parse_dim("flops") == FLOPS
        assert parse_dim("byte") == BYTES
        assert parse_dim("s") == SECONDS
        assert parse_dim("dimensionless") == DIMENSIONLESS
        assert parse_dim("ratio") == DIMENSIONLESS

    def test_compound(self):
        assert parse_dim("bytes/second") == BYTES.div(SECONDS)
        assert parse_dim("flops/byte") == FLOPS.div(BYTES)
        # '/' binds all following terms.
        assert parse_dim("flops/byte/second") == FLOPS.div(BYTES).div(SECONDS)

    def test_exponent(self):
        assert parse_dim("seconds^2") == SECONDS.pow(2)
        assert parse_dim("bytes*seconds^-1") == BYTES.div(SECONDS)

    def test_garbage_raises(self):
        with pytest.raises(ConfigError):
            parse_dim("furlongs")
        with pytest.raises(ConfigError):
            parse_dim("bytes^x")


class TestPragma:
    def test_bare_form(self):
        assert parse_unit_pragma("x = f()  # unit: bytes/second") == {
            None: BYTES.div(SECONDS)
        }

    def test_named_form(self):
        got = parse_unit_pragma("a, b = f()  # unit: a=flops, b=seconds")
        assert got == {"a": FLOPS, "b": SECONDS}

    def test_no_pragma(self):
        assert parse_unit_pragma("x = f()  # plain comment") is None


class TestInferName:
    def test_exact_and_suffix(self):
        assert infer_name("latency") == SECONDS
        assert infer_name("kv_bytes") == BYTES
        assert infer_name("decode_ms") == SECONDS
        assert infer_name("hbm_bw") == BYTES.div(SECONDS)
        assert infer_name("tokens_per_s") == DIMENSIONLESS.div(SECONDS)

    def test_longest_suffix_wins(self):
        # _bytes_s must resolve as bandwidth, not seconds via _s.
        assert infer_name("bw_bytes_s") == BYTES.div(SECONDS)

    def test_bare_suffix_is_not_a_match(self):
        # A name that IS the suffix carries no signal ("_s" alone).
        assert infer_name("_s") is None

    def test_unseeded(self):
        assert infer_name("count") is None
        assert infer_name("num_tokens") is None


class TestUnitChecker:
    def test_add_mismatch(self):
        diags = unit_diags(
            """
            def f(x_bytes, y_flops):
                return x_bytes + y_flops
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]
        assert "(bytes)" in diags[0].message
        assert "(flops)" in diags[0].message

    def test_compose_through_division_is_clean(self):
        assert not unit_diags(
            """
            def f(x_bytes, t_s):
                bw = x_bytes / t_s
                total_bytes = bw * t_s
                return total_bytes
            """
        )

    def test_name_implied_binding_mismatch(self):
        diags = unit_diags(
            """
            def f(x_bytes, t_s):
                lat_s = x_bytes / t_s
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]
        assert "lat_s" in diags[0].message

    def test_compare_across_units(self):
        diags = unit_diags(
            """
            def f(a_s, b_bytes):
                return a_s < b_bytes
            """
        )
        assert rules_of(diags) == [RULE_UNIT_COMPARE]

    def test_return_against_declared_name(self):
        diags = unit_diags(
            """
            def total_s(a_bytes):
                return a_bytes
            """
        )
        assert rules_of(diags) == [RULE_UNIT_RETURN]

    def test_registry_seeds_call_results(self):
        diags = unit_diags(
            """
            from time import monotonic

            def f():
                start_bytes = monotonic()
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]
        assert not unit_diags(
            """
            from time import monotonic

            def f():
                start_s = monotonic()
                return start_s
            """
        )

    def test_kwarg_name_mismatch(self):
        diags = unit_diags(
            """
            def f(g, b_bytes):
                g(total_s=b_bytes)
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]
        assert "total_s=" in diags[0].message

    def test_aug_assign_mismatch(self):
        diags = unit_diags(
            """
            def f(t_s, b_bytes):
                t_s += b_bytes
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]

    def test_min_max_join_mismatch(self):
        diags = unit_diags(
            """
            def f(a_s, b_bytes):
                return max(a_s, b_bytes)
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]

    def test_conflicting_join_drops_binding(self):
        # x is seconds on one path, bytes on the other: the must-join
        # forgets it, so the later add cannot fire.
        assert not unit_diags(
            """
            def f(flag, a_s, b_bytes):
                if flag:
                    x = a_s
                else:
                    x = b_bytes
                y = x + a_s
                return y
            """
        )

    def test_agreeing_join_keeps_binding(self):
        # Flow-sensitivity: x is seconds on BOTH paths, so the binding
        # survives the merge and the add against bytes fires.
        diags = unit_diags(
            """
            def f(flag, a_s, b_bytes):
                if flag:
                    x = a_s
                else:
                    x = a_s * 2
                return x + b_bytes
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]

    def test_binding_stable_through_loop(self):
        assert not unit_diags(
            """
            def f(n, step_s):
                total_s = 0.0
                for _ in range(n):
                    total_s = total_s + step_s
                return total_s
            """
        )

    def test_pragma_overrides_opaque_call(self):
        assert not unit_diags(
            """
            def f(opaque, total_bytes):
                rate = opaque()  # unit: bytes/second
                t_s = total_bytes / rate
                return t_s
            """
        )

    def test_named_pragma_on_tuple_unpack(self):
        diags = unit_diags(
            """
            def f(g, x_bytes):
                a, b = g()  # unit: a=flops
                return a + x_bytes
            """
        )
        assert rules_of(diags) == [RULE_UNIT_MISMATCH]

    def test_def_line_pragma_declares_return(self):
        diags = unit_diags(
            """
            def rate(x_bytes, t_s):  # unit: bytes/second
                return x_bytes * t_s
            """
        )
        assert rules_of(diags) == [RULE_UNIT_RETURN]

    def test_suppression_pragma(self):
        assert not unit_diags(
            """
            def f(x_bytes, y_flops):
                return x_bytes + y_flops  # lint: allow(unit-mismatch)
            """
        )

    def test_unknowns_never_fire(self):
        assert not unit_diags(
            """
            def f(a, b, x_bytes):
                c = a + b
                d = c * x_bytes
                return d / a
            """
        )

    def test_uninferred_calls_stay_unknown(self):
        # int.from_bytes returns an int, not a byte count.
        assert not unit_diags(
            """
            def f(raw, t_s):
                n = int.from_bytes(raw, "big")
                delay_s = n * t_s
                return delay_s
            """
        )

    def test_diagnostic_metadata(self):
        (diag,) = unit_diags(
            """
            def f(x_bytes, y_flops):
                return x_bytes + y_flops
            """
        )
        assert diag.severity.name == "ERROR"
        assert diag.location.file == "mod.py"
        assert diag.location.line == 3
        assert diag.paper_ref
        assert "# unit:" in diag.message
