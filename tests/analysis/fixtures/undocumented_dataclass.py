"""Self-lint fixture: public dataclasses with missing unit docs."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class NoDocstring:
    latency: float


@dataclass
class MissingUnits:
    """Holds a measurement."""

    latency: float
    bandwidth: Optional[float] = None


@dataclass
class WellDocumented:
    """Holds a measurement.

    ``latency`` is in seconds.
    """

    latency: float
    #: GB/s as measured.
    bandwidth: float = 0.0
    duration_s: float = 0.0
    count: int = 0


@dataclass
class _PrivateUnchecked:
    latency: float
