"""Self-lint fixture: the same violation, pragma-suppressed."""

from repro.gpu.gemm_model import GemmModel


def deliberate_scalar_baseline(sizes):
    model = GemmModel("A100")
    out = []
    for n in sizes:
        out.append(model.evaluate(n, n, n))  # lint: allow(scalar-eval-in-loop)
    return out
