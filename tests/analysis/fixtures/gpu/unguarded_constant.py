"""Self-lint fixture: a calibration constant the cache key never sees.

Lives under a ``gpu/`` directory on purpose — the constant-guard rule
only scans there.
"""

_EFF_UNGUARDED = 0.5
