"""Self-lint fixture: scalar GemmModel calls inside loops.

Never imported at runtime — the self-linter parses it as text.
"""

from repro.gpu.gemm_model import GemmModel


def slow_sweep(sizes):
    model = GemmModel("A100")
    out = []
    for n in sizes:
        out.append(model.evaluate(n, n, n))
    return out


def slow_comprehension(model: GemmModel, sizes):
    return [model.latency(n, n, n) for n in sizes]


class Sweeper:
    def __init__(self):
        self.model = GemmModel("A100")

    def run(self, sizes):
        total = 0.0
        for n in sizes:
            total += self.model.tflops(n, n, n)
        return total
