"""Fixture: clean engine usage — whole-grid and single-batch calls."""

from repro.engine.core import ShapeEngine, default_engine


def whole_grid(grid):
    engine = ShapeEngine()
    return engine.evaluate_grid(grid, "A100")


def single_batch(shapes):
    return default_engine().evaluate(shapes, "A100")


def rebound_name_is_untracked(shapes):
    engine = ShapeEngine()
    engine = object()
    for row in shapes:
        engine.evaluate(row)  # not a ShapeEngine any more
