"""Self-lint fixture: nondeterminism inside cache-key construction."""

import os
import time


def build_cache_key(shapes):
    return (tuple(shapes), time.time())


def model_version():
    return os.environ.get("MODEL_VERSION", "v0")
