"""Fixture: dimensionally-inconsistent arithmetic the flow lint must flag."""


def mixed_total(total_bytes: float, work_flops: float) -> float:
    return total_bytes + work_flops
