"""Fixture: engine batch calls inside loops — all binding forms."""

from repro.engine.core import ShapeEngine, default_engine


def local_binding(shapes):
    engine = ShapeEngine()
    out = []
    for row in shapes:
        out.append(engine.evaluate([row], "A100"))
    return out


def inline_factory(shapes):
    return [default_engine().tflops([row], "A100") for row in shapes]


class Holder:
    def __init__(self):
        self.engine = ShapeEngine()

    def run(self, shapes):
        total = 0.0
        for row in shapes:
            total += float(self.engine.latency([row], "A100")[0])
        return total
