"""Self-lint fixture: scalar calls outside loops, batch calls inside."""

from repro.engine import default_engine, shape_array
from repro.gpu.gemm_model import GemmModel


def single_point(n):
    model = GemmModel("A100")
    return model.evaluate(n, n, n)


def batched_sweep(sizes):
    shapes = shape_array(list(sizes), list(sizes), list(sizes))
    return default_engine().latency(shapes, "A100")


def rebound_name(sizes):
    model = GemmModel("A100")
    model = object()
    return [model.evaluate(n, n, n) for n in sizes]  # not a GemmModel anymore
