"""Fixture: engine call in a loop suppressed with the allow pragma."""

from repro.engine.core import ShapeEngine


def grouped(targets):
    engine = ShapeEngine()
    for gpu, shapes in targets:
        engine.evaluate(shapes, gpu)  # lint: allow(engine-eval-in-loop)
