"""Tests for the AST self-lint pass (prong 2)."""

import random
import textwrap
from pathlib import Path

import pytest

from repro.analysis import SelfLinter, Severity
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def fixture_linter():
    return SelfLinter(root=FIXTURES)


def rule_ids(report):
    return [d.rule_id for d in report.findings()]


class TestScalarLoopRule:
    def test_flags_all_three_binding_forms(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "scalar_loop_violation.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/scalar-eval-in-loop"
        ]
        # local binding in a for loop, annotated param in a
        # comprehension, and self-attribute in a method loop
        assert len(hits) == 3
        assert report.exit_code != 0
        assert all(d.severity == Severity.WARNING for d in hits)
        assert all(d.location.line for d in hits)

    def test_pragma_suppresses(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "scalar_loop_allowed.py"])
        assert report.exit_code == 0

    def test_clean_patterns_pass(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "scalar_loop_clean.py"])
        assert "self/scalar-eval-in-loop" not in rule_ids(report)


class TestEngineLoopRule:
    def test_flags_engine_calls_in_loops(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "engine_loop_violation.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/engine-eval-in-loop"
        ]
        # local ShapeEngine binding, inline default_engine() call in a
        # comprehension, and self-attribute in a method loop
        assert len(hits) == 3
        assert all(d.severity == Severity.WARNING for d in hits)

    def test_pragma_suppresses(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "engine_loop_allowed.py"])
        assert report.exit_code == 0

    def test_clean_patterns_pass(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "engine_loop_clean.py"])
        assert "self/engine-eval-in-loop" not in rule_ids(report)

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_mutation_of_the_tuner_is_flagged(self, seed, tmp_path):
        # Seeded-mutation proof for the rule extension: rewrite the
        # tuner's single whole-grid sweep into the per-candidate
        # evaluate_grid/evaluate_tiles loop the rule exists to catch,
        # varying the binding name and loop form per seed, and assert
        # the linter flags every variant.
        rng = random.Random(seed)
        name = rng.choice(["eng", "engine", "tuner_engine"])
        method = rng.choice(["evaluate_grid", "evaluate_tiles"])
        loop = rng.choice(
            [
                "    sweep = []\n"
                "    for tile in pool:\n"
                f"        sweep.append({name}.{method}"
                "(grid, spec, dtype, tile=tile))\n"
                "    return sweep\n",
                f"    return [{name}.{method}(grid, spec, dtype, tile=t) "
                "for t in pool]\n",
            ]
        )
        source = (
            "from repro.engine.core import ShapeEngine\n\n\n"
            "def tune(grid, spec, dtype, pool):\n"
            f"    {name} = ShapeEngine()\n" + loop
        )
        root = tmp_path / "mutant"
        root.mkdir()
        (root / "search.py").write_text(source)
        report = SelfLinter(root=root).lint()
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/engine-eval-in-loop"
        ]
        assert len(hits) == 1, source
        assert "evaluate_tiles owns the loop" in hits[0].message

    def test_whole_grid_sweep_outside_loops_is_clean(self, tmp_path):
        # The shipped tuner's actual shape: one evaluate_tiles call,
        # no loop around it.  Must stay clean under the extended rule.
        source = textwrap.dedent(
            """\
            from repro.engine.core import ShapeEngine


            def tune(grid, spec, dtype, pool):
                engine = ShapeEngine()
                return engine.evaluate_tiles(grid, spec, dtype, candidates=pool)
            """
        )
        root = tmp_path / "clean"
        root.mkdir()
        (root / "search.py").write_text(source)
        report = SelfLinter(root=root).lint()
        assert "self/engine-eval-in-loop" not in rule_ids(report)

    def test_real_tuner_module_is_clean(self):
        import repro.kernels.search

        report = SelfLinter().lint(
            [Path(repro.kernels.search.__file__)]
        )
        assert "self/engine-eval-in-loop" not in rule_ids(report)


class TestNondetKeyRule:
    def test_flags_time_and_environ_in_keyish_functions(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "cache_key_violation.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/nondeterministic-cache-key"
        ]
        assert len(hits) == 2
        assert all(d.severity == Severity.ERROR for d in hits)
        messages = " ".join(d.message for d in hits)
        assert "time.time" in messages
        assert "os.environ" in messages


class TestConstantGuardRule:
    def test_unreferenced_calibration_constant_is_error(self, fixture_linter):
        # The fixture root has no engine/cache.py, so the constant
        # cannot be folded into any cache key.
        report = fixture_linter.lint(
            [FIXTURES / "gpu" / "unguarded_constant.py"]
        )
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/calibration-constant-guard"
        ]
        assert len(hits) == 1
        assert hits[0].severity == Severity.ERROR
        assert "_EFF_UNGUARDED" in hits[0].message


class TestDataclassDocRule:
    def test_flags_missing_docstring_and_units(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "undocumented_dataclass.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/dataclass-docstring"
        ]
        messages = " ".join(d.message for d in hits)
        assert "NoDocstring" in messages
        assert "MissingUnits" in messages
        # documented/suffixed/commented fields and private classes pass
        assert "WellDocumented" not in messages
        assert "_PrivateUnchecked" not in messages


class TestRepoIsClean:
    def test_src_repro_self_lints_clean(self):
        # The blocking CI gate: the shipped package must satisfy its
        # own invariants.
        report = SelfLinter().lint()
        assert report.exit_code == 0, report.render_text()


class TestInputHandling:
    def test_bad_path_raises(self, fixture_linter):
        with pytest.raises(ConfigError):
            fixture_linter.lint([FIXTURES / "does_not_exist.txt"])

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            SelfLinter(root=tmp_path / "nope")

    def test_syntax_error_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(ConfigError):
            SelfLinter(root=tmp_path).lint()

    def test_directory_path_recurses(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES])
        assert "self/scalar-eval-in-loop" in rule_ids(report)
        assert "self/calibration-constant-guard" in rule_ids(report)
