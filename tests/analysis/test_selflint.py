"""Tests for the AST self-lint pass (prong 2)."""

from pathlib import Path

import pytest

from repro.analysis import SelfLinter, Severity
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def fixture_linter():
    return SelfLinter(root=FIXTURES)


def rule_ids(report):
    return [d.rule_id for d in report.findings()]


class TestScalarLoopRule:
    def test_flags_all_three_binding_forms(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "scalar_loop_violation.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/scalar-eval-in-loop"
        ]
        # local binding in a for loop, annotated param in a
        # comprehension, and self-attribute in a method loop
        assert len(hits) == 3
        assert report.exit_code != 0
        assert all(d.severity == Severity.WARNING for d in hits)
        assert all(d.location.line for d in hits)

    def test_pragma_suppresses(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "scalar_loop_allowed.py"])
        assert report.exit_code == 0

    def test_clean_patterns_pass(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "scalar_loop_clean.py"])
        assert "self/scalar-eval-in-loop" not in rule_ids(report)


class TestEngineLoopRule:
    def test_flags_engine_calls_in_loops(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "engine_loop_violation.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/engine-eval-in-loop"
        ]
        # local ShapeEngine binding, inline default_engine() call in a
        # comprehension, and self-attribute in a method loop
        assert len(hits) == 3
        assert all(d.severity == Severity.WARNING for d in hits)

    def test_pragma_suppresses(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "engine_loop_allowed.py"])
        assert report.exit_code == 0

    def test_clean_patterns_pass(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "engine_loop_clean.py"])
        assert "self/engine-eval-in-loop" not in rule_ids(report)


class TestNondetKeyRule:
    def test_flags_time_and_environ_in_keyish_functions(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "cache_key_violation.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/nondeterministic-cache-key"
        ]
        assert len(hits) == 2
        assert all(d.severity == Severity.ERROR for d in hits)
        messages = " ".join(d.message for d in hits)
        assert "time.time" in messages
        assert "os.environ" in messages


class TestConstantGuardRule:
    def test_unreferenced_calibration_constant_is_error(self, fixture_linter):
        # The fixture root has no engine/cache.py, so the constant
        # cannot be folded into any cache key.
        report = fixture_linter.lint(
            [FIXTURES / "gpu" / "unguarded_constant.py"]
        )
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/calibration-constant-guard"
        ]
        assert len(hits) == 1
        assert hits[0].severity == Severity.ERROR
        assert "_EFF_UNGUARDED" in hits[0].message


class TestDataclassDocRule:
    def test_flags_missing_docstring_and_units(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES / "undocumented_dataclass.py"])
        hits = [
            d for d in report.findings()
            if d.rule_id == "self/dataclass-docstring"
        ]
        messages = " ".join(d.message for d in hits)
        assert "NoDocstring" in messages
        assert "MissingUnits" in messages
        # documented/suffixed/commented fields and private classes pass
        assert "WellDocumented" not in messages
        assert "_PrivateUnchecked" not in messages


class TestRepoIsClean:
    def test_src_repro_self_lints_clean(self):
        # The blocking CI gate: the shipped package must satisfy its
        # own invariants.
        report = SelfLinter().lint()
        assert report.exit_code == 0, report.render_text()


class TestInputHandling:
    def test_bad_path_raises(self, fixture_linter):
        with pytest.raises(ConfigError):
            fixture_linter.lint([FIXTURES / "does_not_exist.txt"])

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            SelfLinter(root=tmp_path / "nope")

    def test_syntax_error_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(ConfigError):
            SelfLinter(root=tmp_path).lint()

    def test_directory_path_recurses(self, fixture_linter):
        report = fixture_linter.lint([FIXTURES])
        assert "self/scalar-eval-in-loop" in rule_ids(report)
        assert "self/calibration-constant-guard" in rule_ids(report)
