"""Concurrency rule-family tests: lock discipline + async hygiene."""

import ast
import textwrap

from repro.analysis.flow.concurrency import (
    RULE_BLOCKING_ASYNC,
    RULE_LOCK_AWAIT,
    RULE_UNGUARDED_WRITE,
    ConcurrencyChecker,
)
from repro.analysis.selflint import _suppressed


def conc_diags(src):
    src = textwrap.dedent(src)
    tree = ast.parse(src)
    checker = ConcurrencyChecker("mod.py", src.splitlines(), _suppressed)
    return checker.check_module(tree)


def rules_of(diags):
    return [d.rule_id for d in diags]


class TestUnguardedWrite:
    def test_mixed_discipline_fires(self):
        diags = conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def reset(self):
                    self._items = []
            """
        )
        assert rules_of(diags) == [RULE_UNGUARDED_WRITE]
        assert "C._items" in diags[0].message
        assert "self._lock" in diags[0].message

    def test_consistent_unlocked_attr_is_clean(self):
        # An attribute never written under the lock is single-threaded
        # state by convention; mixed discipline is the bug signature.
        assert not conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._started = False

                def start(self):
                    self._started = True

                def stop(self):
                    self._started = False
            """
        )

    def test_consistent_locked_attr_is_clean(self):
        assert not conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def clear(self):
                    with self._lock:
                        self._items = []
            """
        )

    def test_class_without_locks_is_exempt(self):
        assert not conc_diags(
            """
            class C:
                def __init__(self):
                    self._items = []

                def add(self, x):
                    self._items.append(x)
            """
        )

    def test_acquire_release_counts_as_held(self):
        diags = conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = None

                def locked_set(self, x):
                    self._lock.acquire()
                    self._data = x
                    self._lock.release()

                def raw_set(self, x):
                    self._data = x
            """
        )
        assert rules_of(diags) == [RULE_UNGUARDED_WRITE]
        assert diags[0].location.line == 15

    def test_must_hold_join_is_path_sensitive(self):
        # The lock is only acquired on one branch, so the write after
        # the merge is NOT provably guarded; paired with the properly
        # locked writer it is mixed discipline.
        diags = conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def maybe(self, flag, x):
                    if flag:
                        self._lock.acquire()
                    self._items.append(x)
            """
        )
        assert rules_of(diags) == [RULE_UNGUARDED_WRITE]
        assert diags[0].location.line == 16

    def test_init_writes_are_exempt(self):
        assert not conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)
            """
        )

    def test_locked_write_inside_loop_body_is_clean(self):
        # Regression: the loop-header instruction carries the whole For
        # statement; the checker must not replay body writes with the
        # pre-loop (lock-free) state.
        assert not conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump_all(self, items):
                    for item in items:
                        with self._lock:
                            self._count += 1

                def bump(self):
                    with self._lock:
                        self._count += 1
            """
        )

    def test_loop_target_write_is_still_seen(self):
        # The for-target binding *is* evaluated at the header — an
        # unlocked `for self.x in ...` still mixes with a locked write.
        diags = conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cur = None

                def scan(self, items):
                    for self._cur in items:
                        pass

                def reset(self):
                    with self._lock:
                        self._cur = None
            """
        )
        assert rules_of(diags) == [RULE_UNGUARDED_WRITE]

    def test_acquire_inside_loop_does_not_leak_to_header(self):
        # acquire()/release() in the loop body must not be applied at
        # the header instruction (pre-loop state would wrongly gain the
        # lock and mask a genuinely unlocked iterable-expression write).
        diags = conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def work(self, items):
                    for item in items:
                        self._lock.acquire()
                        self._n += 1
                        self._lock.release()

                def unsafe(self):
                    self._n = 0

                def safe(self):
                    with self._lock:
                        self._n = 1
            """
        )
        assert RULE_UNGUARDED_WRITE in rules_of(diags)

    def test_suppression_pragma(self):
        assert not conc_diags(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def reset(self):
                    self._items = []  # lint: allow(unguarded-shared-write)
            """
        )


class TestLockAcrossAwait:
    def test_sync_with_across_await_fires(self):
        diags = conc_diags(
            """
            async def f(self, g):
                with self._lock:
                    await g()
            """
        )
        assert rules_of(diags) == [RULE_LOCK_AWAIT]

    def test_async_with_is_exempt(self):
        # asyncio primitives are safe to hold across await.
        assert not conc_diags(
            """
            async def f(self, g):
                async with self._lock:
                    await g()
            """
        )

    def test_release_before_await_is_clean(self):
        assert not conc_diags(
            """
            async def f(self, g):
                self._lock.acquire()
                x = 1
                self._lock.release()
                await g()
                return x
            """
        )

    def test_await_after_with_block_is_clean(self):
        assert not conc_diags(
            """
            async def f(self, g):
                with self._lock:
                    x = 1
                await g()
                return x
            """
        )


class TestBlockingInAsync:
    def test_time_sleep(self):
        diags = conc_diags(
            """
            import time

            async def worker(self):
                time.sleep(0.1)
            """
        )
        assert rules_of(diags) == [RULE_BLOCKING_ASYNC]
        assert "time.sleep()" in diags[0].message

    def test_asyncio_sleep_is_fine(self):
        assert not conc_diags(
            """
            import asyncio

            async def worker(self):
                await asyncio.sleep(0.1)
            """
        )

    def test_open_and_path_io(self):
        diags = conc_diags(
            """
            async def loader(path):
                with open(path) as fh:
                    data = fh.read()
                text = path.read_text()
                return data, text
            """
        )
        assert sorted(rules_of(diags)) == [
            RULE_BLOCKING_ASYNC,
            RULE_BLOCKING_ASYNC,
        ]

    def test_sync_engine_call_in_async(self):
        diags = conc_diags(
            """
            async def advise(self, cfg):
                return self._engine.evaluate(cfg)
            """
        )
        assert rules_of(diags) == [RULE_BLOCKING_ASYNC]

    def test_sync_function_is_exempt(self):
        assert not conc_diags(
            """
            import time

            def worker(self):
                time.sleep(0.1)
            """
        )

    def test_nested_sync_helper_in_async_is_exempt(self):
        # The blocking call belongs to the nested *sync* function that
        # presumably runs in an executor, not to the coroutine body.
        assert not conc_diags(
            """
            import time

            async def worker(self, loop):
                def blocking():
                    time.sleep(0.1)
                await loop.run_in_executor(None, blocking)
            """
        )
