"""Tests for the shared lint diagnostics framework."""

import json

from repro.analysis import FixIt, LintDiagnostic, LintReport, Location, Severity


def diag(rule="shape/x", sev=Severity.WARNING, fixit=None):
    return LintDiagnostic(
        rule, sev, "msg", Location(config_path="m.field"), fixit=fixit
    )


class TestLocation:
    def test_config_path(self):
        assert Location(config_path="m.vocab_size").describe() == "m.vocab_size"

    def test_file_line_column(self):
        loc = Location(file="a.py", line=3, column=7)
        assert loc.describe() == "a.py:3:7"
        assert Location(file="a.py", line=3).describe() == "a.py:3"
        assert Location(file="a.py").describe() == "a.py"

    def test_unknown(self):
        assert Location().describe() == "<unknown>"

    def test_to_dict_drops_none(self):
        assert Location(file="a.py", line=2).to_dict() == {"file": "a.py", "line": 2}


class TestFixIt:
    def test_speedup(self):
        fx = FixIt("f", 1, 2, latency_before_s=2e-3, latency_after_s=1e-3)
        assert fx.speedup == 2.0

    def test_speedup_none_without_latencies(self):
        assert FixIt("f", 1, 2).speedup is None

    def test_describe_quantified(self):
        fx = FixIt(
            "vocab_size", 50257, 50304,
            latency_before_s=4e-3, latency_after_s=1e-3, note="pad",
        )
        text = fx.describe()
        assert "set vocab_size = 50304 (from 50257)" in text
        assert "4.00x" in text
        assert "[pad]" in text

    def test_describe_structural(self):
        assert FixIt("t", 6, 4).describe() == "set t = 4 (from 6)"


class TestLintReport:
    def test_exit_code_contract(self):
        assert LintReport("t").exit_code == 0
        assert LintReport("t", [diag(sev=Severity.OK)]).exit_code == 0
        assert LintReport("t", [diag(sev=Severity.INFO)]).exit_code == 0
        assert LintReport("t", [diag(sev=Severity.WARNING)]).exit_code == 1
        assert (
            LintReport(
                "t", [diag(sev=Severity.WARNING), diag(sev=Severity.ERROR)]
            ).exit_code
            == 2
        )

    def test_findings_sorted_worst_first(self):
        rep = LintReport(
            "t",
            [
                diag("shape/b", Severity.INFO),
                diag("shape/a", Severity.ERROR),
                diag("shape/c", Severity.WARNING),
            ],
        )
        assert [d.rule_id for d in rep.findings()] == [
            "shape/a", "shape/c", "shape/b",
        ]

    def test_findings_min_severity(self):
        rep = LintReport(
            "t", [diag(sev=Severity.INFO), diag(sev=Severity.WARNING)]
        )
        assert len(rep.findings(Severity.WARNING)) == 1

    def test_ok_diagnostics_hidden_by_default(self):
        rep = LintReport("t", [diag(sev=Severity.OK)])
        assert rep.findings() == []
        assert "clean" in rep.render_text()

    def test_render_text(self):
        rep = LintReport("target-name", [diag(sev=Severity.WARNING)])
        text = rep.render_text()
        assert text.startswith("lint: target-name")
        assert "[WARNING] shape/x" in text
        assert "result: 1 warning (exit 1)" in text

    def test_to_json_round_trips(self):
        fx = FixIt("f", 1, 2, latency_before_s=2e-3, latency_after_s=1e-3)
        rep = LintReport("t", [diag(fixit=fx)])
        payload = json.loads(rep.to_json())
        assert payload["exit_code"] == 1
        assert payload["worst"] == "WARNING"
        assert payload["counts"]["WARNING"] == 1
        [d] = payload["diagnostics"]
        assert d["rule_id"] == "shape/x"
        assert d["fixit"]["speedup"] == 2.0


def src_diag(rule, sev, file, line, column, message="msg"):
    return LintDiagnostic(
        rule, sev, message, Location(file=file, line=line, column=column)
    )


class TestDeterministicOrdering:
    CORPUS = [
        src_diag("flow/unit-mismatch", Severity.ERROR, "b.py", 10, 4),
        src_diag("flow/unit-mismatch", Severity.ERROR, "a.py", 10, 4),
        src_diag("flow/unit-compare", Severity.ERROR, "a.py", 10, 4),
        src_diag("flow/unit-mismatch", Severity.ERROR, "a.py", 10, 2),
        src_diag("flow/unit-mismatch", Severity.ERROR, "a.py", 3, 9),
        src_diag("self/x", Severity.WARNING, "a.py", 1, 0),
        src_diag("flow/unit-mismatch", Severity.ERROR, "a.py", 10, 4, "zz"),
        diag("shape/x", Severity.WARNING),
    ]

    def test_fully_deterministic_under_shuffled_insertion(self):
        import random

        baseline = LintReport("t", list(self.CORPUS)).findings()
        for seed in range(10):
            shuffled = list(self.CORPUS)
            random.Random(seed).shuffle(shuffled)
            assert LintReport("t", shuffled).findings() == baseline

    def test_key_precedence(self):
        ordered = LintReport("t", list(self.CORPUS)).findings()
        keys = [
            (
                d.severity,
                d.location.file or d.location.config_path,
                d.location.line,
                d.location.column,
                d.rule_id,
                d.message,
            )
            for d in ordered
        ]
        # severity desc, then path, line, column, rule id, message.
        assert keys == [
            (Severity.ERROR, "a.py", 3, 9, "flow/unit-mismatch", "msg"),
            (Severity.ERROR, "a.py", 10, 2, "flow/unit-mismatch", "msg"),
            (Severity.ERROR, "a.py", 10, 4, "flow/unit-compare", "msg"),
            (Severity.ERROR, "a.py", 10, 4, "flow/unit-mismatch", "msg"),
            (Severity.ERROR, "a.py", 10, 4, "flow/unit-mismatch", "zz"),
            (Severity.ERROR, "b.py", 10, 4, "flow/unit-mismatch", "msg"),
            (Severity.WARNING, "a.py", 1, 0, "self/x", "msg"),
            (Severity.WARNING, "m.field", None, None, "shape/x", "msg"),
        ]


class TestSarif:
    def test_minimal_envelope(self):
        rep = LintReport("t", [src_diag("flow/x", Severity.ERROR, "a.py", 3, 7)])
        log = json.loads(rep.to_sarif())
        assert log["version"] == "2.1.0"
        assert "sarif-2.1.0" in log["$schema"]
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_result_levels_map_severities(self):
        rep = LintReport(
            "t",
            [
                src_diag("r/e", Severity.ERROR, "a.py", 1, 0),
                src_diag("r/w", Severity.WARNING, "a.py", 2, 0),
                src_diag("r/i", Severity.INFO, "a.py", 3, 0),
            ],
        )
        results = json.loads(rep.to_sarif())["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning", "note"]

    def test_columns_are_one_based(self):
        rep = LintReport("t", [src_diag("r/x", Severity.ERROR, "a.py", 3, 0)])
        [result] = json.loads(rep.to_sarif())["runs"][0]["results"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 1  # ast column 0 -> SARIF column 1

    def test_rules_deduplicated_and_indexed(self):
        rep = LintReport(
            "t",
            [
                src_diag("r/a", Severity.ERROR, "a.py", 1, 0),
                src_diag("r/a", Severity.ERROR, "a.py", 2, 0),
                src_diag("r/b", Severity.ERROR, "a.py", 3, 0),
            ],
        )
        run = json.loads(rep.to_sarif())["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["r/a", "r/b"]
        for result in run["results"]:
            assert (
                rule_ids[result["ruleIndex"]] == result["ruleId"]
            )

    def test_config_path_becomes_logical_location(self):
        rep = LintReport("t", [diag("shape/x", Severity.WARNING)])
        [result] = json.loads(rep.to_sarif())["runs"][0]["results"]
        [loc] = result["locations"]
        assert loc["logicalLocations"][0]["fullyQualifiedName"] == "m.field"
        assert "physicalLocation" not in loc

    def test_fixit_folded_into_message(self):
        fx = FixIt("vocab_size", 50257, 50304)
        rep = LintReport("t", [diag("shape/x", Severity.WARNING, fixit=fx)])
        [result] = json.loads(rep.to_sarif())["runs"][0]["results"]
        assert "set vocab_size = 50304" in result["message"]["text"]

    def test_min_severity_filters(self):
        rep = LintReport(
            "t",
            [
                src_diag("r/e", Severity.ERROR, "a.py", 1, 0),
                src_diag("r/i", Severity.INFO, "a.py", 2, 0),
            ],
        )
        run = json.loads(rep.to_sarif(Severity.WARNING))["runs"][0]
        assert len(run["results"]) == 1
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["r/e"]
