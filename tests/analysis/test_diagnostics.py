"""Tests for the shared lint diagnostics framework."""

import json

from repro.analysis import FixIt, LintDiagnostic, LintReport, Location, Severity


def diag(rule="shape/x", sev=Severity.WARNING, fixit=None):
    return LintDiagnostic(
        rule, sev, "msg", Location(config_path="m.field"), fixit=fixit
    )


class TestLocation:
    def test_config_path(self):
        assert Location(config_path="m.vocab_size").describe() == "m.vocab_size"

    def test_file_line_column(self):
        loc = Location(file="a.py", line=3, column=7)
        assert loc.describe() == "a.py:3:7"
        assert Location(file="a.py", line=3).describe() == "a.py:3"
        assert Location(file="a.py").describe() == "a.py"

    def test_unknown(self):
        assert Location().describe() == "<unknown>"

    def test_to_dict_drops_none(self):
        assert Location(file="a.py", line=2).to_dict() == {"file": "a.py", "line": 2}


class TestFixIt:
    def test_speedup(self):
        fx = FixIt("f", 1, 2, latency_before_s=2e-3, latency_after_s=1e-3)
        assert fx.speedup == 2.0

    def test_speedup_none_without_latencies(self):
        assert FixIt("f", 1, 2).speedup is None

    def test_describe_quantified(self):
        fx = FixIt(
            "vocab_size", 50257, 50304,
            latency_before_s=4e-3, latency_after_s=1e-3, note="pad",
        )
        text = fx.describe()
        assert "set vocab_size = 50304 (from 50257)" in text
        assert "4.00x" in text
        assert "[pad]" in text

    def test_describe_structural(self):
        assert FixIt("t", 6, 4).describe() == "set t = 4 (from 6)"


class TestLintReport:
    def test_exit_code_contract(self):
        assert LintReport("t").exit_code == 0
        assert LintReport("t", [diag(sev=Severity.OK)]).exit_code == 0
        assert LintReport("t", [diag(sev=Severity.INFO)]).exit_code == 0
        assert LintReport("t", [diag(sev=Severity.WARNING)]).exit_code == 1
        assert (
            LintReport(
                "t", [diag(sev=Severity.WARNING), diag(sev=Severity.ERROR)]
            ).exit_code
            == 2
        )

    def test_findings_sorted_worst_first(self):
        rep = LintReport(
            "t",
            [
                diag("shape/b", Severity.INFO),
                diag("shape/a", Severity.ERROR),
                diag("shape/c", Severity.WARNING),
            ],
        )
        assert [d.rule_id for d in rep.findings()] == [
            "shape/a", "shape/c", "shape/b",
        ]

    def test_findings_min_severity(self):
        rep = LintReport(
            "t", [diag(sev=Severity.INFO), diag(sev=Severity.WARNING)]
        )
        assert len(rep.findings(Severity.WARNING)) == 1

    def test_ok_diagnostics_hidden_by_default(self):
        rep = LintReport("t", [diag(sev=Severity.OK)])
        assert rep.findings() == []
        assert "clean" in rep.render_text()

    def test_render_text(self):
        rep = LintReport("target-name", [diag(sev=Severity.WARNING)])
        text = rep.render_text()
        assert text.startswith("lint: target-name")
        assert "[WARNING] shape/x" in text
        assert "result: 1 warning (exit 1)" in text

    def test_to_json_round_trips(self):
        fx = FixIt("f", 1, 2, latency_before_s=2e-3, latency_after_s=1e-3)
        rep = LintReport("t", [diag(fixit=fx)])
        payload = json.loads(rep.to_json())
        assert payload["exit_code"] == 1
        assert payload["worst"] == "WARNING"
        assert payload["counts"]["WARNING"] == 1
        [d] = payload["diagnostics"]
        assert d["rule_id"] == "shape/x"
        assert d["fixit"]["speedup"] == 2.0
