"""Observability-discipline rule tests: spans, phases, metric registry."""

import ast
import textwrap

from repro.analysis.flow.obs_rules import (
    KNOWN_PHASES,
    RULE_METRIC_DIRECT,
    RULE_SPAN_DISCARDED,
    RULE_UNKNOWN_PHASE,
    ObservabilityChecker,
)
from repro.analysis.selflint import _suppressed


def obs_diags(src, rel_path="repro/engine/core.py"):
    src = textwrap.dedent(src)
    tree = ast.parse(src)
    checker = ObservabilityChecker(rel_path, src.splitlines(), _suppressed)
    return checker.check_module(tree)


def rules_of(diags):
    return [d.rule_id for d in diags]


class TestSpanDiscarded:
    def test_bare_span_call_fires(self):
        diags = obs_diags(
            """
            def f(recorder):
                recorder.span("engine.evaluate")
            """
        )
        assert rules_of(diags) == [RULE_SPAN_DISCARDED]
        assert diags[0].severity.name == "ERROR"

    def test_module_helper_alias_fires(self):
        diags = obs_diags(
            """
            def f():
                _span("engine.evaluate")
            """
        )
        assert rules_of(diags) == [RULE_SPAN_DISCARDED]

    def test_with_span_is_clean(self):
        assert not obs_diags(
            """
            def f(recorder):
                with recorder.span("engine.evaluate"):
                    pass
            """
        )

    def test_assigned_span_is_clean(self):
        # Storing the context manager for a later `with` is fine.
        assert not obs_diags(
            """
            def f(recorder):
                cm = recorder.span("engine.evaluate")
                with cm:
                    pass
            """
        )


class TestUnknownPhase:
    def test_unknown_phase_warns(self):
        diags = obs_diags(
            """
            def f():
                with _span("warmup.go"):
                    pass
            """
        )
        assert rules_of(diags) == [RULE_UNKNOWN_PHASE]
        assert diags[0].severity.name == "WARNING"
        assert "'warmup'" in diags[0].message

    def test_known_phases_are_clean(self):
        for phase in sorted(KNOWN_PHASES):
            assert not obs_diags(
                f"""
                def f():
                    with _span("{phase}.step"):
                        pass
                """
            ), phase

    def test_metric_method_names_are_checked(self):
        diags = obs_diags(
            """
            def f():
                _metrics().counter("warp.count").inc()
            """
        )
        assert rules_of(diags) == [RULE_UNKNOWN_PHASE]

    def test_fstring_literal_prefix_is_checked(self):
        diags = obs_diags(
            """
            def f(name):
                with _span(f"warp.{name}"):
                    pass
            """
        )
        assert rules_of(diags) == [RULE_UNKNOWN_PHASE]

    def test_dynamic_name_is_not_guessed(self):
        assert not obs_diags(
            """
            def f(name):
                with _span(name):
                    pass
            """
        )

    def test_undotted_name_is_exempt(self):
        # No dot means no phase to bucket by; out of this rule's scope.
        assert not obs_diags(
            """
            def f():
                with _span("evaluate"):
                    pass
            """
        )


class TestMetricDirect:
    def test_direct_instantiation_warns(self):
        diags = obs_diags(
            """
            from repro.observability.metrics import Counter

            def f():
                c = Counter("engine.calls")
                return c
            """
        )
        assert rules_of(diags) == [RULE_METRIC_DIRECT]

    def test_aliased_import_is_tracked(self):
        diags = obs_diags(
            """
            from repro.observability import Gauge as G

            def f():
                return G("engine.depth")
            """
        )
        assert rules_of(diags) == [RULE_METRIC_DIRECT]

    def test_unrelated_counter_is_clean(self):
        assert not obs_diags(
            """
            from collections import Counter

            def f(xs):
                return Counter(xs)
            """
        )

    def test_registry_helper_is_clean(self):
        assert not obs_diags(
            """
            def f(registry):
                return registry.counter("engine.calls")
            """
        )


class TestExemptions:
    def test_observability_package_is_exempt(self):
        assert not obs_diags(
            """
            def f(recorder):
                recorder.span("whatever.here")
            """,
            rel_path="repro/observability/tracing.py",
        )

    def test_suppression_pragma(self):
        assert not obs_diags(
            """
            def f():
                with _span("warmup.go"):  # lint: allow(unknown-span-phase)
                    pass
            """
        )
