"""Seeded-mutation detection proofs + shipped-tree cleanliness.

Each test copies a real source file into a tmp tree, plants one
realistic bug (the exact class of bug the rule family exists for),
and asserts the flow linter catches it — and that the *unmutated*
tree stays clean, so the rules carry signal rather than noise.
"""

import ast
from pathlib import Path

import repro
from repro.analysis.flow import FlowLinter, build_cfg, run_fixpoint
from repro.analysis.flow.concurrency import (
    RULE_BLOCKING_ASYNC,
    RULE_UNGUARDED_WRITE,
)
from repro.analysis.flow.fixpoint import DataflowAnalysis
from repro.analysis.flow.unit_rules import RULE_UNIT_MISMATCH

SRC_ROOT = Path(repro.__file__).parent


def lint_file(tmp_path, rel_name, text):
    target = tmp_path / rel_name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return FlowLinter(root=tmp_path).lint([target]).diagnostics


class TestSeededMutations:
    def test_bytes_for_flops_swap_in_formulas(self, tmp_path):
        source = (SRC_ROOT / "core" / "formulas.py").read_text()
        planted = "L * per_layer + kv_cache_bytes(b, s, h, L)"
        mutated = source.replace(
            "L * per_layer + 2 * b * s * h * v", planted
        )
        assert mutated != source, "mutation anchor moved in formulas.py"
        diags = lint_file(tmp_path, "formulas.py", mutated)
        assert [d.rule_id for d in diags] == [RULE_UNIT_MISMATCH]
        assert "(flops)" in diags[0].message
        assert "(bytes)" in diags[0].message
        lineno = diags[0].location.line
        assert planted in mutated.splitlines()[lineno - 1]

    def test_removed_lock_acquire_in_serve(self, tmp_path):
        source = (SRC_ROOT / "serve" / "server.py").read_text()
        lines = source.splitlines(keepends=True)
        anchor = "with self._stats_lock:"
        # Drop exactly the guard inside _dispatch (the batch-stats
        # critical section), keeping the other guarded sections intact.
        dispatch_line = next(
            i
            for i, line in enumerate(lines)
            if "def _dispatch(" in line
        )
        guard_line = next(
            i
            for i in range(dispatch_line, len(lines))
            if anchor in lines[i]
        )
        lines[guard_line] = lines[guard_line].replace(anchor, "if True:")
        diags = lint_file(tmp_path, "server.py", "".join(lines))
        assert diags, "removed lock went undetected"
        assert {d.rule_id for d in diags} == {RULE_UNGUARDED_WRITE}
        assert any("_stats" in d.message for d in diags)
        # Every finding points into the un-guarded block we created.
        block_lines = range(guard_line + 1, guard_line + 9)
        assert all(d.location.line - 1 in block_lines for d in diags)

    def test_blocking_sleep_in_async_worker(self, tmp_path):
        source = (SRC_ROOT / "serve" / "server.py").read_text()
        mutated = source + (
            "\n\n"
            "async def _poll_worker(server):\n"
            '    """Injected coroutine for the mutation test."""\n'
            "    while server.running:\n"
            "        time.sleep(0.05)\n"
            "        await server.flush()\n"
        )
        diags = lint_file(tmp_path, "server.py", mutated)
        assert [d.rule_id for d in diags] == [RULE_BLOCKING_ASYNC]
        assert "time.sleep()" in diags[0].message
        assert "_poll_worker" in diags[0].message


class TestShippedTree:
    def test_flow_lint_of_src_is_clean(self):
        report = FlowLinter().lint()
        assert report.findings() == []
        assert report.exit_code == 0

    def test_fixpoint_terminates_on_every_function_in_src(self):
        class Reach(DataflowAnalysis):
            def initial(self):
                return True

            def bottom(self):
                return False

            def join(self, a, b):
                return a or b

            def transfer(self, instr, state):
                return state

        checked = 0
        for path in sorted(SRC_ROOT.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    cfg = build_cfg(node)
                    states = run_fixpoint(cfg, Reach())
                    assert set(states) == set(cfg.blocks)
                    checked += 1
        assert checked > 300  # the tree is not trivially empty
