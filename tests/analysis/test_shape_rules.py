"""Tests for the co-design shape linter (prong 1).

The paper's own numbers anchor these: the retuned GPT-3 2.7B shapes
(``c2``, Sec VI-B) and the Pythia suite (Sec VII-C) must lint clean,
and the known-bad shapes must trigger the expected rules with fix-its
matching the paper's values (a=40, v padded to a 64-multiple).
"""

import pytest

from repro.analysis import Severity, ShapeLinter
from repro.core.config import get_model


@pytest.fixture(scope="module")
def linter():
    return ShapeLinter("A100")


def rules_at_or_above(report, severity):
    return {d.rule_id for d in report.findings(severity)}


class TestCleanShapes:
    def test_c2_retuned_lints_clean(self, linter):
        # The paper's retuned 2.7B (h=2560, a=40, h/a=64) is the
        # positive exemplar of its own sizing rules.
        report = linter.lint(get_model("c2"))
        assert report.exit_code == 0, report.render_text()

    @pytest.mark.parametrize(
        "name", ["pythia-410m", "pythia-1.4b", "pythia-6.9b", "pythia-12b"]
    )
    def test_pythia_suite_lints_clean(self, linter, name):
        # Pythia was sized with these rules (Sec VII-C).
        report = linter.lint(get_model(name))
        assert report.exit_code == 0, report.render_text()

    def test_gpt3_13b_lints_clean(self, linter):
        report = linter.lint(get_model("gpt3-13b"))
        assert report.exit_code == 0, report.render_text()


class TestVocabRule:
    def test_unpadded_gptneo_vocab_flagged(self, linter):
        # GPT-NeoX padded 50257 -> 50304; unpadded must warn with the
        # paper's fix.
        report = linter.lint(get_model("gpt-neo-2.7b"))
        assert report.exit_code == 1
        [diag] = [
            d for d in report.findings() if d.rule_id == "shape/vocab-divisible"
        ]
        assert diag.severity == Severity.WARNING
        assert diag.fixit is not None
        assert diag.fixit.suggested % 64 == 0
        assert diag.fixit.suggested >= 50257
        assert diag.fixit.latency_after_s < diag.fixit.latency_before_s

    def test_padded_vocab_ok(self, linter):
        diags = linter.rule_vocab(get_model("gpt3-2.7b"))
        assert all(d.severity == Severity.OK for d in diags)


class TestHeadAlignmentRule:
    def test_gpt3_2_7b_suggests_paper_retune(self, linter):
        # h/a = 80 -> the nearest fully-aligned head count is the
        # paper's own retune, a=40 (h/a=64) — NOT the raw-latency
        # winner (a=20), which models faster but is a bigger change.
        [diag] = linter.rule_head_alignment(get_model("gpt3-2.7b"))
        assert diag.severity == Severity.WARNING
        assert diag.fixit is not None
        assert diag.fixit.suggested == 40
        assert diag.fixit.latency_after_s < diag.fixit.latency_before_s

    def test_c1_flagged(self, linter):
        # c1 (a=64, h/a=40) is the paper's deliberately-bad shape.
        [diag] = linter.rule_head_alignment(get_model("c1"))
        assert diag.severity == Severity.WARNING
        assert diag.fixit is not None
        assert diag.fixit.suggested == 40

    def test_aligned_head_dim_ok(self, linter):
        [diag] = linter.rule_head_alignment(get_model("c2"))
        assert diag.severity == Severity.OK


class TestTensorParallelRules:
    def test_acceptance_config_t4(self, linter):
        # ISSUE acceptance case: h=2560, a=32, t=4, v=50257 must emit
        # at least the vocab and head-alignment diagnostics, each with
        # a strictly-better engine-modeled fix-it.
        cfg = get_model("gpt3-2.7b").with_overrides(
            name="gpt3-2.7b-t4", vocab_size=50257, tp_degree=4
        )
        report = linter.lint(cfg)
        found = rules_at_or_above(report, Severity.WARNING)
        assert "shape/vocab-divisible" in found
        assert "shape/head-alignment" in found
        for rule in ("shape/vocab-divisible", "shape/head-alignment"):
            [diag] = [d for d in report.findings() if d.rule_id == rule]
            assert diag.fixit is not None, rule
            assert diag.fixit.latency_after_s < diag.fixit.latency_before_s

    def test_indivisible_hidden_is_error(self, linter):
        # Sec VII-A: Summit's 6-GPU nodes — t=6 does not divide 2560.
        cfg = get_model("gpt3-2.7b").with_overrides(name="t6", tp_degree=6)
        diags = linter.rule_hidden_tp(cfg)
        [diag] = diags
        assert diag.severity == Severity.ERROR
        assert diag.fixit is not None
        assert diag.fixit.field == "tp_degree"
        assert 2560 % diag.fixit.suggested == 0

    def test_heads_not_sharding_is_error(self, linter):
        cfg = get_model("gpt3-2.7b").with_overrides(name="t5-heads", tp_degree=5)
        [diag] = linter.rule_heads_tp(cfg)
        assert diag.severity == Severity.ERROR
        assert diag.rule_id == "shape/heads-tp-divisible"


class TestPipelineRule:
    def test_disabled_at_one_stage(self, linter):
        assert linter.rule_layers_pipeline(get_model("gpt3-2.7b"), 1) == []

    def test_indivisible_layers_warn(self, linter):
        diags = linter.rule_layers_pipeline(get_model("gpt3-2.7b"), 5)
        [diag] = diags
        assert diag.severity == Severity.WARNING
        assert diag.fixit.suggested % 5 == 0

    def test_divisible_layers_ok(self, linter):
        [diag] = linter.rule_layers_pipeline(get_model("gpt3-2.7b"), 4)
        assert diag.severity == Severity.OK


class TestGrid:
    def test_lint_grid_aggregates(self, linter):
        configs = [get_model("c2"), get_model("gpt-neo-2.7b")]
        report = linter.lint_grid(configs)
        assert report.exit_code == 1
        paths = {d.location.config_path for d in report.findings()}
        assert any(p.startswith("gpt-neo-2.7b") for p in paths)

    def test_diagnostics_carry_paper_refs(self, linter):
        report = linter.lint(get_model("gpt-neo-2.7b"))
        assert all(d.paper_ref for d in report.findings())


class TestMemoryCapacityRule:
    """The trainstep-backed capacity advisory (always OK-level: the
    linter judges shapes; the planner's CapacityError enforces)."""

    def _diags(self, linter, name, **kw):
        return linter.rule_memory_capacity(get_model(name, **kw))

    def test_small_model_fits_outright(self, linter):
        [diag] = self._diags(linter, "pythia-160m")
        assert diag.severity == Severity.OK
        assert "fits" in diag.message
        assert diag.paper_ref == "Sec VII-A"

    def test_checkpointing_rescue_is_advisory(self, linter):
        # c2 at t=4 fits only with full checkpointing on one A100.
        [diag] = self._diags(linter, "c2", tp_degree=4)
        assert diag.severity == Severity.OK
        assert "checkpointing" in diag.message

    def test_cannot_fit_suggests_min_tensor_degree(self, linter):
        [diag] = self._diags(linter, "gpt3-13b")
        assert diag.severity == Severity.OK
        assert diag.fixit is not None
        assert diag.fixit.field == "tp_degree"
        suggested = diag.fixit.suggested
        assert suggested > 1 and suggested & (suggested - 1) == 0
        # The suggestion must actually fit (with checkpointing).
        from repro.core.memory import MemoryBudget
        from repro.trainstep.memory import estimate_memory

        cfg = get_model("gpt3-13b")
        trial = estimate_memory(cfg, tp=suggested, checkpointing="full")
        assert trial.fits(MemoryBudget.for_gpu("A100"))

    def test_advisory_never_raises_exit_code(self, linter):
        for name in ("pythia-160m", "gpt3-13b", "gpt3-175b"):
            report = linter.lint(get_model(name))
            assert report.exit_code == 0, report.render_text()

    def test_advisory_visible_at_min_severity_ok(self, linter):
        report = linter.lint(get_model("gpt3-13b"))
        assert "memory-capacity" not in report.render_text(Severity.INFO)
        assert "memory-capacity" in report.render_text(Severity.OK)
