"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TransformerConfig
from repro.gpu.specs import get_gpu


@pytest.fixture(scope="session")
def a100():
    return get_gpu("A100")


@pytest.fixture(scope="session")
def v100():
    return get_gpu("V100")


@pytest.fixture(scope="session")
def h100():
    return get_gpu("H100")


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def small_config():
    """A transformer small enough to execute in NumPy within a test."""
    return TransformerConfig(
        name="test-small",
        hidden_size=64,
        num_heads=4,
        num_layers=2,
        vocab_size=128,
        seq_len=16,
        microbatch=2,
    )


@pytest.fixture()
def medium_config():
    """A realistic shape for latency-model tests (never executed)."""
    return TransformerConfig(
        name="test-medium",
        hidden_size=2048,
        num_heads=16,
        num_layers=24,
        vocab_size=50304,
        seq_len=2048,
        microbatch=4,
    )
