"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import TransformerConfig
from repro.engine.core import DISK_CACHE_ENV, reset_default_engine
from repro.gpu.specs import get_gpu

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Top-level entries tooling may create mid-run without it being a leak.
_TOOL_DIRS = {".hypothesis", ".pytest_cache", "__pycache__"}


@pytest.fixture(autouse=True)
def _isolated_engine_cache(monkeypatch, tmp_path_factory):
    """Give every test its own engine disk-cache directory (or none).

    A developer shell (or CI job) may export ``REPRO_ENGINE_CACHE_DIR``
    with a warm shared cache; under ``-n auto`` two tests writing that
    directory can race, and any test would pollute the real cache.  So:
    an inherited value is redirected to a per-test tmpdir, otherwise the
    variable is guaranteed unset — tests opt into a disk cache by
    setting it themselves (see tests/engine/test_cache.py).  The shared
    default engine is rebuilt around each test so no test inherits
    another's cache handles.
    """
    if os.environ.get(DISK_CACHE_ENV):
        monkeypatch.setenv(
            DISK_CACHE_ENV, str(tmp_path_factory.mktemp("engine-cache"))
        )
    else:
        monkeypatch.delenv(DISK_CACHE_ENV, raising=False)
    reset_default_engine()
    try:
        yield
    finally:
        reset_default_engine()


@pytest.fixture(autouse=True)
def _no_stray_repo_files():
    """Fail any test that leaves new files in the repo root.

    Artifacts (traces, journals, cache dirs, benchmark JSON) belong in
    tmp_path; a test writing a relative path lands here and silently
    dirties every later run.
    """
    before = {p.name for p in _REPO_ROOT.iterdir()}
    yield
    after = {p.name for p in _REPO_ROOT.iterdir()}
    stray = sorted(after - before - _TOOL_DIRS)
    assert not stray, (
        f"test left stray file(s) in the repo root: {stray}; "
        "write artifacts under tmp_path instead"
    )


@pytest.fixture(scope="session")
def a100():
    return get_gpu("A100")


@pytest.fixture(scope="session")
def v100():
    return get_gpu("V100")


@pytest.fixture(scope="session")
def h100():
    return get_gpu("H100")


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def small_config():
    """A transformer small enough to execute in NumPy within a test."""
    return TransformerConfig(
        name="test-small",
        hidden_size=64,
        num_heads=4,
        num_layers=2,
        vocab_size=128,
        seq_len=16,
        microbatch=2,
    )


@pytest.fixture()
def medium_config():
    """A realistic shape for latency-model tests (never executed)."""
    return TransformerConfig(
        name="test-medium",
        hidden_size=2048,
        num_heads=16,
        num_layers=24,
        vocab_size=50304,
        seq_len=2048,
        microbatch=4,
    )
