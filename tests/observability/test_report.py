"""Trace-report aggregation: phases, cache sources, retries, faults."""

from __future__ import annotations

import pytest

from repro.observability import (
    TraceReport,
    recording,
    render_trace_report,
    summarize,
)
from repro.observability.tracing import Span


def _span(name, start=0.0, dur=0.001, status="ok", pid=1, thread="main", **attrs):
    return Span(
        name=name,
        span_id=f"id{start:.3f}{name}",
        parent_id=None,
        trace_id="t",
        start_unix_s=100.0 + start,
        duration_s=dur,
        attrs=attrs,
        status=status,
        pid=pid,
        thread=thread,
    )


def _chaos_spans():
    """A hand-built trace shaped like a fault-injected resilient sweep."""
    return [
        _span("task.attempt", 0.0, 0.010, status="error",
              task="fig5", attempt=1, outcome="error", error_type="FaultInjectionError"),
        _span("fault.fired", 0.001, 0.0, site="runner.experiment", kind="raise"),
        _span("task.attempt", 0.02, 0.030, task="fig5", attempt=2, outcome="ok"),
        _span("task.attempt", 0.06, 0.020, task="fig1", attempt=1, outcome="ok"),
        _span("runner.experiment", 0.021, 0.028, id="fig5", passed=True),
        _span("engine.evaluate", 0.022, 0.004, source="compute", shapes=40),
        _span("engine.evaluate", 0.026, 0.0001, source="memory", shapes=40),
        _span("engine.evaluate", 0.027, 0.001, source="disk", shapes=12),
        _span("journal.append", 0.05, 0.0, unit="fig5", status="ok"),
        _span("journal.append", 0.08, 0.0, unit="fig1", status="ok"),
    ]


def test_summarize_aggregates_phases_and_names():
    report = summarize(_chaos_spans())
    assert report.spans == 10
    assert report.processes == 1 and report.threads == 1
    # task is the most expensive phase, so it leads the breakdown.
    assert report.phase_names()[0] == "task"
    assert set(report.phase_names()) == {
        "task", "runner", "engine", "fault", "journal"
    }
    task = report.phases[0]
    assert task.count == 3
    assert task.total_s == pytest.approx(0.060)
    assert task.errors == 1
    names = {n.name: n for n in report.names}
    assert names["engine.evaluate"].count == 3
    assert report.wall_span_s == pytest.approx(0.08)


def test_summarize_buckets_cache_sources_and_shapes():
    report = summarize(_chaos_spans())
    assert report.cache_sources == {"compute": 1, "memory": 1, "disk": 1}
    assert report.cache_shapes == {"compute": 40, "memory": 40, "disk": 12}


def test_summarize_counts_tasks_retries_faults_journal():
    report = summarize(_chaos_spans())
    assert report.attempt_outcomes == {"error": 1, "ok": 2}
    assert report.tasks == 2
    assert report.retried_tasks == 1  # fig5 needed two attempts
    assert report.max_attempts == 2
    assert report.fault_events == 1
    assert report.fault_sites == {"runner.experiment": 1}
    assert report.journal_appends == 2


def test_render_text_names_every_section():
    text = summarize(_chaos_spans(), dropped_lines=1).render_text()
    assert "1 torn/corrupt line(s) dropped" in text
    assert "per-phase breakdown" in text
    assert "engine cache: 3 batch evaluation(s), 2 served from cache" in text
    assert "2 task(s), 3 attempt(s)" in text
    assert "1 task(s) retried (max 2 attempts on one task)" in text
    assert "faults: 1 injected firing(s) (runner.experiment: 1)" in text
    assert "journal: 2 checkpoint append(s)" in text


def test_empty_trace_renders_without_error():
    report = summarize([])
    assert report.spans == 0
    assert "(empty trace)" in report.render_text()
    assert report.phase_names() == []


def test_multiprocess_multithread_counts():
    spans = [
        _span("a.x", 0.0, pid=1, thread="main"),
        _span("a.y", 0.1, pid=1, thread="w0"),
        _span("a.z", 0.2, pid=2, thread="main"),
    ]
    report = summarize(spans)
    assert report.processes == 2
    assert report.threads == 3


def test_render_trace_report_reads_a_streamed_file(tmp_path):
    from repro.observability import span

    path = tmp_path / "trace.jsonl"
    with recording(str(path)):
        with span("runner.experiment", id="fig2"):
            with span("engine.evaluate", shapes=7) as sp:
                sp.set(source="compute")
    text = render_trace_report(str(path))
    assert "2 span(s)" in text
    assert "runner" in text and "engine" in text
    assert "7 shape(s)" in text


def test_trace_report_is_plain_data():
    report = summarize(_chaos_spans())
    assert isinstance(report, TraceReport)
    # The report verb greps these, so keep them stable.
    assert report.phase_names() == [p.name for p in report.phases]
