"""Metrics registry: counters, gauges, fixed-bucket histograms, rendering."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observability import (
    DEFAULT_LATENCY_EDGES_S,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)


@pytest.fixture(autouse=True)
def _fresh_global_registry():
    reset_metrics()
    yield
    reset_metrics()


def test_counter_is_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("tasks.retries")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 4


def test_gauge_sets_and_adds():
    reg = MetricsRegistry()
    g = reg.gauge("cache.entries")
    g.set(10)
    g.add(-3)
    assert g.value == 7.0


def test_histogram_buckets_by_upper_edge():
    h = Histogram("lat", edges=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.001, 0.002, 0.05, 5.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(5.0535)
    assert h.mean == pytest.approx(5.0535 / 5)
    assert h.bucket_counts() == [
        ("<=0.001", 2),  # upper edges are inclusive
        ("<=0.01", 1),
        ("<=0.1", 1),
        (">0.1", 1),  # overflow
    ]
    d = h.to_dict()
    assert d["min"] == 0.0005 and d["max"] == 5.0


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        Histogram("bad", edges=(1.0, 0.1))
    with pytest.raises(ValueError):
        Histogram("empty", edges=())


def test_default_edges_span_engine_to_sweep_latencies():
    assert DEFAULT_LATENCY_EDGES_S[0] <= 1e-4  # µs-scale engine batches
    assert DEFAULT_LATENCY_EDGES_S[-1] >= 60.0  # multi-second sweeps
    assert list(DEFAULT_LATENCY_EDGES_S) == sorted(DEFAULT_LATENCY_EDGES_S)


def test_registry_creates_on_first_use_and_refuses_type_morphing():
    reg = MetricsRegistry()
    assert reg.get("x") is None
    c = reg.counter("x")
    assert reg.counter("x") is c  # same instrument back
    with pytest.raises(ValueError, match="Counter"):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")
    assert reg.names() == ["x"]


def test_registry_render_text_and_json():
    reg = MetricsRegistry()
    assert reg.render_text() == "(no metrics recorded)"
    reg.counter("engine.evaluate.computes").inc(2)
    reg.gauge("cache.entries").set(5)
    reg.histogram("tasks.attempt_s").observe(0.02)
    text = reg.render_text()
    assert "engine.evaluate.computes" in text and "counter    2" in text
    assert "gauge      5" in text
    assert "count=1" in text and "<=0.1: 1" in text
    data = json.loads(reg.to_json())
    assert data["engine.evaluate.computes"] == {"type": "counter", "value": 2}
    assert data["tasks.attempt_s"]["count"] == 1


def test_concurrent_increments_do_not_lose_counts():
    reg = MetricsRegistry()

    def bump():
        c = reg.counter("hits")
        h = reg.histogram("lat")
        for _ in range(1000):
            c.inc()
            h.observe(0.001)

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("hits").value == 8000
    assert reg.histogram("lat").count == 8000


def test_global_registry_resets():
    metrics().counter("a").inc()
    assert metrics().names() == ["a"]
    reset_metrics()
    assert metrics().names() == []
    assert metrics() is metrics()  # stable singleton object
