"""Tracing core: spans, nesting, streaming, torn-tail reload, zero-cost off."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observability import (
    NULL_SPAN,
    TraceRecorder,
    current_recorder,
    event,
    install_recorder,
    load_trace,
    recording,
    span,
    tracing_enabled,
)
from repro.observability.tracing import children_of, roots


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    yield
    install_recorder(None)


# -- disabled path ----------------------------------------------------------------


def test_disabled_span_is_the_shared_null_singleton():
    assert not tracing_enabled()
    sp = span("engine.evaluate", shapes=4)
    assert sp is NULL_SPAN
    assert span("anything.else") is NULL_SPAN  # no per-call allocation
    with sp as inner:
        assert inner.set(source="memory") is inner  # full live surface


def test_disabled_event_is_a_noop():
    event("fault.fired", site="x")  # must not raise or record anywhere
    assert current_recorder() is None


# -- recording --------------------------------------------------------------------


def test_spans_nest_and_carry_attrs():
    with recording() as rec:
        with span("runner.experiment", id="fig2") as outer:
            with span("engine.evaluate", shapes=3) as inner:
                inner.set(source="compute")
            outer.set(passed=True)
    assert len(rec) == 2
    inner_span = rec.by_name("engine.evaluate")[0]
    outer_span = rec.by_name("runner.experiment")[0]
    assert inner_span.parent_id == outer_span.span_id
    assert outer_span.parent_id is None
    assert inner_span.attrs == {"shapes": 3, "source": "compute"}
    assert outer_span.attrs == {"id": "fig2", "passed": True}
    assert inner_span.trace_id == outer_span.trace_id == rec.trace_id
    assert inner_span.phase == "engine"
    assert rec.phases() == ["engine", "runner"]  # inner finishes first


def test_exception_marks_span_error_with_type():
    with recording() as rec:
        with pytest.raises(ValueError):
            with span("task.attempt", task="fig5"):
                raise ValueError("boom")
    (sp,) = rec.spans
    assert sp.status == "error"
    assert sp.attrs["error_type"] == "ValueError"


def test_threads_get_independent_parent_stacks():
    with recording() as rec:
        def worker(name):
            with span(f"task.{name}"):
                with span("engine.evaluate"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",), name=f"w{i}")
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(rec) == 8
    evals = rec.by_name("engine.evaluate")
    parents = {s.span_id: s for s in rec.spans}
    for sp in evals:
        # Each eval's parent is the task span from the SAME thread.
        assert parents[sp.parent_id].thread == sp.thread


def test_event_records_instantaneous_span():
    with recording() as rec:
        event("fault.fired", site="cache.disk_put", kind="corrupt")
    (sp,) = rec.spans
    assert sp.name == "fault.fired"
    assert sp.attrs == {"site": "cache.disk_put", "kind": "corrupt"}
    assert sp.duration_s < 0.1


# -- streaming + reload -----------------------------------------------------------


def test_streaming_writes_one_json_line_per_span(tmp_path):
    path = tmp_path / "trace.jsonl"
    with recording(str(path)) as rec:
        with span("a.one"):
            pass
        with span("b.two"):
            pass
    lines = path.read_text().splitlines()
    assert len(lines) == 2 == len(rec)
    assert all(json.loads(line)["trace_id"] == rec.trace_id for line in lines)


def test_export_then_load_roundtrips(tmp_path):
    path = tmp_path / "trace.jsonl"
    with recording() as rec:
        with span("runner.experiment", id="fig1"):
            pass
    assert rec.export_jsonl(path) == 1
    loaded = load_trace(path)
    assert loaded.dropped_lines == 0
    assert [s.to_dict() for s in loaded.spans] == [
        s.to_dict() for s in rec.spans
    ]


def test_load_trace_tolerates_torn_tail_and_garbage(tmp_path):
    path = tmp_path / "trace.jsonl"
    with recording(str(path)):
        for name in ("a.x", "a.y", "b.z"):
            with span(name):
                pass
    with open(path, "a") as fh:
        fh.write("not json at all\n")
        fh.write('{"name": "c.torn", "span_id": "ff"')  # no newline: torn
    loaded = load_trace(path)
    assert len(loaded) == 3
    assert loaded.dropped_lines == 2
    assert loaded.phases() == ["a", "b"]
    assert loaded.wall_span_s() >= 0.0


def test_load_trace_missing_file_raises_oserror(tmp_path):
    with pytest.raises(OSError):
        load_trace(tmp_path / "nope.jsonl")


# -- tree helpers -----------------------------------------------------------------


def test_roots_and_children_reconstruct_the_tree():
    with recording() as rec:
        with span("runner.experiment") as outer:
            with span("engine.evaluate"):
                pass
            with span("engine.evaluate"):
                pass
    assert [s.span_id for s in roots(rec.spans)] == [outer.span_id]
    assert len(children_of(rec.spans, outer.span_id)) == 2


def test_recording_accepts_existing_recorder():
    rec = TraceRecorder()
    with recording(rec) as active:
        assert active is rec is current_recorder()
        with span("x.y"):
            pass
    assert current_recorder() is None
    assert len(rec) == 1
