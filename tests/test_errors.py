"""Tests for the exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigError,
        errors.ShapeError,
        errors.GPUModelError,
        errors.ParallelismError,
        errors.ExperimentError,
        errors.CalibrationError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_does_not_catch_unrelated():
    with pytest.raises(ValueError):
        try:
            raise ValueError("unrelated")
        except errors.ReproError:  # pragma: no cover - must not trigger
            pytest.fail("ReproError caught a ValueError")
