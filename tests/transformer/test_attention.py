"""Tests for multi-head attention: shapes, causality, tensor parallelism."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.transformer.attention import MultiHeadAttention
from repro.transformer.trace import OpTrace


def make_attention(rng, h=32, a=4, t=1, positional="learned"):
    return MultiHeadAttention(h, a, rng, tp_degree=t, positional=positional)


class TestConstruction:
    def test_param_count(self, rng):
        att = make_attention(rng, h=32, a=4)
        # 3h^2 + 3h (QKV) + h^2 + h (projection) = 4h^2 + 4h.
        assert att.param_count() == 4 * 32 * 32 + 4 * 32

    def test_param_count_invariant_to_tp(self, rng):
        h, a = 64, 8
        assert (
            make_attention(rng, h, a, t=1).param_count()
            == make_attention(rng, h, a, t=4).param_count()
        )

    def test_h_not_divisible_raises(self, rng):
        with pytest.raises(ConfigError):
            make_attention(rng, h=30, a=4)

    def test_heads_not_divisible_by_tp_raises(self, rng):
        with pytest.raises(ConfigError):
            make_attention(rng, h=32, a=4, t=3)

    def test_rotary_needs_even_head_dim(self, rng):
        with pytest.raises(ConfigError, match="even head dim"):
            MultiHeadAttention(15, 3, rng, positional="rotary")


class TestForward:
    def test_output_shape(self, rng):
        att = make_attention(rng)
        x = rng.normal(size=(8, 2, 32))
        out = att.forward(x, OpTrace())
        assert out.shape == x.shape

    def test_bad_input_shape_raises(self, rng):
        att = make_attention(rng)
        with pytest.raises(ShapeError):
            att.forward(rng.normal(size=(8, 2, 16)), OpTrace())

    def test_causality(self, rng):
        # Changing a future token must not change earlier outputs.
        att = make_attention(rng)
        x = rng.normal(size=(8, 1, 32))
        base = att.forward(x, OpTrace())
        x2 = x.copy()
        x2[5] += 10.0
        out = att.forward(x2, OpTrace())
        np.testing.assert_allclose(out[:5], base[:5], rtol=1e-10)
        assert not np.allclose(out[5:], base[5:])

    def test_traced_shapes_match_table2(self, rng):
        s, b, h, a = 8, 2, 32, 4
        att = make_attention(rng, h=h, a=a)
        trace = OpTrace()
        att.forward(rng.normal(size=(s, b, h)), trace)
        shapes = {r.module: r.shape_tuple() for r in trace}
        assert shapes["qkv_transform"] == (1, s * b, h, 3 * h)
        assert shapes["attention_score"] == (b * a, s, h // a, s)
        assert shapes["attention_over_value"] == (b * a, s, s, h // a)
        assert shapes["attention_projection"] == (1, s * b, h, h)

    def test_traced_shapes_with_tp(self, rng):
        s, b, h, a, t = 8, 2, 32, 4, 2
        att = make_attention(rng, h=h, a=a, t=t)
        trace = OpTrace()
        att.forward(rng.normal(size=(s, b, h)), trace)
        qkv = [r for r in trace if r.module == "qkv_transform"]
        assert len(qkv) == t  # one per emulated rank
        assert qkv[0].shape_tuple() == (1, s * b, h, 3 * h // t)
        score = [r for r in trace if r.module == "attention_score"]
        assert score[0].batch == b * a // t


class TestTensorParallelEquivalence:
    def test_tp2_matches_tp1_with_shared_weights(self, rng):
        """Sharding is a numerics-preserving rearrangement."""
        s, b, h, a = 8, 2, 32, 4
        one = make_attention(np.random.default_rng(7), h=h, a=a, t=1)
        two = make_attention(np.random.default_rng(7), h=h, a=a, t=2)
        # Rebuild the sharded weights from the t=1 weights: shard i of
        # QKV takes head-block columns i of each of Q|K|V.
        w = one.w_qkv[0]  # (h, 3h), columns [Q | K | V]
        d = h // a
        for i in range(2):
            heads = slice(i * (a // 2) * d, (i + 1) * (a // 2) * d)
            two.w_qkv[i] = np.concatenate(
                [w[:, 0 * h:][:, heads], w[:, 1 * h:][:, heads], w[:, 2 * h:][:, heads]],
                axis=1,
            )
            two.b_qkv[i] = np.zeros(3 * h // 2)
            two.w_proj[i] = one.w_proj[0][i * h // 2 : (i + 1) * h // 2]
        two.b_proj = one.b_proj
        x = rng.normal(size=(s, b, h))
        np.testing.assert_allclose(
            one.forward(x, OpTrace()), two.forward(x, OpTrace()), rtol=1e-10
        )


class TestPositionalVariants:
    @pytest.mark.parametrize("kind", ["learned", "rotary", "alibi", "none"])
    def test_gemm_shapes_identical_across_variants(self, rng, kind):
        # Sec VI-C2: embeddings do not change the GEMM analysis.
        s, b, h, a = 8, 2, 32, 4
        att = make_attention(rng, h=h, a=a, positional=kind)
        trace = OpTrace()
        att.forward(rng.normal(size=(s, b, h)), trace)
        shapes = [r.shape_tuple() for r in trace]
        ref = make_attention(rng, h=h, a=a, positional="learned")
        ref_trace = OpTrace()
        ref.forward(rng.normal(size=(s, b, h)), ref_trace)
        assert shapes == [r.shape_tuple() for r in ref_trace]

    def test_rotary_changes_output(self, rng):
        s, b, h, a = 8, 1, 32, 4
        x = rng.normal(size=(s, b, h))
        plain = make_attention(np.random.default_rng(5), h=h, a=a, positional="none")
        rot = make_attention(np.random.default_rng(5), h=h, a=a, positional="rotary")
        assert not np.allclose(
            plain.forward(x, OpTrace()), rot.forward(x, OpTrace())
        )

    def test_alibi_preserves_causality(self, rng):
        att = make_attention(rng, positional="alibi")
        x = rng.normal(size=(8, 1, 32))
        base = att.forward(x, OpTrace())
        x2 = x.copy()
        x2[7] += 5.0
        out = att.forward(x2, OpTrace())
        np.testing.assert_allclose(out[:7], base[:7], rtol=1e-10)
