"""Tests for autoregressive generation."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.transformer.data import MarkovCorpus
from repro.transformer.generate import generate, perplexity
from repro.transformer.model import DecoderModel
from repro.transformer.optim import Adam, parameter_registry, train


def make_model(**kw):
    defaults = dict(
        vocab_size=32,
        max_seq=24,
        hidden_size=24,
        num_heads=4,
        num_layers=1,
        rng=np.random.default_rng(0),
    )
    defaults.update(kw)
    return DecoderModel(**defaults)


class TestGenerate:
    def test_extends_prompt(self, rng):
        model = make_model()
        prompt = rng.integers(0, 32, size=(4, 2))
        out = generate(model, prompt, new_tokens=6)
        assert out.shape == (10, 2)
        np.testing.assert_array_equal(out[:4], prompt)

    def test_tokens_in_vocab(self, rng):
        model = make_model()
        out = generate(model, rng.integers(0, 32, size=(4, 3)), new_tokens=8)
        assert out.min() >= 0 and out.max() < 32

    def test_greedy_deterministic(self, rng):
        model = make_model()
        prompt = rng.integers(0, 32, size=(4, 1))
        a = generate(model, prompt, new_tokens=5)
        b = generate(model, prompt, new_tokens=5)
        np.testing.assert_array_equal(a, b)

    def test_sampling_seeded_reproducible(self, rng):
        model = make_model()
        prompt = rng.integers(0, 32, size=(4, 1))
        a = generate(model, prompt, 5, temperature=1.0, rng=np.random.default_rng(7))
        b = generate(model, prompt, 5, temperature=1.0, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_stops_at_positional_table(self, rng):
        model = make_model(max_seq=8)
        out = generate(model, rng.integers(0, 32, size=(6, 1)), new_tokens=10)
        assert out.shape[0] == 8  # capped, not crashed

    def test_invalid_args_raise(self, rng):
        model = make_model()
        with pytest.raises(ShapeError):
            generate(model, rng.integers(0, 32, size=(4,)), 2)
        with pytest.raises(ConfigError):
            generate(model, rng.integers(0, 32, size=(4, 1)), 0)
        with pytest.raises(ConfigError):
            generate(model, rng.integers(0, 32, size=(4, 1)), 2, temperature=-1)


class TestLearnedGeneration:
    def test_trained_model_tracks_chain_statistics(self):
        """After training on a peaky Markov chain, greedy generation
        should mostly follow the chain's argmax transitions."""
        corpus = MarkovCorpus(vocab_size=16, concentration=0.02, seed=1)
        model = make_model(vocab_size=16, hidden_size=32, num_layers=2, max_seq=32)
        opt = Adam(parameter_registry(model), lr=3e-3, clip=1.0)
        train(model, corpus.batches(24, 16, steps=50), opt)

        prompt = corpus.sample(4, 1)
        out = generate(model, prompt, new_tokens=16)
        argmax_next = corpus.transitions.argmax(axis=1)
        hits = sum(
            1
            for t in range(4, out.shape[0] - 1)
            if out[t + 1, 0] == argmax_next[out[t, 0]]
        )
        total = out.shape[0] - 5
        assert hits / total > 0.5, f"only {hits}/{total} argmax transitions"

    def test_perplexity_drops_with_training(self):
        corpus = MarkovCorpus(vocab_size=16, concentration=0.05, seed=2)
        model = make_model(vocab_size=16, hidden_size=32, num_layers=2, max_seq=32)
        eval_batch = corpus.sample(24, 8)
        before = perplexity(model, eval_batch)
        opt = Adam(parameter_registry(model), lr=3e-3, clip=1.0)
        train(model, corpus.batches(24, 16, steps=30), opt)
        after = perplexity(model, eval_batch)
        assert after < 0.6 * before
