"""Tests for FlashAttention: algorithmic equivalence and perf model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.transformer.flash import FlashAttentionModel, flash_attention


def naive_attention(q, k, v, causal=True):
    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = np.matmul(q, k.transpose(0, 2, 1)) * scale
    if causal:
        s = q.shape[1]
        mask = np.triu(np.ones((s, s), dtype=bool), 1)
        scores = np.where(mask[None], -np.inf, scores)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    p = np.exp(shifted)
    p /= p.sum(axis=-1, keepdims=True)
    return np.matmul(p, v)


class TestAlgorithm:
    @pytest.mark.parametrize("causal", [True, False])
    @pytest.mark.parametrize("block", [4, 8, 32, 100])
    def test_matches_naive(self, rng, causal, block):
        q, k, v = (rng.normal(size=(3, 32, 8)) for _ in range(3))
        out = flash_attention(q, k, v, causal=causal, block_q=block, block_k=block)
        np.testing.assert_allclose(out, naive_attention(q, k, v, causal), rtol=1e-9)

    def test_asymmetric_blocks(self, rng):
        q, k, v = (rng.normal(size=(2, 24, 4)) for _ in range(3))
        out = flash_attention(q, k, v, block_q=8, block_k=16)
        np.testing.assert_allclose(out, naive_attention(q, k, v), rtol=1e-9)

    def test_sequence_not_multiple_of_block(self, rng):
        q, k, v = (rng.normal(size=(1, 17, 4)) for _ in range(3))
        out = flash_attention(q, k, v, block_q=8, block_k=8)
        np.testing.assert_allclose(out, naive_attention(q, k, v), rtol=1e-9)

    def test_mismatched_shapes_raise(self, rng):
        q = rng.normal(size=(2, 8, 4))
        k = rng.normal(size=(2, 8, 8))
        with pytest.raises(ShapeError):
            flash_attention(q, k, k)

    def test_bad_block_size_raises(self, rng):
        q = rng.normal(size=(1, 8, 4))
        with pytest.raises(ShapeError):
            flash_attention(q, q, q, block_q=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=33),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_equivalence(self, batch, s, d, seed):
        rng = np.random.default_rng(seed)
        q, k, v = (rng.normal(size=(batch, s, d)) for _ in range(3))
        out = flash_attention(q, k, v, block_q=8, block_k=8)
        np.testing.assert_allclose(out, naive_attention(q, k, v), rtol=1e-8, atol=1e-12)


class TestPerfModel:
    def test_roofline_shape(self):
        # Fig 12: throughput rises with head dim then saturates.
        model = FlashAttentionModel("A100")
        tputs = [model.tflops(512, 2048, d) for d in (8, 16, 32, 64, 128, 160)]
        assert tputs == sorted(tputs)
        assert tputs[-1] == pytest.approx(tputs[-2], rel=0.25)

    def test_insensitive_to_pow2_of_head_dim(self):
        # The fused kernel pads internally: d=80 vs d=96 vs d=64 show no
        # pow-2 ordering, unlike the unfused BMMs.
        model = FlashAttentionModel("A100")
        t80 = model.tflops(512, 2048, 80)
        t64 = model.tflops(512, 2048, 64)
        assert t80 > t64  # strictly more work per byte, no alignment cliff

    def test_causal_halves_flops(self):
        model = FlashAttentionModel("A100")
        causal = model.evaluate(8, 1024, 64, causal=True)
        full = model.evaluate(8, 1024, 64, causal=False)
        # s^2 vs s(s+1)/2 attended pairs: ratio 2s/(s+1).
        assert full.flops == pytest.approx(2 * causal.flops, rel=2e-3)

    def test_memory_floor_for_tiny_seq(self):
        model = FlashAttentionModel("A100")
        perf = model.evaluate(1, 32, 64)
        assert perf.bound == "memory"

    def test_large_seq_compute_bound(self):
        model = FlashAttentionModel("A100")
        perf = model.evaluate(128, 4096, 128)
        assert perf.bound == "compute"

    def test_nonpositive_raises(self):
        model = FlashAttentionModel("A100")
        with pytest.raises(ShapeError):
            model.evaluate(0, 128, 64)

    def test_faster_than_unfused_path(self):
        # The reason FlashAttention is recommended for small models: it
        # removes the memory-bound score materialization.
        from repro.gpu.bmm_model import BmmModel

        flash = FlashAttentionModel("A100")
        bmm = BmmModel("A100")
        b, s, h, a = 4, 2048, 2560, 32
        unfused = bmm.latency(BmmModel.attention_score_shape(b, s, h, a)) + bmm.latency(
            BmmModel.attention_over_value_shape(b, s, h, a)
        )
        fused = flash.latency(b * a, s, h // a)
        assert fused < unfused
