"""Tests for the transformer block (sequential and parallel layouts)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.transformer.block import TransformerBlock
from repro.transformer.trace import OpTrace


def make_block(rng, **kw):
    return TransformerBlock(32, 4, rng, **kw)


class TestConstruction:
    def test_param_count_matches_paper_per_layer_terms(self, rng):
        # Per layer: 12h^2 + 13h (Sec III-C).
        h = 32
        block = make_block(rng)
        assert block.param_count() == 12 * h * h + 13 * h

    def test_unknown_mlp_kind_raises(self, rng):
        with pytest.raises(ConfigError):
            make_block(rng, mlp_kind="geglu")

    def test_swiglu_block(self, rng):
        block = make_block(rng, mlp_kind="swiglu", intermediate_size=64)
        assert block.mlp.n_matrices == 3


class TestForward:
    def test_shape_preserved(self, rng):
        block = make_block(rng)
        x = rng.normal(size=(8, 2, 32))
        assert block.forward(x, OpTrace()).shape == x.shape

    def test_bad_shape_raises(self, rng):
        block = make_block(rng)
        with pytest.raises(ShapeError):
            block.forward(rng.normal(size=(8, 2, 31)), OpTrace())

    def test_residual_path_exists(self, rng):
        # With zeroed sublayer outputs the block must be the identity;
        # approximate by checking output correlates strongly with input.
        block = make_block(rng)
        x = rng.normal(size=(8, 2, 32))
        out = block.forward(x, OpTrace())
        corr = np.corrcoef(x.ravel(), out.ravel())[0, 1]
        assert corr > 0.5


class TestParallelLayers:
    def test_same_gemm_shapes_as_sequential(self, rng):
        # Sec VI-C1: parallel layers do "not impact our analysis at all".
        x = rng.normal(size=(8, 2, 32))
        seq_trace, par_trace = OpTrace(), OpTrace()
        make_block(np.random.default_rng(1)).forward(x, seq_trace)
        make_block(np.random.default_rng(1), parallel_layers=True).forward(x, par_trace)
        assert [r.shape_tuple() for r in seq_trace] == [
            r.shape_tuple() for r in par_trace
        ]
        assert [r.module for r in seq_trace] == [r.module for r in par_trace]

    def test_outputs_differ_numerically(self, rng):
        # Same weights, different dataflow -> different activations.
        x = rng.normal(size=(8, 2, 32))
        seq = make_block(np.random.default_rng(1)).forward(x, OpTrace())
        par = make_block(np.random.default_rng(1), parallel_layers=True).forward(
            x, OpTrace()
        )
        assert not np.allclose(seq, par)

    def test_causality_preserved(self, rng):
        block = make_block(rng, parallel_layers=True)
        x = rng.normal(size=(8, 1, 32))
        base = block.forward(x, OpTrace())
        x2 = x.copy()
        x2[6] += 3.0
        out = block.forward(x2, OpTrace())
        np.testing.assert_allclose(out[:6], base[:6], rtol=1e-10)
