"""Tests for the classic and SwiGLU MLP blocks."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.transformer.mlp import MLP, SwiGLUMLP
from repro.transformer.trace import OpTrace


class TestClassicMLP:
    def test_default_intermediate_is_4h(self, rng):
        mlp = MLP(32, rng)
        assert mlp.d_ff == 128

    def test_param_count(self, rng):
        h, d = 32, 128
        mlp = MLP(h, rng)
        assert mlp.param_count() == 2 * h * d + d + h

    def test_forward_shape(self, rng):
        mlp = MLP(32, rng)
        x = rng.normal(size=(8, 2, 32))
        assert mlp.forward(x, OpTrace()).shape == x.shape

    def test_traced_shapes(self, rng):
        s, b, h = 8, 2, 32
        mlp = MLP(h, rng)
        trace = OpTrace()
        mlp.forward(rng.normal(size=(s, b, h)), trace)
        shapes = {r.module: r.shape_tuple() for r in trace}
        assert shapes["mlp_h_to_4h"] == (1, s * b, h, 4 * h)
        assert shapes["mlp_4h_to_h"] == (1, s * b, 4 * h, h)

    def test_custom_intermediate(self, rng):
        mlp = MLP(32, rng, intermediate_size=96)
        assert mlp.d_ff == 96

    def test_bad_activation_raises(self, rng):
        with pytest.raises(ConfigError):
            MLP(32, rng, activation="swish2")

    def test_tp_indivisible_raises(self, rng):
        with pytest.raises(ConfigError):
            MLP(32, rng, intermediate_size=100, tp_degree=3)

    def test_bad_input_raises(self, rng):
        mlp = MLP(32, rng)
        with pytest.raises(ShapeError):
            mlp.forward(rng.normal(size=(8, 2, 16)), OpTrace())

    def test_tp_equivalence(self, rng):
        h = 32
        one = MLP(h, np.random.default_rng(3), tp_degree=1)
        two = MLP(h, np.random.default_rng(3), tp_degree=2)
        shard = one.d_ff // 2
        for i in range(2):
            two.w1[i] = one.w1[0][:, i * shard : (i + 1) * shard]
            two.b1[i] = one.b1[0][i * shard : (i + 1) * shard]
            two.w2[i] = one.w2[0][i * shard : (i + 1) * shard]
        two.b2 = one.b2
        x = rng.normal(size=(4, 2, h))
        np.testing.assert_allclose(
            one.forward(x, OpTrace()), two.forward(x, OpTrace()), rtol=1e-10
        )


class TestSwiGLU:
    def test_default_intermediate_is_8h_over_3(self, rng):
        mlp = SwiGLUMLP(48, rng)
        assert mlp.d_ff == 128  # round(8*48/3)

    def test_param_count_three_matrices(self, rng):
        h, d = 32, 96
        mlp = SwiGLUMLP(h, rng, intermediate_size=d)
        assert mlp.param_count() == 3 * h * d
        assert mlp.n_matrices == 3

    def test_traced_shapes(self, rng):
        s, b, h, d = 8, 2, 32, 96
        mlp = SwiGLUMLP(h, rng, intermediate_size=d)
        trace = OpTrace()
        mlp.forward(rng.normal(size=(s, b, h)), trace)
        shapes = {r.module: r.shape_tuple() for r in trace}
        assert shapes["mlp_gate"] == (1, s * b, h, d)
        assert shapes["mlp_up"] == (1, s * b, h, d)
        assert shapes["mlp_down"] == (1, s * b, d, h)

    def test_forward_shape(self, rng):
        mlp = SwiGLUMLP(32, rng, intermediate_size=64)
        x = rng.normal(size=(4, 3, 32))
        assert mlp.forward(x, OpTrace()).shape == x.shape

    def test_gating_nonlinearity(self, rng):
        # SwiGLU is not linear: f(2x) != 2 f(x).
        mlp = SwiGLUMLP(16, rng, intermediate_size=32)
        x = rng.normal(size=(2, 1, 16))
        out1 = mlp.forward(x, OpTrace())
        out2 = mlp.forward(2 * x, OpTrace())
        assert not np.allclose(out2, 2 * out1)

    def test_parameter_parity_with_classic(self, rng):
        # The 8h/3 sizing exists to keep SwiGLU's 3 matrices at the
        # same parameter count as the classic 2 x 4h matrices.
        h = 48
        classic = MLP(h, rng).param_count()
        swiglu = SwiGLUMLP(h, rng).param_count()
        assert swiglu == pytest.approx(classic, rel=0.02)
