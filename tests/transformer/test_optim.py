"""Tests for the optimizers and the end-to-end training loop."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.transformer.backward import loss_and_gradients
from repro.transformer.data import MarkovCorpus
from repro.transformer.model import DecoderModel
from repro.transformer.optim import SGD, Adam, parameter_registry, train


def make_model(seed=0, **kw):
    defaults = dict(
        vocab_size=32,
        max_seq=16,
        hidden_size=24,
        num_heads=4,
        num_layers=1,
        rng=np.random.default_rng(seed),
    )
    defaults.update(kw)
    return DecoderModel(**defaults)


class TestRegistry:
    def test_covers_every_gradient_key(self):
        model = make_model(num_layers=2)
        ids = np.random.default_rng(1).integers(0, 32, size=(16, 2))
        _, grads = loss_and_gradients(model, ids)
        params = parameter_registry(model)
        assert set(grads) == set(params)

    def test_views_not_copies(self):
        model = make_model()
        params = parameter_registry(model)
        params["wte"][0, 0] = 123.0
        assert model.wte[0, 0] == 123.0


class TestSGD:
    def test_step_moves_parameters(self):
        model = make_model()
        ids = np.random.default_rng(1).integers(0, 32, size=(16, 2))
        params = parameter_registry(model)
        before = model.wte.copy()
        _, grads = loss_and_gradients(model, ids)
        SGD(params, lr=0.1).step(grads)
        assert not np.allclose(model.wte, before)

    def test_reduces_loss_on_fixed_batch(self):
        model = make_model()
        ids = np.random.default_rng(2).integers(0, 32, size=(16, 4))
        opt = SGD(parameter_registry(model), lr=0.3)
        first, grads = loss_and_gradients(model, ids)
        for _ in range(8):
            opt.step(grads)
            loss, grads = loss_and_gradients(model, ids)
        assert loss < first

    def test_clipping_bounds_update(self):
        model = make_model()
        params = parameter_registry(model)
        before = {k: v.copy() for k, v in params.items()}
        huge = {k: np.full_like(v, 1e6) for k, v in params.items()}
        SGD(params, lr=1.0, clip=1.0).step(huge)
        total = np.sqrt(
            sum(((params[k] - before[k]) ** 2).sum() for k in params)
        )
        assert total <= 1.0 + 1e-6

    def test_invalid_lr_raises(self):
        with pytest.raises(ConfigError):
            SGD({}, lr=0.0)


class TestAdam:
    def test_reduces_loss_on_fixed_batch(self):
        model = make_model(seed=3)
        ids = np.random.default_rng(4).integers(0, 32, size=(16, 4))
        opt = Adam(parameter_registry(model), lr=1e-2)
        first, grads = loss_and_gradients(model, ids)
        loss = first
        for _ in range(10):
            opt.step(grads)
            loss, grads = loss_and_gradients(model, ids)
        assert loss < 0.8 * first

    def test_bias_correction_first_step(self):
        # With beta-corrected Adam, the very first update has magnitude
        # ~lr regardless of gradient scale.
        params = {"w": np.zeros(4)}
        opt = Adam(params, lr=0.1)
        opt.step({"w": np.full(4, 1e-4)})
        np.testing.assert_allclose(np.abs(params["w"]), 0.1, rtol=1e-3)

    def test_invalid_hyperparams_raise(self):
        with pytest.raises(ConfigError):
            Adam({}, lr=-1.0)
        with pytest.raises(ConfigError):
            Adam({}, beta1=1.0)


class TestTrainLoop:
    def test_learns_markov_chain(self):
        corpus = MarkovCorpus(vocab_size=32, concentration=0.05, seed=0)
        model = make_model(num_layers=2, hidden_size=32)
        opt = Adam(parameter_registry(model), lr=3e-3, clip=1.0)
        final = train(model, corpus.batches(16, 16, steps=40), opt)
        # Initial loss ~ln(32)=3.47; the chain's floor is ~1.2.
        assert final < 2.6

    def test_on_step_callback(self):
        corpus = MarkovCorpus(vocab_size=32, seed=0)
        model = make_model()
        opt = SGD(parameter_registry(model), lr=0.1)
        seen = []
        train(
            model,
            corpus.batches(16, 2, steps=3),
            opt,
            on_step=lambda step, loss: seen.append((step, loss)),
        )
        assert [s for s, _ in seen] == [0, 1, 2]
