"""Interaction matrix: the architectural variants must compose.

GQA x sliding window x positional kind x parallel layers x TP — each
pairwise-reasonable combination must produce a causal, finite forward
pass with the expected traced shapes.  This is where composition bugs
(e.g. GQA expansion fighting the window mask) would surface.
"""

import numpy as np
import pytest

from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace

H, A, S, B, V = 32, 4, 12, 2, 64

VARIANTS = {
    "gqa": dict(num_kv_heads=2),
    "mqa": dict(num_kv_heads=1),
    "window": dict(attention_window=3),
    "rotary": dict(positional="rotary"),
    "alibi": dict(positional="alibi"),
    "parallel": dict(parallel_layers=True),
    "swiglu": dict(mlp_kind="swiglu", intermediate_size=96),
    "tp2": dict(tp_degree=2),
    "gqa+window": dict(num_kv_heads=2, attention_window=3),
    "gqa+rotary": dict(num_kv_heads=2, positional="rotary"),
    "gqa+tp2": dict(num_kv_heads=2, tp_degree=2),
    "window+rotary": dict(attention_window=3, positional="rotary"),
    "window+alibi": dict(attention_window=3, positional="alibi"),
    "moe": dict(num_experts=4, moe_top_k=2, intermediate_size=64),
    "moe+swiglu": dict(
        num_experts=4, moe_top_k=2, mlp_kind="swiglu", intermediate_size=64
    ),
    "moe+gqa+window": dict(
        num_experts=4,
        moe_top_k=1,
        num_kv_heads=2,
        attention_window=3,
        intermediate_size=64,
    ),
    "everything": dict(
        num_kv_heads=2,
        attention_window=3,
        positional="rotary",
        parallel_layers=True,
        mlp_kind="swiglu",
        intermediate_size=96,
        tp_degree=2,
    ),
}


def build(**kw):
    return DecoderModel(
        vocab_size=V,
        max_seq=S,
        hidden_size=H,
        num_heads=A,
        num_layers=2,
        rng=np.random.default_rng(0),
        **kw,
    )


@pytest.mark.parametrize("name", sorted(VARIANTS), ids=sorted(VARIANTS))
class TestVariantMatrix:
    def test_forward_finite_and_shaped(self, name, rng):
        model = build(**VARIANTS[name])
        ids = rng.integers(0, V, size=(S, B))
        logits = model.forward(ids, OpTrace())
        assert logits.shape == (S, B, V)
        assert np.all(np.isfinite(logits))

    def test_causality(self, name, rng):
        model = build(**VARIANTS[name])
        ids = rng.integers(0, V, size=(S, 1))
        base = model.forward(ids, OpTrace())
        ids2 = ids.copy()
        ids2[S - 1] = (ids2[S - 1] + 1) % V
        out = model.forward(ids2, OpTrace())
        np.testing.assert_allclose(out[: S - 1], base[: S - 1], rtol=1e-9)

    def test_loss_near_uniform_at_init(self, name, rng):
        model = build(**VARIANTS[name])
        ids = rng.integers(0, V, size=(S, B))
        loss = model.loss(ids)
        assert loss == pytest.approx(np.log(V), rel=0.1)

    def test_param_count_positive_and_stable(self, name):
        a = build(**VARIANTS[name]).param_count()
        b = build(**VARIANTS[name]).param_count()
        assert a == b > 0
