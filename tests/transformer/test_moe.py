"""Tests for the mixture-of-experts substrate."""

import numpy as np
import pytest

from repro.core.config import TransformerConfig, get_model
from repro.core.gemms import layer_gemms
from repro.core.latency import LayerLatencyModel
from repro.errors import ConfigError
from repro.transformer.moe import MoEMLP
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace

H, E, K = 32, 4, 2


def make_moe(rng, top_k=K, expert_kind="swiglu", d_ff=64, num_experts=E):
    return MoEMLP(
        H,
        rng,
        num_experts=num_experts,
        top_k=top_k,
        intermediate_size=d_ff,
        expert_kind=expert_kind,
    )


class TestConstruction:
    def test_param_count(self, rng):
        moe = make_moe(rng)
        # Router h*E + E SwiGLU experts of 3*h*d_ff each.
        assert moe.param_count() == H * E + E * 3 * H * 64

    def test_classic_experts(self, rng):
        moe = make_moe(rng, expert_kind="classic")
        assert moe.n_matrices == 2

    def test_invalid_args_raise(self, rng):
        with pytest.raises(ConfigError):
            make_moe(rng, num_experts=1)
        with pytest.raises(ConfigError):
            make_moe(rng, top_k=5)
        with pytest.raises(ConfigError):
            MoEMLP(H, rng, num_experts=4, expert_kind="dense")


class TestForward:
    def test_shape_and_finite(self, rng):
        moe = make_moe(rng)
        x = rng.normal(size=(8, 2, H))
        out = moe.forward(x, OpTrace())
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))

    def test_routed_token_conservation(self, rng):
        """Expert GEMM rows must sum to exactly tokens * top_k."""
        moe = make_moe(rng)
        trace = OpTrace()
        s, b = 16, 3
        moe.forward(rng.normal(size=(s, b, H)), trace)
        gate_rows = sum(r.m for r in trace if r.module == "moe_mlp_gate")
        assert gate_rows == s * b * K

    def test_router_gemm_traced(self, rng):
        moe = make_moe(rng)
        trace = OpTrace()
        moe.forward(rng.normal(size=(8, 2, H)), trace)
        router = [r for r in trace if r.module == "moe_router"]
        assert len(router) == 1
        assert router[0].shape_tuple() == (1, 16, H, E)

    def test_top1_equals_single_expert_on_winner_tokens(self, rng):
        """With k=1 each token's output is exactly its expert's output."""
        moe = make_moe(np.random.default_rng(0), top_k=1)
        x = rng.normal(size=(6, 1, H))
        out = moe.forward(x, OpTrace()).reshape(6, H)
        x2 = x.reshape(6, H)
        winners = (x2 @ moe.router).argmax(axis=-1)
        for i in range(6):
            expert_out = moe.experts[winners[i]].forward(
                x2[i][None, None, :], OpTrace()
            ).reshape(H)
            np.testing.assert_allclose(out[i], expert_out, rtol=1e-10)

    def test_combination_weights_convex(self, rng):
        """If every expert were the identity, the MoE output would be x
        (weights sum to 1)."""
        moe = make_moe(np.random.default_rng(1), expert_kind="classic")
        # Force identity experts: w1 @ w2 = I with zero biases and a
        # linear region — easier: make all experts identical; then the
        # output equals that single expert's output regardless of
        # routing, because the combination weights sum to one.
        for e in moe.experts[1:]:
            e.w1[0][...] = moe.experts[0].w1[0]
            e.b1[0][...] = moe.experts[0].b1[0]
            e.w2[0][...] = moe.experts[0].w2[0]
            e.b2[...] = moe.experts[0].b2
        x = rng.normal(size=(5, 2, H))
        out = moe.forward(x, OpTrace())
        ref = moe.experts[0].forward(x, OpTrace())
        np.testing.assert_allclose(out, ref, rtol=1e-10)


class TestFullModel:
    def test_moe_model_trains_signal(self, rng):
        model = DecoderModel(
            vocab_size=64,
            max_seq=8,
            hidden_size=H,
            num_heads=4,
            num_layers=2,
            num_experts=E,
            moe_top_k=K,
            rng=rng,
        )
        ids = rng.integers(0, 64, size=(8, 2))
        loss = model.loss(ids)
        assert np.isfinite(loss)
        assert loss == pytest.approx(np.log(64), rel=0.1)

    def test_param_count_matches_formula(self, rng):
        cfg = TransformerConfig(
            name="moe",
            hidden_size=H,
            num_heads=4,
            num_layers=2,
            vocab_size=64,
            seq_len=8,
            mlp_kind="swiglu",
            intermediate_size=64,
            num_experts=E,
            moe_top_k=K,
        )
        model = DecoderModel(
            vocab_size=64,
            max_seq=8,
            hidden_size=H,
            num_heads=4,
            num_layers=2,
            mlp_kind="swiglu",
            intermediate_size=64,
            num_experts=E,
            moe_top_k=K,
            rng=rng,
        )
        assert cfg.param_count() == model.param_count(include_final_norm=False)


class TestAnalyticMapping:
    def test_layer_gemms_moe_branch(self):
        cfg = get_model("mixtral-8x7b", microbatch=1)
        ops = {op.module: op for op in layer_gemms(cfg)}
        assert ops["moe_router"].n == 8
        assert ops["moe_mlp_gate"].batch == 8
        assert ops["moe_mlp_gate"].m == cfg.tokens_per_expert
        assert "mlp_gate" not in ops

    def test_tokens_per_expert(self):
        cfg = get_model("mixtral-8x7b", microbatch=1)  # 8192 tokens, k=2, E=8
        assert cfg.tokens_per_expert == 8192 * 2 // 8

    def test_moe_flops_exceed_dense_trunk(self):
        cfg = get_model("mixtral-8x7b", microbatch=1)
        dense = cfg.with_overrides(num_experts=None)
        moe_flops = sum(op.flops for op in layer_gemms(cfg))
        dense_flops = sum(op.flops for op in layer_gemms(dense))
        # top-2 routing runs ~2x the dense MLP FLOPs.
        assert moe_flops > 1.5 * dense_flops

    def test_latency_model_handles_moe(self):
        cfg = get_model("mixtral-8x7b", microbatch=1)
        bd = LayerLatencyModel("A100-80GB").layer_breakdown(cfg)
        assert "moe_mlp_gate" in bd.components
        assert "moe_dispatch" in bd.components
        assert bd.total_s > 0

    def test_mixtral_params(self):
        assert get_model("mixtral-8x7b").param_count() == pytest.approx(
            46.6e9, rel=0.01
        )

    def test_rules_flag_small_expert_batches(self):
        from repro.core.rules import RuleEngine, Severity

        tiny = get_model("mixtral-8x7b", microbatch=1, seq_len=512)
        diags = [
            d for d in RuleEngine("A100").check(tiny) if d.rule == "moe_tokens"
        ]
        assert diags and diags[0].severity == Severity.WARNING

    def test_invalid_moe_config_rejected(self):
        with pytest.raises(ConfigError):
            TransformerConfig(
                name="x", hidden_size=64, num_heads=4, num_layers=1, num_experts=1
            )
        with pytest.raises(ConfigError):
            TransformerConfig(
                name="x",
                hidden_size=64,
                num_heads=4,
                num_layers=1,
                num_experts=4,
                moe_top_k=8,
            )
