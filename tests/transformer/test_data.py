"""Tests for the synthetic corpora."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.transformer.data import CopyCorpus, MarkovCorpus


class TestMarkovCorpus:
    def test_tokens_in_range(self):
        corpus = MarkovCorpus(vocab_size=16)
        ids = corpus.sample(seq_len=64, batch=4)
        assert ids.shape == (64, 4)
        assert ids.min() >= 0 and ids.max() < 16

    def test_transition_rows_are_distributions(self):
        corpus = MarkovCorpus(vocab_size=16)
        np.testing.assert_allclose(corpus.transitions.sum(axis=1), 1.0)
        assert np.all(corpus.transitions >= 0)

    def test_stationary_distribution(self):
        corpus = MarkovCorpus(vocab_size=8, seed=3)
        pi = corpus.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(pi @ corpus.transitions, pi, atol=1e-10)

    def test_conditional_entropy_bounds(self):
        corpus = MarkovCorpus(vocab_size=16, concentration=0.05)
        h = corpus.conditional_entropy()
        assert 0.0 < h < np.log(16)

    def test_concentration_controls_entropy(self):
        peaky = MarkovCorpus(vocab_size=16, concentration=0.02).conditional_entropy()
        flat = MarkovCorpus(vocab_size=16, concentration=20.0).conditional_entropy()
        assert peaky < flat

    def test_empirical_transitions_match(self):
        # Long sample's bigram statistics should approximate the chain.
        corpus = MarkovCorpus(vocab_size=4, concentration=0.5, seed=7)
        ids = corpus.sample(seq_len=20000, batch=1)[:, 0]
        counts = np.zeros((4, 4))
        np.add.at(counts, (ids[:-1], ids[1:]), 1)
        empirical = counts / counts.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(empirical, corpus.transitions, atol=0.05)

    def test_batches_iterator(self):
        corpus = MarkovCorpus(vocab_size=8)
        batches = list(corpus.batches(seq_len=8, batch=2, steps=3))
        assert len(batches) == 3
        assert all(b.shape == (8, 2) for b in batches)

    def test_invalid_args_raise(self):
        with pytest.raises(ConfigError):
            MarkovCorpus(vocab_size=1)
        with pytest.raises(ConfigError):
            MarkovCorpus(vocab_size=8, concentration=0.0)
        with pytest.raises(ConfigError):
            MarkovCorpus(vocab_size=8).sample(0, 1)


class TestCopyCorpus:
    def test_structure(self):
        corpus = CopyCorpus(vocab_size=16, pattern_len=5)
        ids = corpus.sample(batch=3)
        assert ids.shape == (11, 3)
        np.testing.assert_array_equal(ids[:5], ids[6:])
        assert np.all(ids[5] == 15)  # delimiter row

    def test_pattern_avoids_delimiter(self):
        corpus = CopyCorpus(vocab_size=8, pattern_len=64)
        ids = corpus.sample(batch=8)
        assert np.all(ids[:64] < 7)

    def test_copy_positions(self):
        corpus = CopyCorpus(vocab_size=8, pattern_len=4)
        lo, hi = corpus.copy_positions()
        assert (lo, hi) == (5, 9)

    def test_invalid_args_raise(self):
        with pytest.raises(ConfigError):
            CopyCorpus(vocab_size=2, pattern_len=4)
        with pytest.raises(ConfigError):
            CopyCorpus(vocab_size=8, pattern_len=0)
