"""Tests for the trace's mechanical backward/optimizer derivation.

The estimator never executes a backward pass; it derives one from the
forward records. These tests pin that derivation against the analytic
mapping AND against the actually-traced NumPy backward.
"""

import numpy as np
import pytest

from repro.core.config import TransformerConfig
from repro.core.gemms import backward_gemms_for, training_gemms
from repro.errors import ShapeError
from repro.transformer.backward import loss_and_gradients
from repro.transformer.model import DecoderModel
from repro.transformer.trace import (
    ADAM_FLOPS_PER_PARAM,
    BACKWARD_SUFFIXES,
    MatmulRecord,
    OpTrace,
)


@pytest.fixture(scope="module")
def traced():
    """One traced loss+gradients run on a tiny model."""
    model = DecoderModel(
        vocab_size=64,
        max_seq=8,
        hidden_size=16,
        num_heads=2,
        num_layers=2,
        rng=np.random.default_rng(0),
    )
    ids = np.random.default_rng(0).integers(0, 64, size=(8, 2))
    trace = OpTrace()
    loss_and_gradients(model, ids, trace)
    return trace


class TestBackwardPair:
    def test_matches_analytic_mapping(self):
        """backward_pair agrees with core.gemms.backward_gemms_for on
        every forward op of a real config: same labels, same shapes."""
        cfg = TransformerConfig(
            name="t", hidden_size=256, num_heads=4, num_layers=3, vocab_size=512
        )
        for op in training_gemms(cfg):
            if op.module.endswith(BACKWARD_SUFFIXES):
                continue
            rec = MatmulRecord(
                module=op.module, m=op.m, k=op.k, n=op.n, batch=op.batch
            )
            want = [(b.module, b.shape_tuple()) for b in backward_gemms_for(op)]
            got = [(b.module, b.shape_tuple()) for b in rec.backward_pair()]
            assert sorted(got) == sorted(want)

    def test_each_half_costs_exactly_forward(self):
        rec = MatmulRecord(module="mlp_h_to_4h", m=8192, k=2560, n=10240)
        dgrad, wgrad = rec.backward_pair()
        assert dgrad.flops == rec.flops
        assert wgrad.flops == rec.flops
        assert dgrad.module == "mlp_h_to_4h.dgrad"
        assert wgrad.module == "mlp_h_to_4h.wgrad"
        assert dgrad.base_module == wgrad.base_module == "mlp_h_to_4h"
        assert dgrad.phase == wgrad.phase == "backward"

    def test_bmm_pair_keeps_batch(self):
        rec = MatmulRecord(module="attention_score", m=8, k=64, n=8, batch=32)
        for b in rec.backward_pair():
            assert b.batch == 32
            assert b.flops == rec.flops


class TestDerivedVsTraced:
    def test_derived_multiset_equals_traced_backward(self, traced):
        """The mechanical derivation reproduces the backward GEMMs the
        real NumPy backward actually executed — label for label."""
        fwd_only = OpTrace()
        fwd_only.records = [r for r in traced if r.phase == "forward"]
        got = sorted((r.module, r.shape_tuple()) for r in fwd_only.backward_records())
        want = sorted(
            (r.module, r.shape_tuple()) for r in traced if r.phase == "backward"
        )
        assert got == want

    def test_reverse_execution_order(self, traced):
        fwd_only = OpTrace()
        fwd_only.records = [r for r in traced if r.phase == "forward"]
        derived = fwd_only.backward_records()
        # Backprop visits the last forward module first.
        assert derived[0].base_module == fwd_only.records[-1].module
        assert derived[-1].base_module == fwd_only.records[0].module

    def test_backward_records_skip_backward_input(self, traced):
        """Expanding a full-step trace must not derive 2nd-order terms."""
        derived = traced.backward_records()
        fwd_count = sum(1 for r in traced if r.phase == "forward")
        assert len(derived) == 2 * fwd_count
        assert all(r.phase == "backward" for r in derived)

    def test_backward_flops_exactly_double(self, traced):
        fwd_only = OpTrace()
        fwd_only.records = [r for r in traced if r.phase == "forward"]
        assert fwd_only.backward_flops() == 2 * fwd_only.flops()


class TestOptimizerAndColumns:
    def test_optimizer_flops(self, traced):
        assert traced.optimizer_flops(1000) == 1000 * ADAM_FLOPS_PER_PARAM
        assert traced.optimizer_flops(0) == 0
        with pytest.raises(ShapeError):
            traced.optimizer_flops(-1)

    def test_training_flops_decompose(self, traced):
        fwd_only = OpTrace()
        fwd_only.records = [r for r in traced if r.phase == "forward"]
        total = fwd_only.training_flops(12345)
        assert total == (
            fwd_only.flops()
            + fwd_only.backward_flops()
            + 12345 * ADAM_FLOPS_PER_PARAM
        )

    def test_training_columns_phases(self, traced):
        fwd_only = OpTrace()
        fwd_only.records = [r for r in traced if r.phase == "forward"]
        cols = fwd_only.training_columns()
        n_fwd = len(fwd_only.records)
        assert cols["shape"].shape == (3 * n_fwd, 4)
        assert list(cols["phase"][:n_fwd]) == ["forward"] * n_fwd
        assert list(cols["phase"][n_fwd:]) == ["backward"] * (2 * n_fwd)
        assert cols["module"][n_fwd].endswith(BACKWARD_SUFFIXES)
