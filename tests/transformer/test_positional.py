"""Tests for positional embedding variants (Sec VI-C2)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.transformer import positional as pos


class TestLearned:
    def test_shape(self, rng):
        table = pos.learned_positions(16, 32, rng)
        assert table.shape == (16, 32)

    def test_nonpositive_raises(self, rng):
        with pytest.raises(ShapeError):
            pos.learned_positions(0, 32, rng)


class TestRotary:
    def test_frequencies_shape_and_range(self):
        freqs = pos.rotary_frequencies(64)
        assert freqs.shape == (32,)
        assert freqs[0] == 1.0
        assert np.all(np.diff(freqs) < 0)

    def test_odd_dim_raises(self):
        with pytest.raises(ShapeError):
            pos.rotary_frequencies(7)

    def test_rotation_preserves_pair_norms(self, rng):
        x = rng.normal(size=(3, 8, 16))
        out = pos.apply_rotary(x, np.arange(8))
        norm_in = x[..., 0::2] ** 2 + x[..., 1::2] ** 2
        norm_out = out[..., 0::2] ** 2 + out[..., 1::2] ** 2
        np.testing.assert_allclose(norm_in, norm_out, rtol=1e-10)

    def test_position_zero_is_identity(self, rng):
        x = rng.normal(size=(2, 1, 8))
        out = pos.apply_rotary(x, np.array([0]))
        np.testing.assert_allclose(out, x)

    def test_relative_property(self, rng):
        # Rotary's defining property: <q_m, k_n> depends only on m - n.
        d = 16
        q = rng.normal(size=(1, 1, d))
        k = rng.normal(size=(1, 1, d))

        def dot_at(m, n):
            qm = pos.apply_rotary(q, np.array([m]))[0, 0]
            kn = pos.apply_rotary(k, np.array([n]))[0, 0]
            return float(qm @ kn)

        assert dot_at(5, 3) == pytest.approx(dot_at(12, 10), rel=1e-9)
        assert dot_at(7, 0) == pytest.approx(dot_at(17, 10), rel=1e-9)

    def test_positions_shape_mismatch_raises(self, rng):
        x = rng.normal(size=(2, 8, 16))
        with pytest.raises(ShapeError):
            pos.apply_rotary(x, np.arange(9))


class TestAlibi:
    def test_slopes_power_of_two_heads(self):
        slopes = pos.alibi_slopes(8)
        assert slopes.shape == (8,)
        # Geometric: ratio constant.
        ratios = slopes[1:] / slopes[:-1]
        np.testing.assert_allclose(ratios, ratios[0])
        assert np.all(slopes > 0) and np.all(slopes < 1)

    def test_slopes_non_power_of_two(self):
        slopes = pos.alibi_slopes(12)
        assert slopes.shape == (12,)
        assert np.all(slopes > 0)

    def test_slopes_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            pos.alibi_slopes(0)

    def test_bias_shape_and_sign(self):
        bias = pos.alibi_bias(4, 8)
        assert bias.shape == (4, 8, 8)
        # Diagonal zero, past negative, future clamped to zero (masked
        # separately by causal mask).
        assert np.all(np.diagonal(bias, axis1=1, axis2=2) == 0)
        assert bias[0, 5, 2] < 0
        assert bias[0, 2, 5] == 0

    def test_bias_linear_in_distance(self):
        bias = pos.alibi_bias(1, 16)[0]
        assert bias[10, 7] == pytest.approx(bias[10, 8] * 3 / 2)


class TestValidateKind:
    @pytest.mark.parametrize("kind", ["learned", "rotary", "alibi", "none", " Rotary "])
    def test_accepts_known(self, kind):
        assert pos.validate_kind(kind) in pos.POSITIONAL_KINDS

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            pos.validate_kind("sinusoidal-ish")
