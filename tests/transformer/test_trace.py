"""Tests for the matmul operation tracer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer.trace import MatmulRecord, NullTrace, OpTrace


class TestMatmulRecord:
    def test_flops(self):
        rec = MatmulRecord(module="x", m=4, k=8, n=16, batch=3)
        assert rec.flops == 2 * 3 * 4 * 8 * 16

    def test_is_bmm(self):
        assert MatmulRecord("x", 1, 1, 1, batch=2).is_bmm
        assert not MatmulRecord("x", 1, 1, 1).is_bmm

    def test_shape_tuple(self):
        assert MatmulRecord("x", 4, 8, 16, 2).shape_tuple() == (2, 4, 8, 16)


class TestOpTrace:
    def test_matmul_computes_and_records(self, rng):
        trace = OpTrace()
        x = rng.normal(size=(4, 8))
        w = rng.normal(size=(8, 16))
        out = trace.matmul("fc", x, w)
        np.testing.assert_allclose(out, x @ w)
        assert len(trace) == 1
        assert trace.records[0] == MatmulRecord("fc", 4, 8, 16)

    def test_bmm_computes_and_records(self, rng):
        trace = OpTrace()
        a = rng.normal(size=(3, 4, 8))
        b = rng.normal(size=(3, 8, 16))
        out = trace.bmm("attn", a, b)
        np.testing.assert_allclose(out, np.matmul(a, b))
        assert trace.records[0] == MatmulRecord("attn", 4, 8, 16, batch=3)

    def test_matmul_rejects_3d(self, rng):
        trace = OpTrace()
        with pytest.raises(ShapeError):
            trace.matmul("x", rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5)))

    def test_matmul_rejects_mismatched_inner(self, rng):
        trace = OpTrace()
        with pytest.raises(ShapeError):
            trace.matmul("x", rng.normal(size=(2, 3)), rng.normal(size=(4, 5)))

    def test_bmm_rejects_mismatched_batch(self, rng):
        trace = OpTrace()
        with pytest.raises(ShapeError):
            trace.bmm("x", rng.normal(size=(2, 3, 4)), rng.normal(size=(3, 4, 5)))

    def test_flops_accumulate(self, rng):
        trace = OpTrace()
        trace.matmul("a", rng.normal(size=(2, 3)), rng.normal(size=(3, 4)))
        trace.matmul("b", rng.normal(size=(4, 5)), rng.normal(size=(5, 6)))
        assert trace.flops() == 2 * 2 * 3 * 4 + 2 * 4 * 5 * 6

    def test_by_module_groups_in_order(self, rng):
        trace = OpTrace()
        for name in ("a", "b", "a"):
            trace.matmul(name, rng.normal(size=(2, 3)), rng.normal(size=(3, 4)))
        groups = trace.by_module()
        assert list(groups) == ["a", "b"]
        assert len(groups["a"]) == 2

    def test_modules_first_appearance_order(self, rng):
        trace = OpTrace()
        for name in ("qkv", "score", "qkv"):
            trace.matmul(name, rng.normal(size=(2, 3)), rng.normal(size=(3, 4)))
        assert trace.modules() == ["qkv", "score"]

    def test_clear(self, rng):
        trace = OpTrace()
        trace.matmul("a", rng.normal(size=(2, 3)), rng.normal(size=(3, 4)))
        trace.clear()
        assert len(trace) == 0

    def test_summary_contains_percentages(self, rng):
        trace = OpTrace()
        trace.matmul("alpha", rng.normal(size=(2, 3)), rng.normal(size=(3, 4)))
        text = trace.summary()
        assert "alpha" in text and "%" in text


class TestNullTrace:
    def test_computes_without_recording(self, rng):
        trace = NullTrace()
        x = rng.normal(size=(4, 8))
        w = rng.normal(size=(8, 16))
        np.testing.assert_allclose(trace.matmul("fc", x, w), x @ w)
        a = rng.normal(size=(2, 4, 8))
        b = rng.normal(size=(2, 8, 4))
        np.testing.assert_allclose(trace.bmm("bm", a, b), np.matmul(a, b))
        assert len(trace) == 0
