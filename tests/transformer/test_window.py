"""Tests for sliding-window attention (the Mistral-style variant)."""

import numpy as np
import pytest

from repro.core.config import TransformerConfig, get_model
from repro.errors import ConfigError, ShapeError
from repro.inference.latency import InferenceModel
from repro.transformer import functional as F
from repro.transformer.attention import MultiHeadAttention
from repro.transformer.flash import FlashAttentionModel, sum_attended_pairs
from repro.transformer.trace import OpTrace


class TestMask:
    def test_window_blocks_distant_past(self):
        mask = F.causal_mask(6, window=2)
        assert mask[5, 4] == 0.0 and mask[5, 5] == 0.0
        assert mask[5, 3] == -np.inf
        assert mask[1, 2] == -np.inf  # causal part intact

    def test_window_geq_s_is_plain_causal(self):
        np.testing.assert_array_equal(
            F.causal_mask(8, window=8), F.causal_mask(8)
        )
        np.testing.assert_array_equal(
            F.causal_mask(8, window=100), F.causal_mask(8)
        )

    def test_window_one_is_self_only(self):
        mask = F.causal_mask(4, window=1)
        finite = np.isfinite(mask)
        np.testing.assert_array_equal(finite, np.eye(4, dtype=bool))

    def test_invalid_window_raises(self):
        with pytest.raises(ShapeError):
            F.causal_mask(4, window=0)


class TestAttention:
    def test_distant_token_has_no_influence(self, rng):
        att = MultiHeadAttention(32, 4, rng, attention_window=2)
        x = rng.normal(size=(8, 1, 32))
        base = att.forward(x, OpTrace())
        x2 = x.copy()
        x2[0] += 10.0  # outside every later token's window of 2
        out = att.forward(x2, OpTrace())
        # Positions 2+ never see token 0 (window 2 = self + previous).
        np.testing.assert_allclose(out[2:], base[2:], rtol=1e-10)
        assert not np.allclose(out[:2], base[:2])

    def test_window_geq_s_matches_full(self, rng):
        full = MultiHeadAttention(32, 4, np.random.default_rng(0))
        windowed = MultiHeadAttention(
            32, 4, np.random.default_rng(0), attention_window=64
        )
        x = rng.normal(size=(8, 2, 32))
        np.testing.assert_allclose(
            full.forward(x, OpTrace()), windowed.forward(x, OpTrace())
        )

    def test_gemm_shapes_unchanged(self, rng):
        # The naive path masks post-GEMM, so Table II shapes hold.
        plain, windowed = OpTrace(), OpTrace()
        MultiHeadAttention(32, 4, rng).forward(rng.normal(size=(8, 2, 32)), plain)
        MultiHeadAttention(32, 4, rng, attention_window=3).forward(
            rng.normal(size=(8, 2, 32)), windowed
        )
        assert [r.shape_tuple() for r in plain] == [
            r.shape_tuple() for r in windowed
        ]

    def test_invalid_window_raises(self, rng):
        with pytest.raises(ConfigError):
            MultiHeadAttention(32, 4, rng, attention_window=-1)


class TestPairCount:
    def test_full_causal(self):
        assert sum_attended_pairs(8, 8) == 36  # 8*9/2

    def test_windowed(self):
        # s=8, w=3: 1+2+3+3+3+3+3+3 = 21.
        assert sum_attended_pairs(8, 3) == 21

    def test_window_capped_at_s(self):
        assert sum_attended_pairs(8, 100) == sum_attended_pairs(8, 8)

    def test_invalid_raises(self):
        with pytest.raises(ShapeError):
            sum_attended_pairs(0, 4)


class TestFlashWindow:
    def test_window_reduces_flops(self):
        model = FlashAttentionModel("A100")
        full = model.evaluate(8, 8192, 128)
        windowed = model.evaluate(8, 8192, 128, window=1024)
        assert windowed.flops < full.flops
        assert windowed.latency_s < full.latency_s

    def test_window_flops_exact(self):
        model = FlashAttentionModel("A100")
        perf = model.evaluate(2, 16, 4, window=4)
        assert perf.flops == 4 * 2 * sum_attended_pairs(16, 4) * 4

    def test_invalid_window_raises(self):
        model = FlashAttentionModel("A100")
        with pytest.raises(ShapeError):
            model.evaluate(1, 16, 4, window=0)


class TestConfigAndInference:
    def test_mistral_preset(self):
        cfg = get_model("mistral-7b")
        assert cfg.attention_window == 4096
        assert cfg.kv_heads == 8
        assert cfg.d_ff == 14336
        assert cfg.param_count() == pytest.approx(7.2e9, rel=0.03)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            TransformerConfig(
                name="x",
                hidden_size=64,
                num_heads=4,
                num_layers=1,
                attention_window=0,
            )

    def test_window_caps_decode_kv_cost(self):
        model = InferenceModel("A100-80GB")
        windowed = get_model("mistral-7b", microbatch=1)
        unwindowed = windowed.with_overrides(attention_window=None)
        # Beyond the window, the windowed model's KV cost plateaus.
        w_short = model.decode_step(windowed, 4096).kv_cache_s
        w_long = model.decode_step(windowed, 32768).kv_cache_s
        u_long = model.decode_step(unwindowed, 32768).kv_cache_s
        assert w_long == pytest.approx(w_short)
        assert w_long < u_long / 7
