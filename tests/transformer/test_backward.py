"""Tests for the explicit backward pass: gradcheck + training mapping."""

import numpy as np
import pytest

from repro.core.config import TransformerConfig
from repro.core.gemms import training_gemms
from repro.errors import ConfigError
from repro.transformer.backward import (
    gelu_backward,
    layer_norm_backward,
    layer_norm_forward,
    loss_and_gradients,
    softmax_backward,
)
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace


def make_model(**kw):
    defaults = dict(
        vocab_size=64,
        max_seq=8,
        hidden_size=16,
        num_heads=2,
        num_layers=2,
        rng=np.random.default_rng(0),
    )
    defaults.update(kw)
    return DecoderModel(**defaults)


@pytest.fixture(scope="module")
def run():
    """One traced loss+gradients evaluation, shared across tests."""
    model = make_model()
    ids = np.random.default_rng(0).integers(0, 64, size=(8, 2))
    trace = OpTrace()
    loss, grads = loss_and_gradients(model, ids, trace)
    return model, ids, trace, loss, grads


class TestPrimitives:
    def test_layer_norm_roundtrip_gradcheck(self, rng):
        x = rng.normal(size=(3, 8))
        gamma = rng.normal(1.0, 0.1, size=8)
        beta = rng.normal(size=8)
        dy = rng.normal(size=(3, 8))
        _, cache = layer_norm_forward(x, gamma, beta)
        dx, dgamma, dbeta = layer_norm_backward(cache, dy)

        eps = 1e-6

        def loss_at(xp):
            y, _ = layer_norm_forward(xp, gamma, beta)
            return float((y * dy).sum())

        num = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                xp = x.copy()
                xp[i, j] += eps
                xm = x.copy()
                xm[i, j] -= eps
                num[i, j] = (loss_at(xp) - loss_at(xm)) / (2 * eps)
        np.testing.assert_allclose(dx, num, rtol=1e-5, atol=1e-8)

    def test_gelu_backward_matches_numeric(self, rng):
        from repro.transformer.functional import gelu

        x = rng.normal(size=32)
        dy = rng.normal(size=32)
        eps = 1e-6
        num = (gelu(x + eps) - gelu(x - eps)) / (2 * eps) * dy
        np.testing.assert_allclose(gelu_backward(x, dy), num, rtol=1e-6, atol=1e-9)

    def test_softmax_backward_matches_numeric(self, rng):
        from repro.transformer.functional import softmax

        x = rng.normal(size=(2, 5))
        dy = rng.normal(size=(2, 5))
        probs = softmax(x)
        got = softmax_backward(probs, dy)
        eps = 1e-6
        num = np.zeros_like(x)
        for i in range(2):
            for j in range(5):
                xp = x.copy()
                xp[i, j] += eps
                xm = x.copy()
                xm[i, j] -= eps
                num[i, j] = ((softmax(xp) - softmax(xm)) * dy).sum() / (2 * eps)
        np.testing.assert_allclose(got, num, rtol=1e-5, atol=1e-9)


class TestGradcheck:
    """Analytic gradients vs central finite differences on the real model."""

    PARAMS = [
        ("wte", lambda m: m.wte, (5, 3)),
        ("wpe", lambda m: m.wpe, (2, 7)),
        ("L0.attention.w_qkv", lambda m: m.blocks[0].attention.w_qkv[0], (3, 9)),
        ("L0.attention.b_qkv", lambda m: m.blocks[0].attention.b_qkv[0], (11,)),
        ("L1.attention.w_proj", lambda m: m.blocks[1].attention.w_proj[0], (4, 2)),
        ("L0.attention.b_proj", lambda m: m.blocks[0].attention.b_proj, (1,)),
        ("L0.mlp.w1", lambda m: m.blocks[0].mlp.w1[0], (7, 11)),
        ("L0.mlp.b1", lambda m: m.blocks[0].mlp.b1[0], (9,)),
        ("L1.mlp.w2", lambda m: m.blocks[1].mlp.w2[0], (20, 5)),
        ("L1.mlp.b2", lambda m: m.blocks[1].mlp.b2, (3,)),
        ("lnf_gamma", lambda m: m.lnf_gamma, (4,)),
        ("lnf_beta", lambda m: m.lnf_beta, (0,)),
        ("L0.ln1_gamma", lambda m: m.blocks[0].ln1_gamma, (6,)),
        ("L1.ln2_beta", lambda m: m.blocks[1].ln2_beta, (2,)),
    ]

    @pytest.mark.parametrize("name,getter,idx", PARAMS, ids=[p[0] for p in PARAMS])
    def test_gradcheck(self, run, name, getter, idx):
        model, ids, _, _, grads = run
        arr = getter(model)
        eps = 1e-6
        orig = arr[idx]
        arr[idx] = orig + eps
        lp = model.loss(ids)
        arr[idx] = orig - eps
        lm = model.loss(ids)
        arr[idx] = orig
        numeric = (lp - lm) / (2 * eps)
        assert grads[name][idx] == pytest.approx(numeric, rel=1e-5, abs=1e-9)

    def test_loss_matches_forward_loss(self, run):
        model, ids, _, loss, _ = run
        assert loss == pytest.approx(model.loss(ids))

    def test_gradient_shapes_match_params(self, run):
        model, _, _, _, grads = run
        assert grads["wte"].shape == model.wte.shape
        assert grads["L0.attention.w_qkv"].shape == model.blocks[0].attention.w_qkv[0].shape
        assert grads["L1.mlp.w1"].shape == model.blocks[1].mlp.w1[0].shape


class TestTrainingMapping:
    def test_traced_ops_equal_analytic_training_gemms(self, run):
        _, _, trace, _, _ = run
        cfg = TransformerConfig(
            name="t",
            hidden_size=16,
            num_heads=2,
            num_layers=2,
            vocab_size=64,
            seq_len=8,
            microbatch=2,
        )
        want = sorted((op.module, op.shape_tuple()) for op in training_gemms(cfg))
        got = sorted((r.module, r.shape_tuple()) for r in trace)
        assert want == got

    def test_training_flops_are_3x_forward(self, run):
        _, _, trace, _, _ = run
        fwd = sum(r.flops for r in trace if "." not in r.module)
        bwd = sum(r.flops for r in trace if "." in r.module)
        assert bwd == 2 * fwd

    def test_backward_op_count(self, run):
        _, _, trace, _, _ = run
        # 6 ops/layer x 2 layers + logit = 13 forward; each induces 2.
        assert len(trace) == 13 * 3


class TestRestrictions:
    def test_tp_rejected(self):
        model = make_model(tp_degree=2, num_heads=2)
        ids = np.random.default_rng(0).integers(0, 64, size=(8, 1))
        with pytest.raises(ConfigError, match="tensor-parallel"):
            loss_and_gradients(model, ids)

    def test_untied_rejected(self):
        model = make_model(tie_embeddings=False)
        ids = np.random.default_rng(0).integers(0, 64, size=(8, 1))
        with pytest.raises(ConfigError, match="tied"):
            loss_and_gradients(model, ids)

    def test_rotary_rejected(self):
        model = make_model(positional="rotary")
        ids = np.random.default_rng(0).integers(0, 64, size=(8, 1))
        with pytest.raises(ConfigError, match="positions"):
            loss_and_gradients(model, ids)


class TestTrainingImprovesLoss:
    def test_sgd_steps_reduce_loss(self):
        """End-to-end sanity: a few SGD steps on one batch reduce loss."""
        model = make_model()
        ids = np.random.default_rng(3).integers(0, 64, size=(8, 4))
        first_loss, _ = loss_and_gradients(model, ids)
        lr = 0.5
        applier = {
            "wte": lambda m: m.wte,
            "wpe": lambda m: m.wpe,
            "lnf_gamma": lambda m: m.lnf_gamma,
            "lnf_beta": lambda m: m.lnf_beta,
        }
        for i in range(2):
            applier[f"L{i}.attention.w_qkv"] = lambda m, i=i: m.blocks[i].attention.w_qkv[0]
            applier[f"L{i}.attention.b_qkv"] = lambda m, i=i: m.blocks[i].attention.b_qkv[0]
            applier[f"L{i}.attention.w_proj"] = lambda m, i=i: m.blocks[i].attention.w_proj[0]
            applier[f"L{i}.attention.b_proj"] = lambda m, i=i: m.blocks[i].attention.b_proj
            applier[f"L{i}.mlp.w1"] = lambda m, i=i: m.blocks[i].mlp.w1[0]
            applier[f"L{i}.mlp.b1"] = lambda m, i=i: m.blocks[i].mlp.b1[0]
            applier[f"L{i}.mlp.w2"] = lambda m, i=i: m.blocks[i].mlp.w2[0]
            applier[f"L{i}.mlp.b2"] = lambda m, i=i: m.blocks[i].mlp.b2
            applier[f"L{i}.ln1_gamma"] = lambda m, i=i: m.blocks[i].ln1_gamma
            applier[f"L{i}.ln1_beta"] = lambda m, i=i: m.blocks[i].ln1_beta
            applier[f"L{i}.ln2_gamma"] = lambda m, i=i: m.blocks[i].ln2_gamma
            applier[f"L{i}.ln2_beta"] = lambda m, i=i: m.blocks[i].ln2_beta

        loss = first_loss
        for _ in range(5):
            _, grads = loss_and_gradients(model, ids)
            for name, get in applier.items():
                get(model)[...] -= lr * grads[name]
            loss, _ = loss_and_gradients(model, ids)
        assert loss < first_loss
