"""Tests for the pointwise/normalization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ShapeError
from repro.transformer import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(5, 7))
        out = F.softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_stability_with_large_values(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        out = F.softmax(x)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[0, :2], 0.5, atol=1e-12)

    def test_axis_argument(self, rng):
        x = rng.normal(size=(3, 4))
        out = F.softmax(x, axis=0)
        np.testing.assert_allclose(out.sum(axis=0), 1.0)

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0))

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            (4, 9),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_probability_simplex(self, x):
        out = F.softmax(x)
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestLayerNorm:
    def test_zero_mean_unit_var(self, rng):
        h = 64
        x = rng.normal(3.0, 5.0, size=(4, 2, h))
        out = F.layer_norm(x, np.ones(h), np.zeros(h))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self, rng):
        h = 8
        x = rng.normal(size=(3, h))
        out = F.layer_norm(x, 2.0 * np.ones(h), 3.0 * np.ones(h))
        base = F.layer_norm(x, np.ones(h), np.zeros(h))
        np.testing.assert_allclose(out, 2.0 * base + 3.0)

    def test_shape_mismatch_raises(self, rng):
        x = rng.normal(size=(3, 8))
        with pytest.raises(ShapeError):
            F.layer_norm(x, np.ones(4), np.zeros(8))


class TestActivations:
    def test_gelu_fixed_points(self):
        assert F.gelu(np.array([0.0]))[0] == 0.0
        assert F.gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert F.gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_silu_fixed_points(self):
        assert F.silu(np.array([0.0]))[0] == 0.0
        assert F.silu(np.array([20.0]))[0] == pytest.approx(20.0, rel=1e-6)

    def test_relu(self):
        np.testing.assert_array_equal(
            F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_registry_complete(self):
        assert set(F.ACTIVATIONS) == {"gelu", "silu", "relu"}


class TestCausalMask:
    def test_lower_triangle_passes(self):
        mask = F.causal_mask(4)
        assert mask[2, 1] == 0.0
        assert mask[2, 2] == 0.0

    def test_upper_triangle_blocked(self):
        mask = F.causal_mask(4)
        assert mask[1, 2] == -np.inf
        assert mask[0, 3] == -np.inf

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            F.causal_mask(0)


class TestCrossEntropy:
    def test_uniform_logits_give_log_v(self, rng):
        v = 32
        logits = np.zeros((10, v))
        targets = rng.integers(0, v, size=10)
        assert F.cross_entropy(logits, targets) == pytest.approx(np.log(v))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((4, 8), -100.0)
        targets = np.array([1, 3, 5, 7])
        logits[np.arange(4), targets] = 100.0
        assert F.cross_entropy(logits, targets) == pytest.approx(0.0, abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(np.zeros((4, 8)), np.zeros(5, dtype=int))


class TestEmbeddingLookup:
    def test_gathers_rows(self, rng):
        table = rng.normal(size=(10, 4))
        ids = np.array([[1, 3], [5, 7]])
        out = F.embedding_lookup(table, ids)
        np.testing.assert_array_equal(out[0, 1], table[3])
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self, rng):
        table = rng.normal(size=(10, 4))
        with pytest.raises(ShapeError):
            F.embedding_lookup(table, np.array([10]))
        with pytest.raises(ShapeError):
            F.embedding_lookup(table, np.array([-1]))
