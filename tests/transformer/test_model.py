"""Tests for the full decoder model: the formula ground-truth checks."""

import numpy as np
import pytest

from repro.core import formulas
from repro.errors import ShapeError
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace


def make_model(rng=None, v=128, s=16, h=32, a=4, L=2, **kw):
    return DecoderModel(
        vocab_size=v,
        max_seq=s,
        hidden_size=h,
        num_heads=a,
        num_layers=L,
        rng=rng or np.random.default_rng(0),
        **kw,
    )


class TestParamFormula:
    """The paper's P = 12h^2 L + 13hL + (v+s)h, validated against the
    actual number of weight-array elements."""

    @pytest.mark.parametrize("h,a,L,v,s", [(32, 4, 2, 128, 16), (64, 8, 3, 256, 32)])
    def test_exact_match(self, h, a, L, v, s):
        model = make_model(v=v, s=s, h=h, a=a, L=L)
        expected = formulas.param_count(h, L, v, s)
        # The formula omits only the final layer norm's 2h scalars.
        assert model.param_count(include_final_norm=False) == expected
        assert model.param_count(include_final_norm=True) == expected + 2 * h

    def test_untied_head_adds_hv(self):
        tied = make_model(tie_embeddings=True)
        untied = make_model(tie_embeddings=False)
        assert untied.param_count() - tied.param_count() == 32 * 128

    def test_rotary_drops_position_table(self):
        learned = make_model().param_count()
        rotary = make_model(positional="rotary").param_count()
        assert learned - rotary == 16 * 32  # s*h


class TestForward:
    def test_logits_shape(self, rng):
        model = make_model()
        ids = rng.integers(0, 128, size=(16, 3))
        logits = model.forward(ids, OpTrace())
        assert logits.shape == (16, 3, 128)

    def test_loss_near_log_v_at_init(self, rng):
        model = make_model()
        ids = rng.integers(0, 128, size=(16, 4))
        loss = model.loss(ids)
        assert loss == pytest.approx(np.log(128), rel=0.05)

    def test_sequence_exceeding_table_raises(self, rng):
        model = make_model(s=16)
        with pytest.raises(ShapeError):
            model.forward(rng.integers(0, 128, size=(17, 1)))

    def test_loss_needs_two_tokens(self, rng):
        model = make_model()
        with pytest.raises(ShapeError):
            model.loss(rng.integers(0, 128, size=(1, 1)))

    def test_bad_token_ids_shape_raises(self, rng):
        model = make_model()
        with pytest.raises(ShapeError):
            model.forward(rng.integers(0, 128, size=(16,)))


class TestFlopsFormula:
    """The paper's 24bsh^2 + 4bs^2h per layer, validated against the
    traced matmul FLOPs of the real forward pass."""

    def test_traced_flops_match_formula(self, rng):
        v, s, h, a, L, b = 128, 16, 32, 4, 2, 3
        model = make_model(v=v, s=s, h=h, a=a, L=L)
        trace = OpTrace()
        model.forward(rng.integers(0, v, size=(s, b)), trace)
        expected = formulas.forward_flops_model(b=b, s=s, h=h, L=L, v=v)
        assert trace.flops() == expected

    def test_per_layer_formula_consistency(self):
        b, s, h = 3, 16, 32
        assert formulas.forward_flops_per_layer(b, s, h) == (
            24 * b * s * h * h + 4 * b * s * s * h
        )

    def test_swiglu_flops_match_general_formula(self, rng):
        v, s, h, a, L, b, d = 128, 16, 32, 4, 2, 2, 96
        model = make_model(
            v=v, s=s, h=h, a=a, L=L, mlp_kind="swiglu", intermediate_size=d
        )
        trace = OpTrace()
        model.forward(rng.integers(0, v, size=(s, b)), trace)
        expected = formulas.forward_flops_model(
            b=b, s=s, h=h, L=L, v=v, d_ff=d, mlp_matrices=3
        )
        assert trace.flops() == expected


class TestArchitectureVariants:
    def test_parallel_layers_forward(self, rng):
        model = make_model(parallel_layers=True)
        ids = rng.integers(0, 128, size=(16, 2))
        assert model.forward(ids).shape == (16, 2, 128)

    def test_rotary_model_runs(self, rng):
        model = make_model(positional="rotary", h=32, a=4)
        ids = rng.integers(0, 128, size=(16, 2))
        assert np.isfinite(model.loss(ids))

    def test_tp_model_matches_trace_count(self, rng):
        model = make_model(tp_degree=2)
        trace = OpTrace()
        model.forward(rng.integers(0, 128, size=(16, 2)), trace)
        qkv = [r for r in trace if r.module == "qkv_transform"]
        assert len(qkv) == 2 * 2  # t shards x L layers
