"""Tests for grouped-query attention (the Llama-2-70B extension)."""

import numpy as np
import pytest

from repro.core.config import TransformerConfig, get_model
from repro.core.gemms import layer_gemms
from repro.errors import ConfigError
from repro.transformer.attention import MultiHeadAttention
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace


class TestConstruction:
    def test_kv_equal_heads_is_classic(self, rng):
        classic = MultiHeadAttention(32, 4, np.random.default_rng(0))
        gqa = MultiHeadAttention(32, 4, np.random.default_rng(0), num_kv_heads=4)
        assert gqa.w_qkv[0].shape == classic.w_qkv[0].shape
        assert gqa.param_count() == classic.param_count()

    def test_kv_shrinks_qkv_weight(self, rng):
        gqa = MultiHeadAttention(32, 4, rng, num_kv_heads=2)
        # Q: 32 cols, K and V: 2*8=16 cols each.
        assert gqa.w_qkv[0].shape == (32, 32 + 2 * 16)

    def test_mqa_single_kv_head(self, rng):
        mqa = MultiHeadAttention(32, 4, rng, num_kv_heads=1)
        assert mqa.w_qkv[0].shape == (32, 32 + 2 * 8)

    def test_heads_not_divisible_raises(self, rng):
        with pytest.raises(ConfigError, match="num_kv_heads"):
            MultiHeadAttention(32, 4, rng, num_kv_heads=3)

    def test_kv_not_divisible_by_tp_raises(self, rng):
        with pytest.raises(ConfigError, match="tp_degree"):
            MultiHeadAttention(64, 8, rng, num_kv_heads=2, tp_degree=4)


class TestForward:
    def test_output_shape_and_causality(self, rng):
        att = MultiHeadAttention(32, 4, rng, num_kv_heads=2)
        x = rng.normal(size=(8, 1, 32))
        base = att.forward(x, OpTrace())
        assert base.shape == x.shape
        x2 = x.copy()
        x2[6] += 5.0
        out = att.forward(x2, OpTrace())
        np.testing.assert_allclose(out[:6], base[:6], rtol=1e-10)

    def test_traced_shapes(self, rng):
        s, b, h, a, kv = 8, 2, 32, 4, 2
        att = MultiHeadAttention(h, a, rng, num_kv_heads=kv)
        trace = OpTrace()
        att.forward(rng.normal(size=(s, b, h)), trace)
        shapes = {r.module: r.shape_tuple() for r in trace}
        d = h // a
        # QKV narrows; the BMMs keep the classic b*a batch.
        assert shapes["qkv_transform"] == (1, s * b, h, h + 2 * kv * d)
        assert shapes["attention_score"] == (b * a, s, d, s)
        assert shapes["attention_over_value"] == (b * a, s, s, d)

    def test_gqa_equals_mha_with_replicated_kv(self, rng):
        """GQA with K/V heads copied from an MHA whose KV heads are
        identical within each group must produce identical outputs."""
        s, b, h, a, kv = 8, 2, 32, 4, 2
        d = h // a
        gqa = MultiHeadAttention(h, a, np.random.default_rng(0), num_kv_heads=kv)
        mha = MultiHeadAttention(h, a, np.random.default_rng(1))
        # Build MHA's K and V weights by replicating each GQA kv head
        # across its query group; copy Q and projection verbatim.
        wg = gqa.w_qkv[0]
        q_w = wg[:, : a * d]
        k_w = wg[:, a * d : a * d + kv * d].reshape(h, kv, d)
        v_w = wg[:, a * d + kv * d :].reshape(h, kv, d)
        group = a // kv
        k_full = np.repeat(k_w, group, axis=1).reshape(h, a * d)
        v_full = np.repeat(v_w, group, axis=1).reshape(h, a * d)
        mha.w_qkv[0] = np.concatenate([q_w, k_full, v_full], axis=1)
        mha.b_qkv[0] = np.zeros(3 * h)
        mha.w_proj[0] = gqa.w_proj[0]
        mha.b_proj = gqa.b_proj
        x = rng.normal(size=(s, b, h))
        np.testing.assert_allclose(
            gqa.forward(x, OpTrace()), mha.forward(x, OpTrace()), rtol=1e-10
        )

    def test_full_model_with_gqa_runs(self, rng):
        model = DecoderModel(
            vocab_size=64,
            max_seq=8,
            hidden_size=32,
            num_heads=4,
            num_layers=2,
            num_kv_heads=2,
            rng=rng,
        )
        ids = rng.integers(0, 64, size=(8, 2))
        assert np.isfinite(model.loss(ids))


class TestAnalyticMapping:
    def test_config_kv_properties(self):
        cfg = TransformerConfig(
            name="x", hidden_size=64, num_heads=8, num_layers=1, num_kv_heads=2
        )
        assert cfg.kv_heads == 2
        assert cfg.kv_dim == 16
        default = TransformerConfig(name="y", hidden_size=64, num_heads=8, num_layers=1)
        assert default.kv_heads == 8
        assert default.kv_dim == 64

    def test_invalid_kv_rejected(self):
        with pytest.raises(ConfigError):
            TransformerConfig(
                name="x", hidden_size=64, num_heads=8, num_layers=1, num_kv_heads=3
            )

    def test_layer_gemms_narrow_qkv(self):
        cfg = TransformerConfig(
            name="x",
            hidden_size=64,
            num_heads=8,
            num_layers=1,
            vocab_size=128,
            seq_len=16,
            microbatch=2,
            num_kv_heads=2,
        )
        ops = {op.module: op for op in layer_gemms(cfg)}
        assert ops["qkv_transform"].n == 64 + 2 * 16
        assert ops["attention_score"].batch == 2 * 8  # full query heads

    def test_mapping_matches_traced_model(self, rng):
        cfg = TransformerConfig(
            name="x",
            hidden_size=32,
            num_heads=4,
            num_layers=1,
            vocab_size=64,
            seq_len=8,
            microbatch=2,
            num_kv_heads=2,
        )
        model = DecoderModel(
            vocab_size=64,
            max_seq=8,
            hidden_size=32,
            num_heads=4,
            num_layers=1,
            num_kv_heads=2,
            rng=rng,
        )
        trace = OpTrace()
        model.forward(rng.integers(0, 64, size=(8, 2)), trace)
        want = {(op.module, op.shape_tuple()) for op in layer_gemms(cfg)}
        got = {
            (r.module, r.shape_tuple()) for r in trace if r.module != "logit"
        }
        assert want == got

    def test_param_count_matches_arrays(self, rng):
        cfg = TransformerConfig(
            name="x",
            hidden_size=32,
            num_heads=4,
            num_layers=2,
            vocab_size=64,
            seq_len=8,
            num_kv_heads=2,
        )
        model = DecoderModel(
            vocab_size=64,
            max_seq=8,
            hidden_size=32,
            num_heads=4,
            num_layers=2,
            num_kv_heads=2,
            rng=rng,
        )
        assert cfg.param_count() == model.param_count(include_final_norm=False)


class TestLlama70B:
    def test_registered_with_gqa(self):
        cfg = get_model("llama2-70b")
        assert cfg.kv_heads == 8
        assert cfg.head_dim == 128
        # ~69B parameters with GQA (would be ~79B with full MHA).
        assert cfg.param_count() == pytest.approx(69e9, rel=0.02)

    def test_gqa_shrinks_kv_cache_latency(self):
        from repro.inference.latency import InferenceModel

        model = InferenceModel("A100-80GB")
        gqa = get_model("llama2-70b", microbatch=1)
        mha = gqa.with_overrides(num_kv_heads=64)
        gqa_step = model.decode_step(gqa, context_len=4096)
        mha_step = model.decode_step(mha, context_len=4096)
        assert gqa_step.kv_cache_s == pytest.approx(mha_step.kv_cache_s / 8, rel=0.01)
