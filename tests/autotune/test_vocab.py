"""Tests for vocabulary padding (Fig 20 / nanoGPT trick)."""

import pytest

from repro.autotune.vocab import pad_vocab, vocab_padding_gain
from repro.errors import ConfigError


class TestPadVocab:
    def test_gpt2_case(self):
        # Karpathy's nanoGPT: 50257 -> 50304.
        assert pad_vocab(50257) == 50304

    def test_aligned_identity(self):
        assert pad_vocab(50304) == 50304

    def test_custom_multiple(self):
        assert pad_vocab(100, multiple=128) == 128

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigError):
            pad_vocab(0)
        with pytest.raises(ConfigError):
            pad_vocab(100, multiple=0)


class TestPaddingGain:
    def test_gpt2_padding_speeds_up_logit_gemm(self):
        gain = vocab_padding_gain(v=50257, h=2560, tokens=8192)
        assert gain.padded_v == 50304
        assert gain.extra_tokens == 47
        assert gain.speedup > 1.05

    def test_aligned_vocab_no_change(self):
        gain = vocab_padding_gain(v=50304, h=2560, tokens=8192)
        assert gain.speedup == pytest.approx(1.0)
        assert gain.extra_tokens == 0

    def test_gain_holds_across_gpus(self):
        for gpu in ("V100", "A100", "H100"):
            gain = vocab_padding_gain(v=50257, h=2048, tokens=4096, gpu=gpu)
            assert gain.speedup > 1.0, gpu
