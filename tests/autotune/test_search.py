"""Tests for the generic dimension search."""

import pytest

from repro.autotune.search import SearchResult, result_for, search_dimension
from repro.errors import ConfigError


def parabola(center=100):
    return lambda v: float((v - center) ** 2 + 1)


class TestSearch:
    def test_ranked_ascending_latency(self):
        results = search_dimension(parabola(), 80, 120, step=1)
        lats = [r.latency_s for r in results]
        assert lats == sorted(lats)
        assert results[0].value == 100

    def test_step_grid(self):
        results = search_dimension(parabola(), 80, 120, step=10)
        assert {r.value for r in results} == {80, 90, 100, 110, 120}

    def test_must_include_off_grid(self):
        results = search_dimension(parabola(), 80, 120, step=10, must_include=[97])
        assert any(r.value == 97 for r in results)

    def test_must_include_out_of_range_ignored(self):
        results = search_dimension(parabola(), 80, 120, step=10, must_include=[500])
        assert not any(r.value == 500 for r in results)

    def test_constraint_filters(self):
        results = search_dimension(
            parabola(), 80, 120, constraint=lambda v: v % 2 == 0
        )
        assert all(r.value % 2 == 0 for r in results)

    def test_all_filtered_raises(self):
        with pytest.raises(ConfigError):
            search_dimension(parabola(), 80, 120, constraint=lambda v: False)

    def test_bad_range_raises(self):
        with pytest.raises(ConfigError):
            search_dimension(parabola(), 120, 80)
        with pytest.raises(ConfigError):
            search_dimension(parabola(), 80, 120, step=0)

    def test_ties_broken_by_value(self):
        results = search_dimension(lambda v: 1.0, 1, 5)
        assert [r.value for r in results] == [1, 2, 3, 4, 5]

    def test_equal_latencies_share_rank_and_percentile(self):
        results = search_dimension(lambda v: 1.0, 1, 5)
        assert [r.rank for r in results] == [0] * 5
        assert all(r.percentile == 1.0 for r in results)

    def test_tie_groups_use_competition_ranking(self):
        # parabola around 100: 99 and 101 tie, as do 98 and 102, etc.
        results = search_dimension(parabola(), 98, 102)
        by_value = {r.value: r for r in results}
        assert by_value[99].rank == by_value[101].rank == 1
        assert by_value[99].percentile == by_value[101].percentile
        assert by_value[98].rank == by_value[102].rank == 3
        assert by_value[100].rank == 0

    def test_must_include_on_grid_not_duplicated(self):
        results = search_dimension(parabola(), 80, 120, step=10, must_include=[100, 100])
        assert [r.value for r in results if r.value == 100] == [100]
        assert len(results) == 5

    def test_batch_latency_fn(self):
        seen = {}

        def batch(values):
            seen["values"] = list(values)
            return [parabola()(v) for v in values]

        results = search_dimension(None, 80, 120, step=10, batch_latency_fn=batch)
        assert seen["values"] == [80, 90, 100, 110, 120]
        assert results[0].value == 100

    def test_batch_latency_fn_length_mismatch(self):
        with pytest.raises(ConfigError):
            search_dimension(None, 80, 120, step=10, batch_latency_fn=lambda vs: [1.0])

    def test_no_latency_fn_raises(self):
        with pytest.raises(ConfigError):
            search_dimension(None, 80, 120)

    def test_non_int_bounds_raise(self):
        with pytest.raises(ConfigError, match="lo must be an int"):
            search_dimension(parabola(), 80.0, 120)
        with pytest.raises(ConfigError, match="hi must be an int"):
            search_dimension(parabola(), 80, "120")
        with pytest.raises(ConfigError, match="step must be an int"):
            search_dimension(parabola(), 80, 120, step=1.5)
        with pytest.raises(ConfigError, match="lo must be an int"):
            search_dimension(parabola(), True, 120)

    def test_non_callable_fns_raise(self):
        with pytest.raises(ConfigError, match="latency_fn must be callable"):
            search_dimension("not-a-fn", 80, 120)
        with pytest.raises(ConfigError, match="batch_latency_fn must be callable"):
            search_dimension(None, 80, 120, batch_latency_fn=[1.0])
        with pytest.raises(ConfigError, match="constraint must be callable"):
            search_dimension(parabola(), 80, 120, constraint=2)

    def test_non_int_must_include_raises(self):
        with pytest.raises(ConfigError, match="must_include values must be ints"):
            search_dimension(parabola(), 80, 120, must_include=[100.5])
        with pytest.raises(ConfigError, match="must_include values must be ints"):
            search_dimension(parabola(), 80, 120, must_include=[True])


class TestSearchResult:
    def test_percentile(self):
        # Asymmetric range so the worst candidate (105) is untied.
        results = search_dimension(parabola(), 96, 105)
        best = results[0]
        worst = results[-1]
        assert best.percentile == 1.0
        assert worst.value == 105
        assert worst.percentile == 0.0
        assert best.is_top_decile

    def test_single_candidate_percentile(self):
        res = SearchResult(value=1, latency_s=1.0, rank=0, total=1)
        assert res.percentile == 1.0

    def test_result_for(self):
        results = search_dimension(parabola(), 90, 110)
        assert result_for(results, 100).rank == 0
        with pytest.raises(ConfigError):
            result_for(results, 999)


class TestJournalResume:
    def _journal(self, tmp_path, resume=False):
        from repro.resilience.checkpoint import SweepJournal

        return SweepJournal(
            tmp_path / "search.jsonl", sweep_id="search", resume=resume
        )

    def test_scalar_path_checkpoints_each_candidate(self, tmp_path):
        journal = self._journal(tmp_path)
        calls = []

        def counted(v):
            calls.append(v)
            return parabola()(v)

        search_dimension(counted, 80, 90, journal=journal)
        assert len(calls) == 11
        assert len(journal.completed()) == 11

        # A resumed search with the same journal re-evaluates nothing
        # and still returns the full ranking.
        resumed = self._journal(tmp_path, resume=True)
        calls.clear()
        results = search_dimension(counted, 80, 90, journal=resumed)
        assert calls == []
        assert len(results) == 11
        assert results[0].value == 90  # closest to the parabola center

    def test_partial_journal_evaluates_only_missing(self, tmp_path):
        # Simulate a search killed partway: only some candidates have
        # a checkpoint record.
        journal = self._journal(tmp_path)
        for v in (80, 81, 82):
            journal.record(str(v), "ok", payload={"latency_s": parabola()(v)})
        resumed = self._journal(tmp_path, resume=True)

        calls = []

        def counted(v):
            calls.append(v)
            return parabola()(v)

        results = search_dimension(counted, 80, 90, journal=resumed)
        assert sorted(calls) == list(range(83, 91))
        assert len(results) == 11
        # Restored and fresh latencies rank together seamlessly.
        lats = [r.latency_s for r in results]
        assert lats == sorted(lats)

    def test_batch_path_scores_missing_subset_in_one_call(self, tmp_path):
        journal = self._journal(tmp_path)
        for v in (85, 86):
            journal.record(str(v), "ok", payload={"latency_s": parabola()(v)})
        resumed = self._journal(tmp_path, resume=True)

        batches = []

        def batch_fn(values):
            batches.append(list(values))
            return [parabola()(v) for v in values]

        search_dimension(
            None, 80, 90, batch_latency_fn=batch_fn, journal=resumed
        )
        assert len(batches) == 1
        assert sorted(batches[0]) == [80, 81, 82, 83, 84, 87, 88, 89, 90]
        # The batch path also checkpoints what it evaluated.
        assert len(resumed.completed()) == 11

    def test_foreign_journal_records_reevaluated(self, tmp_path):
        # Torn or foreign entries (non-numeric ids, missing payload)
        # are ignored rather than trusted.
        journal = self._journal(tmp_path)
        journal.record("not-a-number", "ok", payload={"latency_s": 1.0})
        journal.record("85", "ok", payload={})
        resumed = self._journal(tmp_path, resume=True)

        calls = []

        def counted(v):
            calls.append(v)
            return parabola()(v)

        search_dimension(counted, 80, 90, journal=resumed)
        assert 85 in calls  # broken record did not mask the candidate
