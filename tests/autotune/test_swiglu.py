"""Tests for the SwiGLU intermediate-size search (Sec VII-B)."""

import pytest

from repro.autotune.swiglu import (
    LLAMA2_CHOICES,
    candidate_for,
    mlp_block_latency,
    swiglu_intermediate_search,
)
from repro.errors import ConfigError
from repro.gpu.gemm_model import GemmModel


@pytest.fixture(scope="module")
def candidates():
    # step=8 samples every alignment class from pow2=8 up (odd values
    # are hopeless on every count); 11008 and the naive rounding are
    # force-included.
    return swiglu_intermediate_search(
        h=4096, window=0.06, step=8, must_include=[10923]
    )


class TestBlockLatency:
    def test_three_matmuls(self):
        model = GemmModel("A100")
        d = 11008
        lat = mlp_block_latency(4096, d, 8192, model)
        up = model.latency(8192, d, 4096)
        down = model.latency(8192, 4096, d)
        assert lat == pytest.approx(2 * up + down)

    def test_tp_shard(self):
        model = GemmModel("A100")
        full = mlp_block_latency(4096, 11008, 8192, model, tp_degree=1)
        shard = mlp_block_latency(4096, 11008, 8192, model, tp_degree=2)
        assert shard < full

    def test_indivisible_tp_raises(self):
        with pytest.raises(ConfigError):
            mlp_block_latency(4096, 11008, 8192, GemmModel("A100"), tp_degree=3)


class TestLlamaCaseStudy:
    def test_llama2_7b_top_decile(self, candidates):
        # Sec VII-B: 11008 "is indeed one of the best performing sizes
        # in its range".
        llama = candidate_for(candidates, 11008)
        assert llama.percentile >= 0.9

    def test_naive_rounding_much_slower(self, candidates):
        naive = candidate_for(candidates, 10923)  # round(8*4096/3), odd
        llama = candidate_for(candidates, 11008)
        assert naive.latency_s > 1.5 * llama.latency_s

    def test_results_sorted_by_efficiency(self, candidates):
        # Ranking is by per-FLOP latency; percentiles must descend.
        pcts = [c.percentile for c in candidates]
        assert pcts == sorted(pcts, reverse=True)

    def test_top_candidates_well_aligned(self, candidates):
        # Every candidate in the top decile should have a pow-2 factor
        # of at least 64 (the Tensor Core full-alignment grain).
        top = [c for c in candidates if c.percentile >= 0.9]
        assert top and all(c.pow2 >= 64 for c in top)

    def test_coefficient_near_8_thirds(self, candidates):
        llama = candidate_for(candidates, 11008)
        assert llama.coefficient == pytest.approx(8 / 3, rel=0.02)

    def test_llama2_choices_table(self):
        assert LLAMA2_CHOICES[4096] == 11008
        assert LLAMA2_CHOICES[8192] == 28672


class TestValidation:
    def test_bad_window_raises(self):
        with pytest.raises(ConfigError):
            swiglu_intermediate_search(h=4096, window=1.5)

    def test_missing_candidate_raises(self, candidates):
        with pytest.raises(ConfigError):
            candidate_for(candidates, 1)

    def test_describe(self, candidates):
        assert "d_ff=" in candidates[0].describe()
