"""Cross-dtype and cross-architecture paths of the GPU model.

The headline experiments run FP16-on-NVIDIA; these tests pin the other
paths the spec sheets define: TF32/BF16/INT8/FP64 math, the V100's
8-element grain vs A100's 64, and MI250X's CDNA2 rules (32-byte MFMA
grain, matrix FP64).
"""

import pytest

from repro.errors import GPUModelError
from repro.gpu.alignment import dim_efficiency, tensor_core_eligible
from repro.gpu.gemm_model import GemmModel
from repro.gpu.roofline import ridge_intensity
from repro.gpu.specs import get_gpu
from repro.types import DType


class TestTF32:
    def test_tf32_half_of_fp16_peak(self, a100):
        assert a100.matrix_peak_tflops(DType.TF32) == pytest.approx(
            a100.matrix_peak_tflops(DType.FP16) / 2
        )

    def test_tf32_alignment_grain_is_32_elems(self, a100):
        # 128 bytes at 4 bytes/elem.
        assert a100.tc_align_elems(DType.TF32) == 32
        assert dim_efficiency(32, DType.TF32, a100) == 1.0
        assert dim_efficiency(16, DType.TF32, a100) < 1.0

    def test_tf32_gemm_evaluates(self):
        model = GemmModel("A100", dtype=DType.TF32)
        perf = model.evaluate(4096, 4096, 4096)
        assert perf.used_matrix_engine
        assert perf.tflops < get_gpu("A100").matrix_peak_tflops(DType.TF32)


class TestBF16:
    def test_bf16_equals_fp16_on_a100(self):
        fp16 = GemmModel("A100", dtype=DType.FP16).tflops(4096, 4096, 4096)
        bf16 = GemmModel("A100", dtype=DType.BF16).tflops(4096, 4096, 4096)
        assert bf16 == pytest.approx(fp16)

    def test_bf16_vector_fallback_on_v100(self):
        perf = GemmModel("V100", dtype=DType.BF16).evaluate(2048, 2048, 2048)
        assert not perf.used_matrix_engine


class TestINT8:
    def test_int8_double_fp16_peak(self, a100):
        assert a100.matrix_peak_tflops(DType.INT8) == pytest.approx(
            2 * a100.matrix_peak_tflops(DType.FP16)
        )

    def test_int8_alignment_grain_is_128_elems(self, a100):
        assert a100.tc_align_elems(DType.INT8) == 128
        assert dim_efficiency(64, DType.INT8, a100) < 1.0
        assert dim_efficiency(128, DType.INT8, a100) == 1.0

    def test_int8_needs_16_elem_minimum(self, a100):
        # tc_min_bytes = 16 -> 16 INT8 elements.
        assert tensor_core_eligible((128, 128, 16), DType.INT8, a100)
        assert not tensor_core_eligible((128, 128, 8), DType.INT8, a100)

    def test_int8_gemm_faster_than_fp16_when_aligned(self):
        fp16 = GemmModel("A100", dtype=DType.FP16).latency(8192, 8192, 8192)
        int8 = GemmModel("A100", dtype=DType.INT8).latency(8192, 8192, 8192)
        assert int8 < fp16


class TestFP64:
    def test_a100_fp64_tensor_cores(self, a100):
        assert a100.supports_matrix(DType.FP64)
        perf = GemmModel("A100", dtype=DType.FP64).evaluate(4096, 4096, 4096)
        assert perf.used_matrix_engine
        assert perf.tflops <= a100.matrix_peak_tflops(DType.FP64)

    def test_v100_fp64_vector_only(self, v100):
        assert not v100.supports_matrix(DType.FP64)
        perf = GemmModel("V100", dtype=DType.FP64).evaluate(2048, 2048, 2048)
        assert not perf.used_matrix_engine

    def test_fp64_much_slower_than_fp16(self):
        fp16 = GemmModel("A100", dtype=DType.FP16).latency(4096, 4096, 4096)
        fp64 = GemmModel("A100", dtype=DType.FP64).latency(4096, 4096, 4096)
        assert fp64 > 8 * fp16


class TestMI250X:
    def test_mfma_grain_is_16_fp16_elems(self):
        # tc_min_bytes = 32 on CDNA2 -> 16 fp16 elements.
        spec = get_gpu("MI250X")
        assert spec.tc_min_elems(DType.FP16) == 16
        assert tensor_core_eligible((64, 64, 16), DType.FP16, spec)
        assert not tensor_core_eligible((64, 64, 8), DType.FP16, spec)

    def test_matrix_fp32_supported(self):
        # CDNA2 matrix cores run FP32 (unlike pre-Hopper NVIDIA).
        spec = get_gpu("MI250X")
        assert spec.supports_matrix(DType.FP32)
        perf = GemmModel(spec, dtype=DType.FP32).evaluate(4096, 4096, 4096)
        assert perf.used_matrix_engine

    def test_per_gcd_peak_below_a100(self):
        assert get_gpu("MI250X").matrix_peak_tflops(DType.FP16) < get_gpu(
            "A100"
        ).matrix_peak_tflops(DType.FP16)

    def test_alignment_ordering_holds(self):
        model = GemmModel("MI250X")
        aligned = model.latency(4096, 4096, 64)
        misaligned = model.latency(4096, 4096, 80)
        assert aligned < misaligned


class TestRidgePoints:
    @pytest.mark.parametrize(
        "gpu,dtype", [("A100", DType.FP16), ("H100", DType.BF16), ("V100", DType.FP16)]
    )
    def test_ridge_positive_and_finite(self, gpu, dtype):
        ridge = ridge_intensity(get_gpu(gpu), dtype)
        assert 0 < ridge < 1e4

    def test_int8_ridge_highest(self, a100):
        # More math per byte moved -> higher ridge.
        assert ridge_intensity(a100, DType.INT8) > ridge_intensity(a100, DType.FP16)

    def test_unsupported_combo_raises(self, v100):
        with pytest.raises(GPUModelError):
            GemmModel("V100", dtype=DType.INT8).evaluate(128, 128, 128)
