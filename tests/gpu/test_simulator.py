"""Tests for the discrete-event SM simulator, including its agreement
with the analytic model (the reproduction's internal consistency check)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.gpu.gemm_model import GemmModel
from repro.gpu.simulator import SMSimulator
from repro.gpu.tiles import default_tile


@pytest.fixture(scope="module")
def sim():
    return SMSimulator("A100")


class TestBasics:
    def test_nonpositive_raises(self, sim):
        with pytest.raises(ShapeError):
            sim.run(0, 128, 128)

    def test_result_fields(self, sim):
        r = sim.run(2048, 2048, 2048)
        assert r.blocks > 0
        assert r.slots == 108
        assert r.makespan_s > 0
        assert r.block_duration_s > 0
        assert len(r.sm_busy_s) == 108
        assert r.tflops > 0

    def test_utilization_bounded(self, sim):
        r = sim.run(4096, 4096, 1024)
        assert 0 < r.mean_sm_utilization <= 1.0

    def test_single_block_runs_one_duration(self, a100):
        sim = SMSimulator("A100", tile=default_tile())
        r = sim.run(64, 64, 64)
        assert r.blocks == 1
        # Makespan >= one block duration (plus memory floor + overhead).
        assert r.makespan_s >= r.block_duration_s


class TestWaveBehaviour:
    def test_full_wave_parallel(self, a100):
        sim = SMSimulator("A100", tile=default_tile())
        tile = default_tile()
        # 12 x 9 grid of 128x256 tiles = exactly 108 blocks, and a
        # compute-bound shape (square-ish output, large k).
        r = sim.run(12 * tile.m, 9 * tile.n, 4096)
        assert r.blocks == a100.num_sms
        # All blocks run concurrently: compute makespan ~ one duration.
        compute_span = r.makespan_s - a100.kernel_overhead_s
        assert compute_span == pytest.approx(r.block_duration_s, rel=0.01)

    def test_tail_wave_costs_extra(self, a100):
        sim = SMSimulator("A100", tile=default_tile())
        tile = default_tile()
        exact = sim.run(12 * tile.m, 9 * tile.n, 4096)  # 108 blocks
        over = sim.run(12 * tile.m, 10 * tile.n, 4096)  # 120 -> 2 waves
        assert over.makespan_s > 1.5 * exact.makespan_s


class TestAgreementWithAnalytic:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.sampled_from([1, 4, 32]),
    )
    def test_sim_matches_analytic_within_tolerance(self, mi, ni, ki, batch):
        m, n, k = 64 * mi, 64 * ni, 64 * ki
        tile = default_tile()
        analytic = GemmModel("A100", tile=tile).latency(m, n, k, batch)
        simulated = SMSimulator("A100", tile=tile).run(m, n, k, batch).latency_s
        # The DES resolves identical-duration blocks into the same
        # ceil(blocks/SMs) waves; agreement should be tight.
        assert simulated == pytest.approx(analytic, rel=0.05)

    def test_agreement_on_transformer_gemms(self):
        shapes = [
            (8192, 7680, 2560, 1),      # QKV, GPT-3 2.7B
            (2048, 2048, 80, 128),      # attention score
            (2048, 80, 2048, 128),      # attention over value
            (8192, 10240, 2560, 1),     # MLP up
            (8192, 50304, 2560, 1),     # logit
        ]
        gm = GemmModel("A100")
        for m, n, k, batch in shapes:
            a = gm.evaluate(m, n, k, batch)
            s = SMSimulator("A100", tile=a.tile).run(m, n, k, batch)
            assert s.latency_s == pytest.approx(a.latency_s, rel=0.08), (m, n, k)
