"""Tests for tile/wave quantization arithmetic (paper Sec III-B, VI-B)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.gpu import waves


class TestTiles:
    def test_tiles_along_exact(self):
        assert waves.tiles_along(1024, 128) == 8

    def test_tiles_along_ceil(self):
        assert waves.tiles_along(1025, 128) == 9
        assert waves.tiles_along(1, 128) == 1

    def test_num_tiles(self):
        assert waves.num_tiles(256, 512, 128, 256) == 2 * 2

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            waves.tiles_along(0, 128)
        with pytest.raises(ShapeError):
            waves.num_tiles(128, 128, 0, 128)


class TestTileQuantization:
    def test_no_waste_when_divisible(self):
        assert waves.tile_quantization_waste(1024, 2048, 128, 256) == 0.0

    def test_waste_for_overhang(self):
        # 129 rows need 2 tile rows of 128: covered 256, useful 129.
        w = waves.tile_quantization_waste(129, 256, 128, 256)
        assert w == pytest.approx(1 - 129 / 256)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=5000),
    )
    def test_waste_bounded(self, m, n):
        w = waves.tile_quantization_waste(m, n, 128, 256)
        assert 0.0 <= w < 1.0


class TestWaves:
    def test_exact_wave(self):
        assert waves.num_waves(108, 108) == 1
        assert waves.wave_efficiency(108, 108) == 1.0

    def test_classic_worst_case(self):
        # Sec III-B: 109 blocks on 108 SMs -> two waves, second nearly empty.
        assert waves.num_waves(109, 108) == 2
        assert waves.wave_efficiency(109, 108) == pytest.approx(109 / 216)
        assert waves.tail_wave_fraction(109, 108) == pytest.approx(1 / 108)

    def test_tail_full_when_divisible(self):
        assert waves.tail_wave_fraction(216, 108) == 1.0

    def test_blocks_per_sm_scales_capacity(self):
        assert waves.num_waves(216, 108, blocks_per_sm=2) == 1

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=200),
    )
    def test_wave_efficiency_bounds(self, blocks, sms):
        eff = waves.wave_efficiency(blocks, sms)
        assert 0.0 < eff <= 1.0
        # Efficiency 1.0 iff blocks is a multiple of capacity.
        assert (eff == 1.0) == (blocks % sms == 0)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=200),
    )
    def test_waves_cover_all_blocks(self, blocks, sms):
        w = waves.num_waves(blocks, sms)
        assert (w - 1) * sms < blocks <= w * sms


class TestPaperPredicate:
    """The exact no-wave-waste congruence from Sec VI-B."""

    def test_multiple_of_sms_is_free(self):
        # 108 SMs, tile 128x256: a 1536x2304 output = 12*9 = 108 blocks.
        assert waves.wave_quantization_free(1536, 2304, 128, 256, 108)

    def test_transposed_orientation_counts(self):
        # If (X/t2)*(Y/t1) hits the congruence, the kernel can use the
        # transposed tile orientation.
        assert waves.wave_quantization_free(2304, 1536, 128, 256, 108)

    def test_non_multiple_not_free(self):
        assert not waves.wave_quantization_free(1536, 2560, 128, 256, 108)

    def test_paper_transformer_claim(self):
        # Sec VI-B: no transformer configuration satisfies the Tensor
        # Core rule *and* is wave-free with the 128x256 tile on A100.
        # Spot-check the claim across aligned GEMM outputs b*s x 4h/t.
        found_free = False
        for bs in (2048, 4096, 8192):
            for n in range(1024, 16385, 64):
                if waves.wave_quantization_free(bs, n, 128, 256, 108):
                    found_free = True
        # Aligned power-of-two b*s rows: 8192/128=64 or /256=32 blocks
        # per column; 64*gn % 108 == 0 requires gn % 27 == 0 with
        # gn = n/256 -> n = 6912k... check consistency with the finding:
        if found_free:
            # If any exist they must be the rare 27-block-multiple cases.
            assert waves.wave_quantization_free(8192, 6912, 128, 256, 108)

    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=1, max_value=4096),
    )
    def test_predicate_matches_block_count(self, x, y):
        free = waves.wave_quantization_free(x, y, 128, 256, 108)
        a = waves.num_tiles(x, y, 128, 256)
        b = waves.num_tiles(x, y, 256, 128)
        assert free == (a % 108 == 0 or b % 108 == 0)


class TestHelpers:
    def test_smallest_wave_free_extent(self):
        x = waves.smallest_wave_free_extent(2000, 2304, 128, 256, 108)
        assert x >= 2000
        assert waves.wave_quantization_free(x, 2304, 128, 256, 108)

    def test_quantized_extent(self):
        assert waves.quantized_extent(129, 128) == 256
        assert waves.quantized_extent(128, 128) == 128

    def test_wave_period_elements(self):
        # With 8 blocks along the fixed dim, a wave of 108 needs
        # ceil(108/8)=14 tile steps.
        assert waves.wave_period_elements(64, 108, 8) == 64 * 14

    def test_waves_detail_bundle(self):
        d = waves.waves_detail(1536, 2304, 128, 256, 108)
        assert d["blocks"] == 108
        assert d["waves"] == 1
        assert d["wave_free"] is True
        assert d["tile_waste"] == 0.0
