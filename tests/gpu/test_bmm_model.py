"""Tests for the batched-GEMM model and attention shape constructors."""

import pytest

from repro.errors import ShapeError
from repro.gpu.bmm_model import BmmModel, BmmShape
from repro.types import DType


@pytest.fixture(scope="module")
def model():
    return BmmModel("A100")


class TestBmmShape:
    def test_flops(self):
        s = BmmShape(batch=4, m=8, k=16, n=32)
        assert s.flops == 2 * 4 * 8 * 16 * 32

    def test_bytes(self):
        s = BmmShape(batch=2, m=4, k=8, n=16)
        assert s.bytes(DType.FP16) == 2 * (4 * 8 + 8 * 16 + 4 * 16) * 2

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            BmmShape(batch=0, m=4, k=8, n=16)


class TestAttentionConstructors:
    def test_score_shape_matches_table2(self):
        # b*a/t BMMs of (s, h/a) x (h/a, s).
        s = BmmModel.attention_score_shape(b=4, s=2048, h=2560, a=32, t=2)
        assert s == BmmShape(batch=4 * 32 // 2, m=2048, k=80, n=2048)

    def test_aov_shape_matches_table2(self):
        s = BmmModel.attention_over_value_shape(b=4, s=2048, h=2560, a=32)
        assert s == BmmShape(batch=128, m=2048, k=2048, n=80)

    def test_h_not_divisible_by_a_raises(self):
        with pytest.raises(ShapeError, match="not divisible by heads"):
            BmmModel.attention_score_shape(4, 2048, 2560, 48)

    def test_ba_not_divisible_by_t_raises(self):
        # The paper's rule: (b*a)/t must be an integer.
        with pytest.raises(ShapeError, match="tensor-parallel"):
            BmmModel.attention_score_shape(1, 2048, 2560, 32, t=5)

    def test_score_and_aov_have_equal_flops(self):
        sc = BmmModel.attention_score_shape(4, 2048, 4096, 32)
        av = BmmModel.attention_over_value_shape(4, 2048, 4096, 32)
        assert sc.flops == av.flops


class TestEvaluation:
    def test_facade_matches_gemm_model(self, model):
        from repro.gpu.gemm_model import GemmModel

        shape = BmmShape(batch=64, m=512, k=64, n=512)
        direct = GemmModel("A100").evaluate(512, 512, 64, batch=64)
        via = model.evaluate(shape)
        assert via.latency_s == pytest.approx(direct.latency_s)

    def test_attention_bmms_memory_bound(self, model):
        # Sec VI-A: "these two GEMMs are memory bound".
        perf = model.evaluate(BmmModel.attention_score_shape(4, 2048, 2048, 32))
        assert perf.bound == "memory"

    def test_head_dim_raises_throughput(self, model):
        # Decreasing a (increasing h/a) makes the BMMs more efficient.
        t = {}
        for a in (64, 32, 16):
            shape = BmmModel.attention_score_shape(4, 2048, 4096, a)
            t[a] = model.tflops(shape)
        assert t[64] < t[32] < t[16]

    def test_aligned_head_dim_beats_misaligned(self, model):
        # h=2560: a=40 (h/a=64) beats a=32 (h/a=80) per unit time.
        aligned = model.evaluate(BmmModel.attention_score_shape(4, 2048, 2560, 40))
        misaligned = model.evaluate(BmmModel.attention_score_shape(4, 2048, 2560, 32))
        # Same total flops (2*b*s^2*h), so latency comparison is fair.
        assert aligned.flops == misaligned.flops
        assert aligned.latency_s < misaligned.latency_s

    def test_latency_shorthand(self, model):
        shape = BmmShape(batch=8, m=256, k=64, n=256)
        assert model.latency(shape) == model.evaluate(shape).latency_s

    def test_spec_and_dtype_exposed(self, model):
        assert model.spec.name == "A100"
        assert model.dtype is DType.FP16
