"""Tests for roofline arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.gpu.roofline import (
    RooflinePoint,
    arithmetic_intensity,
    attainable_tflops,
    gemm_flops,
    gemm_min_bytes,
    ridge_intensity,
)
from repro.gpu.specs import get_gpu
from repro.types import DType


class TestFlopsAndBytes:
    def test_gemm_flops(self):
        assert gemm_flops(4, 8, 16) == 2 * 4 * 8 * 16

    def test_batched(self):
        assert gemm_flops(4, 8, 16, batch=10) == 10 * gemm_flops(4, 8, 16)

    def test_min_bytes(self):
        assert gemm_min_bytes(4, 8, 16, DType.FP16) == (4 * 16 + 16 * 8 + 4 * 8) * 2

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            gemm_flops(0, 8, 16)
        with pytest.raises(ShapeError):
            gemm_min_bytes(4, 8, -1, DType.FP16)


class TestIntensity:
    def test_square_gemm_intensity(self):
        # n^3 cube: AI = 2n^3 / (3n^2 * 2 bytes) = n/3.
        assert arithmetic_intensity(999, 999, 999, DType.FP16) == pytest.approx(999 / 3)

    def test_batch_does_not_change_intensity(self):
        a = arithmetic_intensity(128, 128, 64, DType.FP16)
        b = arithmetic_intensity(128, 128, 64, DType.FP16, batch=32)
        assert a == pytest.approx(b)

    def test_attention_score_is_memory_bound(self, a100):
        # Sec VI-A: the attention BMMs are memory-bound at transformer
        # sizes because one dim is only h/a.
        point = RooflinePoint.for_gemm(2048, 2048, 64, a100, DType.FP16, batch=128)
        assert point.bound == "memory"

    def test_mlp_gemm_is_compute_bound(self, a100):
        point = RooflinePoint.for_gemm(8192, 10240, 2560, a100, DType.FP16)
        assert point.bound == "compute"


class TestAttainable:
    def test_capped_by_peak(self, a100):
        assert attainable_tflops(1e9, a100, DType.FP16) == a100.matrix_peak_tflops(
            DType.FP16
        )

    def test_memory_slope(self, a100):
        # Far below the ridge, attainable = AI * BW.
        tfl = attainable_tflops(1.0, a100, DType.FP16)
        assert tfl == pytest.approx(a100.mem_bw_bytes_per_s() / 1e12)

    def test_ridge_consistency(self, a100):
        ridge = ridge_intensity(a100, DType.FP16)
        below = attainable_tflops(ridge * 0.99, a100, DType.FP16)
        above = attainable_tflops(ridge * 1.01, a100, DType.FP16)
        assert below < a100.matrix_peak_tflops(DType.FP16)
        assert above == a100.matrix_peak_tflops(DType.FP16)

    def test_vector_fallback_for_unsupported_dtype(self, v100):
        # FP64 has no tensor-core path on V100 -> vector peak applies.
        assert attainable_tflops(1e9, v100, DType.FP64) == v100.vector_peak_tflops(
            DType.FP64
        )

    def test_nonpositive_intensity_raises(self, a100):
        with pytest.raises(ShapeError):
            attainable_tflops(0.0, a100, DType.FP16)

    @given(st.floats(min_value=0.01, max_value=1e6))
    def test_attainable_bounded_by_roofs(self, intensity):
        a100 = get_gpu("A100")
        tfl = attainable_tflops(intensity, a100, DType.FP16)
        assert tfl <= a100.matrix_peak_tflops(DType.FP16) + 1e-9
        assert tfl <= intensity * a100.mem_bw_bytes_per_s() / 1e12 + 1e-9
