"""Tests for Tensor Core alignment rules and efficiency curves."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.gpu.alignment import (
    dim_efficiency,
    gemm_alignment_efficiency,
    largest_pow2_divisor,
    tensor_core_eligible,
)
from repro.gpu.specs import get_gpu
from repro.types import DType


class TestLargestPow2Divisor:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (2, 2), (3, 1), (64, 64), (80, 16), (96, 32), (2560, 512), (50257, 1)],
    )
    def test_known_values(self, n, expected):
        assert largest_pow2_divisor(n) == expected

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            largest_pow2_divisor(0)
        with pytest.raises(ShapeError):
            largest_pow2_divisor(-8)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_divides_and_is_maximal(self, n):
        p = largest_pow2_divisor(n)
        assert n % p == 0
        assert (n // p) % 2 == 1  # quotient is odd -> p is maximal

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=999))
    def test_construction(self, exp, odd_base):
        odd = 2 * odd_base - 1
        assert largest_pow2_divisor(odd * 2**exp) == 2**exp


class TestTensorCoreEligible:
    def test_aligned_eligible(self, a100):
        assert tensor_core_eligible((64, 128, 256), DType.FP16, a100)

    def test_sub_grain_not_eligible(self, a100):
        assert not tensor_core_eligible((64, 100, 256), DType.FP16, a100)

    def test_unsupported_dtype_not_eligible(self, v100):
        assert not tensor_core_eligible((64, 64, 64), DType.BF16, v100)

    def test_v100_grain_is_8(self, v100):
        assert tensor_core_eligible((8, 8, 8), DType.FP16, v100)
        assert not tensor_core_eligible((8, 8, 4), DType.FP16, v100)


class TestDimEfficiency:
    def test_full_alignment_is_one(self, a100):
        for dim in (64, 128, 2560, 50304):
            assert dim_efficiency(dim, DType.FP16, a100) == 1.0

    def test_no_benefit_beyond_64(self, a100):
        # Sec VI-B: "no further benefit to going beyond 64".
        assert dim_efficiency(64, DType.FP16, a100) == dim_efficiency(
            4096, DType.FP16, a100
        )

    def test_pow2_ordering(self, a100):
        # Larger pow-2 divisors give higher efficiency (Figs 7/21-47).
        effs = [dim_efficiency(d, DType.FP16, a100) for d in (65, 66, 68, 72, 80, 96, 64)]
        assert effs == sorted(effs)

    def test_odd_dimension_floor(self, a100):
        eff = dim_efficiency(50257, DType.FP16, a100)
        assert 0.0 < eff < 0.5

    def test_v100_saturates_at_8(self, v100):
        # V100's full alignment is 16 bytes = 8 elements.
        assert dim_efficiency(8, DType.FP16, v100) == 1.0
        assert dim_efficiency(80, DType.FP16, v100) == 1.0
        assert dim_efficiency(12, DType.FP16, v100) < 1.0

    def test_nonpositive_raises(self, a100):
        with pytest.raises(ShapeError):
            dim_efficiency(0, DType.FP16, a100)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_bounded(self, dim):
        a100 = get_gpu("A100")
        eff = dim_efficiency(dim, DType.FP16, a100)
        assert 0.0 < eff <= 1.0

    @given(st.integers(min_value=1, max_value=1000))
    def test_depends_only_on_pow2_class(self, dim):
        a100 = get_gpu("A100")
        p = largest_pow2_divisor(dim)
        # Another dimension with the same (capped) pow-2 divisor has the
        # same efficiency.
        sibling = p * 3 if p < 64 else 64
        assert dim_efficiency(dim, DType.FP16, a100) == pytest.approx(
            dim_efficiency(sibling, DType.FP16, a100)
        )


class TestGemmAlignmentEfficiency:
    def test_m_is_ignored(self, a100):
        # m misalignment is charged as tile quantization, not here.
        assert gemm_alignment_efficiency(
            1, 4096, 1024, DType.FP16, a100
        ) == gemm_alignment_efficiency(8192, 4096, 1024, DType.FP16, a100)

    def test_k_misalignment_penalized(self, a100):
        aligned = gemm_alignment_efficiency(2048, 2048, 64, DType.FP16, a100)
        misaligned = gemm_alignment_efficiency(2048, 2048, 80, DType.FP16, a100)
        assert aligned == 1.0
        assert misaligned < aligned

    def test_n_misalignment_penalized(self, a100):
        # The attention-over-value case: n = h/a.
        aligned = gemm_alignment_efficiency(2048, 64, 2048, DType.FP16, a100)
        misaligned = gemm_alignment_efficiency(2048, 80, 2048, DType.FP16, a100)
        assert misaligned < aligned

    def test_worst_dimension_gates(self, a100):
        # k=80 (pow2 16) worse than n=96 (pow2 32): min picks k's.
        eff = gemm_alignment_efficiency(128, 96, 80, DType.FP16, a100)
        assert eff == pytest.approx(dim_efficiency(80, DType.FP16, a100))
