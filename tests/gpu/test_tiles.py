"""Tests for tile candidates and cuBLAS-like selection."""

import pytest

from repro.errors import GPUModelError
from repro.gpu.tiles import (
    TileConfig,
    candidate_tiles,
    default_tile,
    select_tile,
    tile_score,
)
from repro.types import DType


class TestTileConfig:
    def test_name_and_elems(self):
        tile = TileConfig(128, 256, 32, 256, 0.95)
        assert tile.name == "128x256"
        assert tile.elems == 128 * 256

    def test_invalid_dims_raise(self):
        with pytest.raises(GPUModelError):
            TileConfig(0, 256, 32, 256, 0.95)
        with pytest.raises(GPUModelError):
            TileConfig(128, 256, -1, 256, 0.95)

    def test_invalid_peak_fraction_raises(self):
        with pytest.raises(GPUModelError):
            TileConfig(128, 256, 32, 256, 0.0)
        with pytest.raises(GPUModelError):
            TileConfig(128, 256, 32, 256, 1.5)


class TestCandidates:
    def test_default_tile_is_128x256(self):
        # Sec VI-B: "a tile size of 128x256 which is the most efficient".
        tile = default_tile()
        assert (tile.m, tile.n) == (128, 256)
        assert tile.peak_fraction == max(
            t.peak_fraction for t in candidate_tiles_any()
        )

    def test_all_candidates_fit_a100(self, a100):
        tiles = candidate_tiles(a100, DType.FP16)
        assert len(tiles) >= 10

    def test_candidates_fit_v100(self, v100):
        tiles = candidate_tiles(v100, DType.FP16)
        assert all(t.m * t.n <= 256 * 128 for t in tiles)
        assert len(tiles) >= 8


def candidate_tiles_any():
    from repro.gpu.specs import get_gpu

    return candidate_tiles(get_gpu("A100"), DType.FP16)


class TestSelection:
    def test_big_gemm_picks_big_tile(self, a100):
        tile = select_tile(8192, 8192, 4096, a100, DType.FP16)
        assert tile.elems >= 128 * 256

    def test_gemv_picks_thin_tile(self, a100):
        tile = select_tile(1, 4096, 1024, a100, DType.FP16)
        assert tile.m <= 32

    def test_tall_skinny_picks_tall_tile(self, a100):
        tile = select_tile(8192, 16, 1024, a100, DType.FP16)
        assert tile.n <= 32

    def test_explicit_candidates_respected(self, a100):
        only = TileConfig(64, 64, 32, 128, 0.64)
        tile = select_tile(8192, 8192, 4096, a100, DType.FP16, candidates=[only])
        assert tile is only

    def test_empty_candidates_raise(self, a100):
        with pytest.raises(GPUModelError):
            select_tile(128, 128, 128, a100, DType.FP16, candidates=[])

    def test_batch_changes_selection_granularity(self, a100):
        # A single small matrix prefers small tiles; a large batch of
        # them amortizes waves, letting efficient big tiles win.
        small_batch = select_tile(512, 512, 64, a100, DType.FP16, batch=1)
        big_batch = select_tile(512, 512, 64, a100, DType.FP16, batch=512)
        assert big_batch.peak_fraction >= small_batch.peak_fraction

    def test_selection_never_worse_than_default(self, a100):
        # The auto selection's score must be <= the pinned default's
        # (Fig 5c "PyTorch lessens quantization effects").
        for size in range(512, 6145, 512):
            auto = select_tile(size, size, size, a100, DType.FP16)
            assert tile_score(auto, size, size, size, a100, DType.FP16) <= tile_score(
                default_tile(), size, size, size, a100, DType.FP16
            )


class TestScore:
    def test_score_scales_with_waves(self, a100):
        tile = default_tile()
        one_wave = tile_score(tile, 128, 256 * 108, 64, a100, DType.FP16)
        two_waves = tile_score(tile, 128, 256 * 109, 64, a100, DType.FP16)
        assert two_waves == pytest.approx(2 * one_wave)

    def test_score_prefers_efficiency_at_equal_waves(self, a100):
        good = TileConfig(128, 256, 32, 256, 0.95)
        bad = TileConfig(128, 256, 32, 256, 0.50)
        s_good = tile_score(good, 4096, 4096, 1024, a100, DType.FP16)
        s_bad = tile_score(bad, 4096, 4096, 1024, a100, DType.FP16)
        assert s_good < s_bad
