"""Tests for the analytic GEMM model — the heart of the reproduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.gpu.gemm_model import GemmModel
from repro.gpu.tiles import default_tile
from repro.types import DType


@pytest.fixture(scope="module")
def model():
    return GemmModel("A100")


class TestBasics:
    def test_nonpositive_dims_raise(self, model):
        with pytest.raises(ShapeError):
            model.evaluate(0, 128, 128)
        with pytest.raises(ShapeError):
            model.evaluate(128, 128, 128, batch=0)

    def test_bad_bw_efficiency_raises(self):
        with pytest.raises(ShapeError):
            GemmModel("A100", bw_efficiency=0.0)

    def test_perf_report_fields(self, model):
        p = model.evaluate(4096, 4096, 4096)
        assert p.gpu == "A100"
        assert p.flops == 2 * 4096**3
        assert p.blocks > 0 and p.waves > 0
        assert 0 < p.alignment_eff <= 1
        assert 0 < p.wave_eff <= 1
        assert p.latency_s > 0
        assert "GEMM" in p.describe()

    def test_shorthand_methods(self, model):
        p = model.evaluate(1024, 1024, 1024)
        assert model.latency(1024, 1024, 1024) == p.latency_s
        assert model.tflops(1024, 1024, 1024) == pytest.approx(p.tflops)

    def test_tensor_core_eligible(self, model):
        assert model.tensor_core_eligible(64, 64, 64)
        assert not model.tensor_core_eligible(64, 100, 64)


class TestRegimes:
    def test_big_aligned_gemm_near_peak(self, model, a100):
        # A large aligned GEMM should land compute-bound within the
        # 128x256 kernel's sustained fraction of peak.
        p = model.evaluate(8192, 8192, 8192)
        assert p.bound == "compute"
        peak = a100.matrix_peak_tflops(DType.FP16)
        assert 0.80 * peak <= p.tflops <= peak

    def test_small_gemm_memory_bound(self, model):
        p = model.evaluate(2048, 2048, 64)
        assert p.bound == "memory"

    def test_tiny_gemm_overhead_dominated(self, model, a100):
        p = model.evaluate(8, 8, 8)
        assert p.latency_s >= a100.kernel_overhead_s
        assert p.time.overhead_s / p.latency_s > 0.5

    def test_gemv_streams_weights(self, model, a100):
        # (1, h) x (h, 4h): latency should be close to the weight-matrix
        # streaming time, not a padded-tile compute estimate.
        h = 4096
        p = model.evaluate(1, 4 * h, h)
        stream_s = (h * 4 * h * 2) / a100.mem_bw_bytes_per_s()
        assert p.latency_s < 6 * stream_s


class TestAlignmentEffects:
    def test_k_64_beats_k_80_at_same_size(self, model):
        # The C2-vs-default mechanism: aligned k=64 outperforms the
        # 25%-bigger but misaligned k=80 (Sec VI-B).
        aligned = model.evaluate(8192, 8192, 64)
        misaligned = model.evaluate(8192, 8192, 80)
        assert aligned.latency_s < misaligned.latency_s

    def test_pow2_ordering_of_k(self, model):
        # Throughput-per-flop ordered by pow2(k) (Figs 7/21-47).
        per_flop = {}
        for k in (72, 80, 96, 128):  # pow2: 8, 16, 32, 128
            p = model.evaluate(4096, 4096, k)
            per_flop[k] = 1.0 / (p.latency_s / k)
        assert per_flop[72] < per_flop[80] < per_flop[96] < per_flop[128]

    def test_odd_k_heavily_penalized(self, model):
        odd = model.evaluate(4096, 4096, 127)
        even = model.evaluate(4096, 4096, 128)
        assert odd.latency_s > 1.5 * even.latency_s

    def test_vocab_padding_win(self, model):
        # Fig 20 / Karpathy: padding n=50257 -> 50304 is faster despite
        # doing more useful work.
        padded = model.evaluate(8192, 50304, 2560)
        unpadded = model.evaluate(8192, 50257, 2560)
        assert padded.latency_s < unpadded.latency_s


class TestWaveQuantization:
    def test_cliff_at_capacity_plus_one(self, a100):
        # Pin the tile so auto-selection cannot soften the cliff.
        model = GemmModel("A100", tile=default_tile())
        tile = default_tile()
        n_exact = tile.n * a100.num_sms  # one full wave of blocks (m = tile.m)
        exact = model.evaluate(tile.m, n_exact, 4096)
        over = model.evaluate(tile.m, n_exact + tile.n, 4096)
        assert exact.waves == 1 and over.waves == 2
        assert over.latency_s > 1.5 * exact.latency_s

    def test_throughput_recovers_at_full_waves(self, a100):
        model = GemmModel("A100", tile=default_tile())
        tile = default_tile()
        two_exact = model.evaluate(tile.m, 2 * tile.n * a100.num_sms, 4096)
        assert two_exact.wave_eff == 1.0

    def test_auto_selection_never_slower_than_pinned(self, a100):
        auto = GemmModel("A100")
        pinned = GemmModel("A100", tile=default_tile())
        for size in (1024, 2048, 3072, 4096, 6144):
            assert auto.latency(size, size, size) <= pinned.latency(size, size, size) * 1.001


class TestVectorFallback:
    def test_fp32_on_v100_uses_vector_path(self):
        model = GemmModel("V100", dtype=DType.FP32)
        p = model.evaluate(4096, 4096, 4096)
        assert not p.used_matrix_engine
        assert p.alignment_eff == 1.0

    def test_fp16_on_v100_uses_tensor_cores(self):
        model = GemmModel("V100", dtype=DType.FP16)
        p = model.evaluate(4096, 4096, 4096)
        assert p.used_matrix_engine

    def test_vector_path_when_alignment_destroys_tc(self):
        # With an odd k the padded-TC path may still win on A100, but
        # the chosen rate must never be worse than the vector path.
        model = GemmModel("A100", dtype=DType.FP16)
        p = model.evaluate(4096, 4096, 4095)
        vec = GemmModel("A100", dtype=DType.FP32).evaluate(4096, 4096, 4095)
        assert p.latency_s <= vec.latency_s * 1.5


class TestBatching:
    def test_batch_flops_scale(self, model):
        one = model.evaluate(512, 512, 64)
        many = model.evaluate(512, 512, 64, batch=32)
        assert many.flops == 32 * one.flops

    def test_large_batch_latency_scales_linearly(self, model):
        b64 = model.evaluate(512, 512, 64, batch=64)
        b128 = model.evaluate(512, 512, 64, batch=128)
        assert b128.latency_s == pytest.approx(2 * b64.latency_s, rel=0.15)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8192),
        st.integers(min_value=1, max_value=8192),
        st.integers(min_value=1, max_value=8192),
    )
    def test_latency_positive_and_flops_exact(self, m, n, k):
        model = GemmModel("A100")
        p = model.evaluate(m, n, k)
        assert p.latency_s > 0
        assert p.flops == 2 * m * n * k

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=6, max_value=13),
        st.integers(min_value=6, max_value=13),
    )
    def test_more_work_never_faster_in_k(self, log_mn, log_k):
        # At fixed (m, n) and fully aligned k, latency is non-decreasing
        # in k (more reduction work can't be free).
        model = GemmModel("A100")
        mn = 2**log_mn
        k1 = 2**log_k
        k2 = 2 * k1
        assert model.latency(mn, mn, k2) >= model.latency(mn, mn, k1) * 0.999

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["V100", "A100", "H100", "MI250X"]))
    def test_all_gpus_evaluate(self, gpu):
        model = GemmModel(gpu)
        p = model.evaluate(2048, 2048, 2048)
        assert p.latency_s > 0
