"""Property-based invariants of the GPU performance model.

Hypothesis sweeps the model over randomized shapes and asserts the
structural facts the paper's figures rely on, rather than point values:

- tile-quantization waste is nonnegative and vanishes *exactly* on
  tile-divisible (m, n);
- wave-quantization efficiency is 1 exactly at full-wave block counts;
- alignment efficiency is monotone in the power-of-two divisor of a
  dimension (doubling the pow2 factor of n or k at fixed magnitude
  never lowers modelled efficiency — the "larger multiples of 2"
  ordering of Figs 7/21-47);
- the scalar ``GemmModel.evaluate`` and the vectorized engine path
  agree bit-for-bit on arbitrary shape batches.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.vectorized import evaluate_batch, shape_array
from repro.gpu.alignment import (
    dim_efficiency,
    gemm_alignment_efficiency,
    largest_pow2_divisor,
)
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import get_gpu
from repro.gpu.waves import (
    num_waves,
    tile_quantization_waste,
    wave_efficiency,
)
from repro.types import DType

_TILES = st.sampled_from([8, 16, 32, 64, 128, 256])
_DIMS = st.integers(min_value=1, max_value=8192)


# -- tile quantization ------------------------------------------------------------


@given(m=_DIMS, n=_DIMS, tile_m=_TILES, tile_n=_TILES)
def test_tile_waste_nonnegative_and_bounded(m, n, tile_m, tile_n):
    waste = tile_quantization_waste(m, n, tile_m, tile_n)
    assert 0.0 <= waste < 1.0


@given(m=_DIMS, n=_DIMS, tile_m=_TILES, tile_n=_TILES)
def test_tile_waste_zero_iff_tile_divisible(m, n, tile_m, tile_n):
    waste = tile_quantization_waste(m, n, tile_m, tile_n)
    divisible = m % tile_m == 0 and n % tile_n == 0
    if divisible:
        assert waste == 0.0
    else:
        assert waste > 0.0


@given(mult_m=st.integers(1, 64), mult_n=st.integers(1, 64),
       tile_m=_TILES, tile_n=_TILES)
def test_tile_waste_vanishes_on_exact_multiples(mult_m, mult_n, tile_m, tile_n):
    assert tile_quantization_waste(
        mult_m * tile_m, mult_n * tile_n, tile_m, tile_n
    ) == 0.0


# -- wave quantization ------------------------------------------------------------


@given(blocks=st.integers(1, 10**6), num_sms=st.integers(1, 256),
       blocks_per_sm=st.integers(1, 8))
def test_wave_efficiency_in_unit_interval(blocks, num_sms, blocks_per_sm):
    eff = wave_efficiency(blocks, num_sms, blocks_per_sm)
    assert 0.0 < eff <= 1.0


@given(waves=st.integers(1, 64), num_sms=st.integers(1, 256),
       blocks_per_sm=st.integers(1, 8))
def test_wave_efficiency_is_one_at_full_waves(waves, num_sms, blocks_per_sm):
    blocks = waves * num_sms * blocks_per_sm
    assert wave_efficiency(blocks, num_sms, blocks_per_sm) == 1.0
    assert num_waves(blocks, num_sms, blocks_per_sm) == waves


@given(blocks=st.integers(1, 10**6), num_sms=st.integers(2, 256))
def test_partial_tail_wave_costs_efficiency(blocks, num_sms):
    eff = wave_efficiency(blocks, num_sms)
    if blocks % num_sms != 0:
        assert eff < 1.0
    else:
        assert eff == 1.0


# -- alignment monotonicity -------------------------------------------------------

_SPECS = st.sampled_from(["A100", "V100", "H100", "MI250X"])
_ODD = st.integers(1, 511).filter(lambda v: v % 2 == 1)


@given(gpu=_SPECS, odd=_ODD, e1=st.integers(0, 10), e2=st.integers(0, 10))
def test_dim_efficiency_monotone_in_pow2_divisor(gpu, odd, e1, e2):
    """More factors of two never lower a dimension's efficiency."""
    if e1 > e2:
        e1, e2 = e2, e1
    spec = get_gpu(gpu)
    dtype = DType.FP16
    lo = dim_efficiency(odd << e1, dtype, spec)
    hi = dim_efficiency(odd << e2, dtype, spec)
    assert lo <= hi
    assert 0.0 < lo <= 1.0 and hi <= 1.0
    # And the curve depends on the dimension only through its pow2
    # divisor (capped at full alignment), so equal divisors tie exactly.
    assert dim_efficiency(3 << e1, dtype, spec) == dim_efficiency(
        5 << e1, dtype, spec
    )


@given(gpu=_SPECS, m=_DIMS, n=_ODD, k=_ODD,
       e=st.integers(0, 8), which=st.sampled_from(["n", "k"]))
def test_gemm_alignment_never_drops_when_doubling(gpu, m, n, k, e, which):
    """Adding a factor of two to n or k never lowers combined efficiency.

    This is the alignment half of the paper's "h/a should be a larger
    power of two" guidance: the full-throughput claim has a
    wave-quantization sawtooth on top, but the alignment term itself
    must be monotone.
    """
    spec = get_gpu(gpu)
    dtype = DType.FP16
    n1, k1 = (n << e, k) if which == "n" else (n, k << e)
    n2, k2 = (n1 * 2, k1) if which == "n" else (n1, k1 * 2)
    base = gemm_alignment_efficiency(m, n1, k1, dtype, spec)
    doubled = gemm_alignment_efficiency(m, n2, k2, dtype, spec)
    assert base <= doubled


@given(gpu=_SPECS, m=_DIMS, n=_DIMS, k=_DIMS)
def test_gemm_alignment_is_min_of_contiguous_dims(gpu, m, n, k):
    spec = get_gpu(gpu)
    dtype = DType.FP16
    eff = gemm_alignment_efficiency(m, n, k, dtype, spec)
    assert eff == min(
        dim_efficiency(n, dtype, spec), dim_efficiency(k, dtype, spec)
    )
    full = spec.tc_align_elems(dtype)
    if largest_pow2_divisor(n) >= full and largest_pow2_divisor(k) >= full:
        assert eff == 1.0


# -- scalar vs vectorized parity --------------------------------------------------

_SHAPE = st.tuples(
    st.integers(1, 4096),  # m
    st.integers(1, 4096),  # n
    st.integers(1, 4096),  # k
    st.one_of(st.just(1), st.integers(2, 64)),  # batch
)


@settings(max_examples=25, deadline=None)
@given(
    shapes=st.lists(_SHAPE, min_size=1, max_size=8),
    gpu=st.sampled_from(["A100", "V100"]),
    dtype=st.sampled_from(["fp16", "fp32"]),
)
def test_scalar_model_matches_vectorized_engine(shapes, gpu, dtype):
    """GemmModel.evaluate and evaluate_batch agree bit-for-bit."""
    arr = shape_array(
        [m for m, _, _, _ in shapes],
        [n for _, n, _, _ in shapes],
        [k for _, _, k, _ in shapes],
        [b for _, _, _, b in shapes],
    )
    batch = evaluate_batch(arr, gpu, dtype)
    scalar = GemmModel(gpu, dtype)
    for i, (m, n, k, b) in enumerate(shapes):
        perf = scalar.evaluate(m, n, k, batch=b)
        assert perf.latency_s == float(batch.latency_s[i])
        assert perf.tflops == float(batch.tflops[i])
        assert perf.bound == str(batch.bound[i])
        assert perf.tile == batch.tile(i)
