"""Tests for the L2 reuse / DRAM traffic model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.gpu.l2cache import (
    effective_dram_bytes,
    l2_miss_rate,
    streamed_bytes,
    wave_super_tile,
)
from repro.gpu.specs import get_gpu
from repro.types import DType


def compulsory(m, n, k, batch=1):
    return batch * (m * k + k * n + m * n) * 2


class TestStreamed:
    def test_streamed_formula(self):
        # 2x2 tile grid of 128x256 tiles over 256x512, k=64.
        got = streamed_bytes(256, 512, 64, 128, 256, DType.FP16)
        loads = 4 * (128 + 256) * 64 * 2
        stores = 256 * 512 * 2
        assert got == loads + stores

    def test_streamed_at_least_compulsory_for_multi_tile(self):
        assert streamed_bytes(1024, 1024, 512, 128, 256, DType.FP16) >= compulsory(
            1024, 1024, 512
        )

    def test_nonpositive_raises(self):
        with pytest.raises(ShapeError):
            streamed_bytes(0, 128, 64, 128, 256, DType.FP16)


class TestMissRate:
    def test_fits_means_zero(self, a100):
        assert l2_miss_rate(1024, a100) == 0.0

    def test_huge_working_set_approaches_one(self, a100):
        assert l2_miss_rate(100 * a100.l2_bytes, a100) > 0.9

    def test_bounded(self, a100):
        for ws in (1, 10**6, 10**9, 10**12):
            assert 0.0 <= l2_miss_rate(ws, a100) <= 1.0

    def test_nonpositive_raises(self, a100):
        with pytest.raises(ShapeError):
            l2_miss_rate(0, a100)


class TestWaveSuperTile:
    def test_covers_wave(self):
        wm, wn = wave_super_tile(32, 64, 108)
        assert wm * wn <= 108
        assert 1 <= wm <= 32 and 1 <= wn <= 64

    def test_small_grid_fully_covered(self):
        wm, wn = wave_super_tile(4, 4, 108)
        assert wm * wn <= 16

    def test_aspect_follows_grid(self):
        wm_wide, wn_wide = wave_super_tile(4, 100, 100)
        assert wn_wide > wm_wide


class TestEffectiveTraffic:
    def test_small_gemm_is_compulsory(self, a100):
        # Grid fits in one wave: operands read exactly once.
        got = effective_dram_bytes(512, 512, 256, 128, 256, a100, DType.FP16)
        assert got == pytest.approx(compulsory(512, 512, 256))

    def test_large_gemm_rereads_operands(self, a100):
        got = effective_dram_bytes(8192, 8192, 4096, 128, 256, a100, DType.FP16)
        assert got > compulsory(8192, 8192, 4096)

    def test_bounded_by_streamed(self, a100):
        got = effective_dram_bytes(8192, 8192, 4096, 128, 256, a100, DType.FP16)
        assert got <= streamed_bytes(8192, 8192, 4096, 128, 256, DType.FP16)

    def test_batch_scales_traffic(self, a100):
        one = effective_dram_bytes(512, 512, 64, 128, 256, a100, DType.FP16, batch=1)
        many = effective_dram_bytes(512, 512, 64, 128, 256, a100, DType.FP16, batch=64)
        assert many == pytest.approx(64 * one, rel=0.35)

    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=1, max_value=4096),
    )
    def test_traffic_within_bounds(self, m, n, k):
        a100 = get_gpu("A100")
        got = effective_dram_bytes(m, n, k, 128, 256, a100, DType.FP16)
        assert compulsory(m, n, k) <= got <= streamed_bytes(
            m, n, k, 128, 256, DType.FP16
        )
