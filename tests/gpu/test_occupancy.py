"""Tests for the blocks-per-SM occupancy model."""

import pytest

from repro.errors import GPUModelError
from repro.gpu.occupancy import blocks_per_sm, regs_per_block, smem_bytes_per_block
from repro.types import DType


class TestFootprints:
    def test_smem_formula(self):
        # (m + n) * k_stage * bytes * stages
        assert smem_bytes_per_block(128, 256, 32, 2, DType.FP16) == (
            (128 + 256) * 32 * 2 * 2
        )

    def test_smem_scales_with_dtype(self):
        assert smem_bytes_per_block(64, 64, 32, 2, DType.FP32) == 2 * smem_bytes_per_block(
            64, 64, 32, 2, DType.FP16
        )

    def test_regs_include_accumulator(self):
        assert regs_per_block(64, 64, 128) >= 64 * 64


class TestBlocksPerSM:
    def test_small_tile_high_occupancy(self, a100):
        occ = blocks_per_sm(a100, 32, 32, 32, 64, DType.FP16)
        assert occ.blocks_per_sm >= 4

    def test_big_tile_low_occupancy(self, a100):
        occ = blocks_per_sm(a100, 256, 128, 32, 256, DType.FP16)
        assert occ.blocks_per_sm <= 2

    def test_limiter_named(self, a100):
        occ = blocks_per_sm(a100, 256, 128, 32, 256, DType.FP16)
        assert occ.limiter in ("smem", "regs", "threads", "blocks")

    def test_never_exceeds_hardware_block_limit(self, a100):
        occ = blocks_per_sm(a100, 16, 64, 32, 64, DType.FP16)
        assert occ.blocks_per_sm <= a100.max_blocks_per_sm

    def test_thread_limit_respected(self, a100):
        occ = blocks_per_sm(a100, 64, 64, 32, 1024, DType.FP16)
        assert occ.blocks_per_sm <= a100.max_threads_per_sm // 1024

    def test_oversized_tile_raises(self, v100):
        # A 512x512 fp32 accumulator cannot fit one V100 SM.
        with pytest.raises(GPUModelError, match="does not fit"):
            blocks_per_sm(v100, 512, 512, 64, 256, DType.FP16)

    def test_occupancy_monotone_in_tile_area(self, a100):
        small = blocks_per_sm(a100, 32, 32, 32, 64, DType.FP16)
        big = blocks_per_sm(a100, 128, 128, 32, 256, DType.FP16)
        assert small.blocks_per_sm >= big.blocks_per_sm
