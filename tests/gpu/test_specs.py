"""Tests for the GPU spec registry (paper Table III / Sec III-B facts)."""

import pytest

from repro.errors import GPUModelError
from repro.gpu.specs import GPUSpec, get_gpu, list_gpus, register_gpu
from repro.types import DType


class TestRegistry:
    def test_lookup_by_name_case_insensitive(self):
        assert get_gpu("a100").name == "A100"
        assert get_gpu("A100").name == "A100"
        assert get_gpu(" h100 ").name == "H100"

    def test_aliases(self):
        assert get_gpu("a100-40gb").name == "A100"
        assert get_gpu("v100-16gb").name == "V100"
        assert get_gpu("mi250").name == "MI250X"

    def test_passthrough(self, a100):
        assert get_gpu(a100) is a100

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(GPUModelError, match="known:"):
            get_gpu("TPUv4")

    def test_list_gpus_distinct_and_sorted(self):
        gpus = list_gpus()
        names = [g.name for g in gpus]
        assert names == sorted(names)
        assert len(names) == len(set(names))
        assert {"V100", "A100", "H100", "MI250X"} <= set(names)


class TestPaperFacts:
    """The microarchitectural facts the paper's rules quote verbatim."""

    def test_sm_counts(self):
        # Sec VI-B: 80 for V100, 108 for A100, 144 for H100.
        assert get_gpu("V100").num_sms == 80
        assert get_gpu("A100").num_sms == 108
        assert get_gpu("H100").num_sms == 144

    def test_tc_alignment_bytes(self):
        # Sec III-B: 16 bytes on V100, 128 bytes on A100.
        assert get_gpu("V100").tc_align_bytes == 16
        assert get_gpu("A100").tc_align_bytes == 128

    def test_tc_align_elems_fp16(self):
        # 128 bytes = 64 FP16 elements (Sec VI-B).
        assert get_gpu("A100").tc_align_elems(DType.FP16) == 64
        assert get_gpu("V100").tc_align_elems(DType.FP16) == 8

    def test_tc_align_elems_depends_on_dtype(self, a100):
        assert a100.tc_align_elems(DType.FP32) == 32
        assert a100.tc_align_elems(DType.INT8) == 128

    def test_h100_a100_peak_ratio(self):
        # Sec VIII: ~3:1 between H100 and A100 systems.
        ratio = get_gpu("H100").matrix_peak_tflops(DType.FP16) / get_gpu(
            "A100"
        ).matrix_peak_tflops(DType.FP16)
        assert 2.5 <= ratio <= 3.6


class TestGPUSpec:
    def test_matrix_peak_missing_raises(self, v100):
        with pytest.raises(GPUModelError, match="no matrix-engine path"):
            v100.matrix_peak_tflops(DType.FP64)

    def test_vector_peak_missing_raises(self, a100):
        with pytest.raises(GPUModelError, match="no vector-unit rate"):
            a100.vector_peak_tflops(DType.INT8)

    def test_supports_matrix(self, a100, v100):
        assert a100.supports_matrix(DType.BF16)
        assert not v100.supports_matrix(DType.BF16)

    def test_mem_bw_conversion(self, a100):
        assert a100.mem_bw_bytes_per_s() == pytest.approx(1555e9)

    def test_with_overrides(self, a100):
        fat = a100.with_overrides(mem_bw_gbs=2039.0, name="A100-fat")
        assert fat.mem_bw_gbs == 2039.0
        assert fat.num_sms == a100.num_sms
        assert a100.mem_bw_gbs == 1555.0  # original untouched

    def test_invalid_sms_rejected(self, a100):
        with pytest.raises(GPUModelError):
            a100.with_overrides(num_sms=0)

    def test_invalid_alignment_rejected(self, a100):
        with pytest.raises(GPUModelError):
            a100.with_overrides(tc_min_bytes=256)

    def test_register_custom(self, a100):
        register_gpu(a100.with_overrides(name="TestChip"), aliases=("tc1",))
        assert get_gpu("tc1").name == "TestChip"
