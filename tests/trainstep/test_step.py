"""Tests for the grid-priced training-step runtime estimator."""

import numpy as np
import pytest

from repro.core.config import get_model
from repro.core.gemms import training_gemms
from repro.errors import ConfigError
from repro.trainstep.report import estimate_to_json, render_estimate
from repro.trainstep.step import (
    PHASE_BACKWARD,
    PHASE_FORWARD,
    PHASE_OPTIMIZER,
    PHASE_RECOMPUTE,
    TrainStepEstimator,
    training_grid,
)
from repro.transformer.trace import ADAM_FLOPS_PER_PARAM


@pytest.fixture(scope="module")
def estimate():
    return TrainStepEstimator("A100").estimate(get_model("pythia-410m"))


class TestTrainingGrid:
    def test_row_counts(self):
        cfg = get_model("gpt3-2.7b")
        grid = training_grid(cfg)
        # Every forward op appears once, every backward pair twice that.
        fwd = int(np.sum(grid.column("phase") == PHASE_FORWARD))
        bwd = int(np.sum(grid.column("phase") == PHASE_BACKWARD))
        assert bwd == 2 * fwd
        assert PHASE_RECOMPUTE not in grid.column("phase")

    def test_full_checkpointing_adds_recompute_rows(self):
        cfg = get_model("gpt3-2.7b")
        grid = training_grid(cfg, "full")
        fwd_rows = grid.select(grid.column("phase") == PHASE_FORWARD)
        rec_rows = grid.select(grid.column("phase") == PHASE_RECOMPUTE)
        # Recompute re-runs the per-layer forward ops (not the logit).
        assert len(rec_rows) == len(fwd_rows) - 1
        np.testing.assert_array_equal(
            rec_rows.shapes, fwd_rows.shapes[: len(rec_rows)]
        )

    def test_grid_flops_match_training_gemms(self):
        """count-weighted grid flops == the fully expanded analytic map."""
        cfg = get_model("pythia-1b")
        grid = training_grid(cfg)
        flops = (
            2
            * grid.column("batch")
            * grid.column("m")
            * grid.column("n")
            * grid.column("k")
            * grid.column("count")
        )
        assert int(np.sum(flops)) == sum(op.flops for op in training_gemms(cfg))

    def test_bad_policy_raises(self):
        with pytest.raises(ConfigError):
            training_grid(get_model("pythia-70m"), "half")


class TestEstimate:
    def test_phase_order_and_totals(self, estimate):
        assert estimate.phase_names == (
            PHASE_FORWARD,
            PHASE_BACKWARD,
            PHASE_OPTIMIZER,
        )
        assert estimate.total_s == pytest.approx(
            sum(p.seconds for p in estimate.phases)
        )
        assert all(p.seconds > 0 for p in estimate.phases)

    def test_backward_twice_forward_flops(self, estimate):
        assert (
            estimate.phase(PHASE_BACKWARD).flops
            == 2 * estimate.phase(PHASE_FORWARD).flops
        )
        assert estimate.backward_to_forward_flops == 2.0

    def test_optimizer_flops_follow_adam_constant(self, estimate):
        assert estimate.phase(PHASE_OPTIMIZER).flops == int(
            round(estimate.memory.parameter_elements * ADAM_FLOPS_PER_PARAM)
        )

    def test_module_rollup_covers_gemm_time(self, estimate):
        assert sum(m.total_s for m in estimate.modules) == pytest.approx(
            estimate.gemm_s, rel=1e-9
        )
        names = {m.module for m in estimate.modules}
        assert "qkv_transform" in names and "logit" in names

    def test_checkpointing_costs_time_saves_memory(self):
        est = TrainStepEstimator("A100")
        cfg = get_model("pythia-410m")
        none = est.estimate(cfg)
        full = est.estimate(cfg, checkpointing="full")
        assert full.total_s > none.total_s
        assert full.flops > none.flops
        assert full.memory.peak_bytes <= none.memory.peak_bytes
        assert full.phase(PHASE_RECOMPUTE).seconds > 0

    def test_unknown_phase_raises(self, estimate):
        with pytest.raises(KeyError):
            estimate.phase("embedding")

    def test_throughput_properties(self, estimate):
        assert estimate.tokens_per_second > 0
        assert 0 < estimate.tflops < 1000


class TestReport:
    def test_render_names_phases_and_modules(self, estimate):
        text = render_estimate(estimate)
        for token in ("forward", "backward", "optimizer", "qkv_transform", "peak"):
            assert token in text

    def test_json_round_trips_scalars(self, estimate):
        payload = estimate_to_json(estimate)
        assert payload["model"] == "pythia-410m"
        assert [p["phase"] for p in payload["phases"]] == [
            "forward",
            "backward",
            "optimizer",
        ]
        assert payload["memory"]["peak_phase"] == "backward"
        import json

        json.dumps(payload)  # strictly serializable
