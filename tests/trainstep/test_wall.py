"""The blocking differential wall: grid path vs scalar brute force."""

import pytest

from repro.trainstep.wall import WALL_MODELS, check_model, run_wall


class TestWallCases:
    @pytest.mark.parametrize("name", WALL_MODELS)
    def test_bit_identical_per_model(self, name):
        case = check_model(name)
        assert case.passed, (
            f"{name}: phases {case.phase_mismatches}, "
            f"flops {case.gemm_flops_grid} vs {case.gemm_flops_analytic}"
        )

    def test_full_checkpointing_parity(self):
        case = check_model("gpt3-2.7b", checkpointing="full")
        assert case.passed
        assert case.checkpointing == "full"


class TestWallReport:
    def test_zoo_wall_blocks(self):
        """The acceptance gate: every zoo config bit-identical."""
        report = run_wall()
        assert report.passed, report.describe()
        assert len(report.cases) == len(WALL_MODELS) + 2

    def test_describe_names_every_model(self):
        report = run_wall(models=("pythia-70m", "pythia-160m"))
        text = report.describe()
        assert "pythia-70m" in text and "pythia-160m" in text
        assert "bit-identical" in text
