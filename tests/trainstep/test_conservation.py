"""Hypothesis conservation laws of the training-step estimator.

These properties need no engine evaluation: FLOPs come from the grid's
integer columns and memory from the closed-form model, so the suite
sweeps hundreds of random configurations quickly.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import TransformerConfig
from repro.core.gemms import training_gemms
from repro.core.memory import MemoryBudget
from repro.trainstep.memory import estimate_memory, module_param_elements
from repro.trainstep.step import training_grid
from repro.transformer.trace import ADAM_FLOPS_PER_PARAM, OpTrace

configs = st.builds(
    lambda h_mult, a, L, v_mult, s_exp, b: TransformerConfig(
        name="prop",
        hidden_size=h_mult * a,
        num_heads=a,
        num_layers=L,
        vocab_size=64 * v_mult,
        seq_len=2**s_exp,
        microbatch=b,
    ),
    h_mult=st.integers(min_value=8, max_value=128),
    a=st.sampled_from([2, 4, 8, 16, 32]),
    L=st.integers(min_value=1, max_value=64),
    v_mult=st.integers(min_value=4, max_value=512),
    s_exp=st.integers(min_value=5, max_value=11),
    b=st.integers(min_value=1, max_value=8),
)


def _grid_phase_flops(cfg, checkpointing="none"):
    grid = training_grid(cfg, checkpointing)
    flops = (
        2
        * grid.column("batch")
        * grid.column("m")
        * grid.column("n")
        * grid.column("k")
        * grid.column("count")
    )
    phase = grid.column("phase")
    return {
        name: int(np.sum(flops[phase == name]))
        for name in dict.fromkeys(phase.tolist())
    }


class TestFlopConservation:
    @settings(max_examples=60, deadline=None)
    @given(configs)
    def test_step_flops_decompose(self, cfg):
        """total == fwd + bwd + optimizer, with bwd == 2x fwd."""
        phases = _grid_phase_flops(cfg)
        opt = cfg.param_count() * ADAM_FLOPS_PER_PARAM
        total = phases["forward"] + phases["backward"] + opt
        assert phases["backward"] == 2 * phases["forward"]
        assert total == sum(phases.values()) + opt

    @settings(max_examples=60, deadline=None)
    @given(configs)
    def test_grid_matches_analytic_expansion(self, cfg):
        phases = _grid_phase_flops(cfg)
        assert phases["forward"] + phases["backward"] == sum(
            op.flops for op in training_gemms(cfg)
        )

    @settings(max_examples=40, deadline=None)
    @given(configs)
    def test_traced_derivation_agrees_per_module(self, cfg):
        """OpTrace's mechanical 2x derivation holds module by module."""
        trace = OpTrace()
        for op in training_gemms(cfg):
            if not op.module.endswith((".dgrad", ".wgrad")):
                trace.records.append(_as_record(op))
        fwd_by_module = {}
        for rec in trace.records:
            fwd_by_module[rec.module] = (
                fwd_by_module.get(rec.module, 0) + rec.flops
            )
        bwd_by_module = {}
        for rec in trace.backward_records():
            bwd_by_module[rec.base_module] = (
                bwd_by_module.get(rec.base_module, 0) + rec.flops
            )
        for module, fwd in fwd_by_module.items():
            assert bwd_by_module[module] == 2 * fwd


def _as_record(op):
    from repro.transformer.trace import MatmulRecord

    return MatmulRecord(module=op.module, m=op.m, k=op.k, n=op.n, batch=op.batch)


class TestMemoryMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(configs, st.sampled_from([1, 2, 4]), st.sampled_from([1, 2, 4]))
    def test_peak_non_increasing_in_t_and_p(self, cfg, t, p):
        base = estimate_memory(cfg, tp=t, pipeline_stages=p)
        more_t = estimate_memory(cfg, tp=2 * t, pipeline_stages=p)
        more_p = estimate_memory(cfg, tp=t, pipeline_stages=2 * p)
        assert more_t.peak_bytes <= base.peak_bytes
        assert more_p.peak_bytes <= base.peak_bytes

    @settings(max_examples=40, deadline=None)
    @given(configs, st.sampled_from([1, 2]), st.sampled_from([1, 2, 4]))
    def test_checkpointing_tradeoff(self, cfg, t, p):
        """Checkpointing never increases peak memory, never decreases
        flops."""
        none = estimate_memory(cfg, tp=t, pipeline_stages=p)
        full = estimate_memory(cfg, tp=t, pipeline_stages=p, checkpointing="full")
        assert full.peak_bytes <= none.peak_bytes
        flops_none = sum(_grid_phase_flops(cfg, "none").values())
        flops_full = sum(_grid_phase_flops(cfg, "full").values())
        assert flops_full >= flops_none

    @settings(max_examples=30, deadline=None)
    @given(configs)
    def test_param_walk_conserves_total(self, cfg):
        assert sum(module_param_elements(cfg).values()) == cfg.param_count()

    @settings(max_examples=30, deadline=None)
    @given(configs)
    def test_fits_consistent_with_require_fits(self, cfg):
        from repro.errors import CapacityError

        mem = estimate_memory(cfg)
        budget = MemoryBudget.for_gpu("A100")
        if mem.fits(budget):
            mem.require_fits(budget)  # must not raise
        else:
            try:
                mem.require_fits(budget)
            except CapacityError as exc:
                assert exc.phase == mem.peak_phase
            else:  # pragma: no cover - defensive
                raise AssertionError("require_fits did not raise")
