"""Tests for the per-module / per-phase training-step memory model."""

import pytest

from repro.core.config import get_model
from repro.core.memory import (
    ADAM_STATE_BYTES_PER_PARAM,
    MemoryBudget,
    activation_bytes_per_layer,
    training_bytes,
)
from repro.errors import CapacityError, ConfigError
from repro.trainstep.memory import (
    BOUNDARY_MODULE,
    boundary_bytes_per_layer,
    estimate_memory,
    module_activation_bytes,
    module_param_elements,
)


class TestParamWalk:
    @pytest.mark.parametrize(
        "name",
        ["gpt3-2.7b", "pythia-410m", "gpt3-175b", "c1", "llama2-70b", "mixtral-8x7b"],
    )
    def test_dedup_walk_sums_to_param_count(self, name):
        cfg = get_model(name)
        assert sum(module_param_elements(cfg).values()) == cfg.param_count()

    def test_naive_walk_double_counts_tied_embedding(self):
        cfg = get_model("gpt3-2.7b")
        dedup = module_param_elements(cfg)
        naive = module_param_elements(cfg, dedup_tied=False)
        assert dedup["logit"] == 0
        assert naive["logit"] == cfg.vocab_size * cfg.hidden_size
        delta = sum(naive.values()) - sum(dedup.values())
        assert delta == cfg.vocab_size * cfg.hidden_size

    def test_embedding_dedup_regression_pin(self):
        """The corrected per-rank parameter bytes under TP, pinned.

        The old parameter-only heuristic effectively priced the tied
        logit weight separately from the embedding; the estimator
        counts it once.  gpt3-2.7b: 2.651B params -> at t=4 each rank
        holds exactly params/4 elements * 16 B of Adam residency.
        """
        cfg = get_model("gpt3-2.7b")
        mem = estimate_memory(cfg, tp=4)
        expected = cfg.param_count() / 4 * ADAM_STATE_BYTES_PER_PARAM
        resident = (
            mem.parameter_bytes + mem.gradient_bytes + mem.optimizer_state_bytes
        )
        assert resident == pytest.approx(expected, rel=1e-12)
        # And the naive double-count would have been visibly larger:
        naive_extra = cfg.vocab_size * cfg.hidden_size / 4 * ADAM_STATE_BYTES_PER_PARAM
        assert naive_extra > 0.5e9  # the bug was worth ~0.5 GB/rank here


class TestActivationWalk:
    @pytest.mark.parametrize("name", ["gpt3-2.7b", "pythia-1b", "c2"])
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_classic_block_matches_korthikanti(self, name, t):
        cfg = get_model(name)
        per_module = module_activation_bytes(cfg, t)
        assert sum(per_module.values()) == pytest.approx(
            activation_bytes_per_layer(cfg.with_overrides(tp_degree=t)),
            rel=1e-12,
        )

    def test_flash_drops_score_terms(self):
        cfg = get_model("gpt3-2.7b")
        plain = module_activation_bytes(cfg, 1)
        flash = module_activation_bytes(cfg, 1, flash_attention=True)
        assert flash["attention_score"] < plain["attention_score"]
        assert flash["qkv_transform"] == plain["qkv_transform"]

    def test_boundary_is_smaller_than_layer(self):
        cfg = get_model("gpt3-2.7b")
        assert boundary_bytes_per_layer(cfg, 2) < sum(
            module_activation_bytes(cfg, 2).values()
        )


class TestEstimateMemory:
    def test_matches_core_training_bytes_at_p1(self):
        """At (t, p=1), classic block, no flash/ckpt, the estimator's
        peak equals the coarse core model exactly."""
        for t in (1, 2, 4):
            cfg = get_model("gpt3-2.7b", tp_degree=t)
            mem = estimate_memory(cfg)
            assert mem.peak_bytes == pytest.approx(
                training_bytes(cfg).total, rel=1e-12
            )

    def test_backward_is_peak_phase(self):
        mem = estimate_memory(get_model("gpt3-2.7b"))
        assert mem.peak_phase == "backward"
        assert mem.phase("backward").total_bytes >= mem.phase("forward").total_bytes
        assert mem.phase("backward").total_bytes >= mem.phase("optimizer").total_bytes

    def test_checkpointing_stores_boundaries_only(self):
        cfg = get_model("gpt3-2.7b")
        full = estimate_memory(cfg, checkpointing="full")
        none = estimate_memory(cfg, checkpointing="none")
        assert full.peak_bytes < none.peak_bytes
        names = [m.module for m in full.modules]
        assert BOUNDARY_MODULE in names
        assert BOUNDARY_MODULE not in [m.module for m in none.modules]

    def test_embedding_not_diluted_by_pipeline(self):
        """The embedding stays resident on its stage: parameter bytes
        shrink slower than 1/p."""
        cfg = get_model("gpt3-2.7b")
        p1 = estimate_memory(cfg, pipeline_stages=1)
        p4 = estimate_memory(cfg, pipeline_stages=4)
        emb = next(m for m in p4.modules if m.module == "embedding")
        emb1 = next(m for m in p1.modules if m.module == "embedding")
        assert emb.parameter_bytes == emb1.parameter_bytes
        assert p4.parameter_bytes > p1.parameter_bytes / 4

    def test_bad_sharding_raises(self):
        cfg = get_model("gpt3-2.7b")
        with pytest.raises(ConfigError):
            estimate_memory(cfg, tp=0)
        with pytest.raises(ConfigError):
            estimate_memory(cfg, pipeline_stages=-1)
        with pytest.raises(ConfigError):
            estimate_memory(cfg, checkpointing="half")

    def test_require_fits_names_phase(self):
        cfg = get_model("gpt3-6.7b", microbatch=1)
        mem = estimate_memory(cfg)
        budget = MemoryBudget.for_gpu("A100")
        with pytest.raises(CapacityError) as exc:
            mem.require_fits(budget)
        err = exc.value
        assert err.phase == "backward"
        assert err.required_bytes > err.budget_bytes
        assert "backward" in str(err)

    def test_variant_blocks_account_honestly(self):
        """SwiGLU and MoE configs produce self-consistent walks too."""
        for name in ("llama2-70b", "mixtral-8x7b"):
            cfg = get_model(name)
            mem = estimate_memory(cfg)
            assert mem.peak_bytes > 0
            assert sum(module_param_elements(cfg).values()) == cfg.param_count()
