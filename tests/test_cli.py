"""Smoke tests for every CLI verb."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_basic(self, capsys):
        assert main(["analyze", "gpt3-2.7b"]) == 0
        out = capsys.readouterr().out
        assert "GEMM share" in out and "tokens/s" in out

    def test_flash_flag(self, capsys):
        assert main(["analyze", "gpt3-2.7b", "--flash"]) == 0
        assert "FlashAttention" in capsys.readouterr().out

    def test_gpu_flag(self, capsys):
        assert main(["analyze", "pythia-1b", "--gpu", "V100"]) == 0
        assert "V100" in capsys.readouterr().out

    def test_unknown_model_errors(self, capsys):
        assert main(["analyze", "gpt9"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRules:
    def test_basic(self, capsys):
        assert main(["rules", "gpt3-2.7b"]) == 0
        out = capsys.readouterr().out
        assert "head_dim_pow2" in out

    def test_pipeline_stages(self, capsys):
        assert main(["rules", "gpt3-2.7b", "--pipeline-stages", "5"]) == 0
        assert "pipeline" in capsys.readouterr().out


class TestAdvise:
    def test_basic(self, capsys):
        assert main(["advise", "gpt3-2.7b", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "#1" in out


class TestFigure:
    def test_table_output(self, capsys):
        assert main(["figure", "fig14"]) == 0
        assert "[PASS]" in capsys.readouterr().out

    def test_csv_output(self, capsys):
        assert main(["figure", "fig14", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ordering,n,tflops")

    def test_check_only(self, capsys):
        assert main(["figure", "fig14", "--check"]) == 0
        assert capsys.readouterr().out.startswith("PASS")

    def test_plot_output(self, capsys):
        assert main(["figure", "fig12", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "tflops" in out and "check: PASS" in out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "fig999"]) == 2


class TestListings:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "case_swiglu" in out

    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        assert "gpt3-2.7b" in capsys.readouterr().out

    def test_list_gpus(self, capsys):
        assert main(["list-gpus"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "MI250X" in out


class TestGemm:
    def test_basic(self, capsys):
        assert main(["gemm", "4096", "4096", "64"]) == 0
        out = capsys.readouterr().out
        assert "roofline" in out and "selected" in out

    def test_batched_misaligned(self, capsys):
        assert main(["gemm", "2048", "2048", "80", "--batch", "128"]) == 0
        out = capsys.readouterr().out
        assert "memory-bound" in out
        assert "pow2(m, n, k) = (2048, 2048, 16)" in out

    def test_dtype_flag(self, capsys):
        assert main(["gemm", "1024", "1024", "1024", "--dtype", "fp32"]) == 0


class TestWhatIf:
    def test_ranks_knobs(self, capsys):
        assert main(["whatif", "gpt-neo-2.7b"]) == 0
        out = capsys.readouterr().out
        assert "heads" in out and "vocabulary" in out
        # Heads must rank first (largest payoff for this model).
        knob_lines = [
            line
            for line in out.splitlines()
            if line.split() and line.split()[0] in
            ("heads", "vocabulary", "microbatch", "hidden", "swiglu_width")
        ]
        assert knob_lines[0].startswith("heads")


class TestReport:
    def test_stdout_subset(self, capsys):
        assert main(["report", "--ids", "fig14"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "`fig14`" in out

    def test_file_output(self, capsys, tmp_path):
        path = tmp_path / "rep.md"
        assert main(["report", "--ids", "fig14", "--output", str(path)]) == 0
        assert "# Reproduction report" in path.read_text()


class TestBench:
    def test_quick_bench_writes_record(self, capsys, tmp_path):
        import json

        path = tmp_path / "bench.json"
        assert (
            main(
                ["bench", "--quick", "--parallel", "2",
                 "--ids", "fig14", "fig5", "--output", str(path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parity: OK" in out
        assert "benchmark: PASS" in out
        record = json.loads(path.read_text())
        assert record["passed"]
        assert record["parity"]["mismatches"] == 0
        assert record["checks_passed"] == record["checks_total"] == 2
        assert record["parallel"]["matches_serial"]
        assert {e["id"] for e in record["experiments"]} == {"fig14", "fig5"}

    def test_dash_output_skips_file(self, capsys):
        assert main(["bench", "--quick", "--ids", "fig14", "--output", "-"]) == 0
        assert "wrote" not in capsys.readouterr().out


class TestCalibrate:
    def _write_csv(self, tmp_path, bw=0.70):
        from repro.gpu.gemm_model import GemmModel

        gen = GemmModel("A100", bw_efficiency=bw)
        rows = ["m,n,k,latency_s"]
        for m, n, k in [(2048, 2048, 64), (4096, 4096, 128), (2048, 2048, 80)]:
            rows.append(f"{m},{n},{k},{gen.latency(m, n, k)}")
        path = tmp_path / "meas.csv"
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_recovers_bw_constant(self, tmp_path, capsys):
        path = self._write_csv(tmp_path, bw=0.70)
        assert main(["calibrate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "loaded 3 measurements" in out
        assert "bw_efficiency" in out
        bw_line = [l for l in out.splitlines() if l.startswith("bw_efficiency")][0]
        assert abs(float(bw_line.split("=")[1].split()[0]) - 0.70) < 0.03

    def test_missing_file_errors(self, capsys):
        assert main(["calibrate", "/nonexistent/meas.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_line_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("1,2\n")
        assert main(["calibrate", str(path)]) == 2


class TestLint:
    def test_clean_preset_exits_zero(self, capsys):
        assert main(["lint", "c2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_preset_exits_one(self, capsys):
        assert main(["lint", "gpt-neo-2.7b"]) == 1
        out = capsys.readouterr().out
        assert "shape/vocab-divisible" in out
        assert "fix: set vocab_size" in out

    def test_json_output(self, capsys):
        import json

        assert main(["lint", "gpt-neo-2.7b", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert any(
            d["rule_id"] == "shape/vocab-divisible"
            for d in payload["diagnostics"]
        )

    def test_json_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "model.json"
        cfg.write_text(
            '{"name": "bad", "hidden_size": 2560, "num_heads": 32,'
            ' "num_layers": 32, "vocab_size": 50257, "tp_degree": 4}'
        )
        assert main(["lint", str(cfg)]) == 1
        out = capsys.readouterr().out
        assert "shape/head-alignment" in out
        assert "shape/vocab-divisible" in out

    def test_min_severity_filters(self, capsys):
        assert main(["lint", "gpt-neo-2.7b", "--min-severity", "error"]) == 1
        out = capsys.readouterr().out
        assert "shape/vocab-divisible" not in out

    def test_self_lint_repo_is_clean(self, capsys):
        assert main(["lint", "--self"]) == 0
        assert "self-lint" in capsys.readouterr().out

    def test_self_lint_fixture_fails(self, capsys):
        from pathlib import Path

        fixture = str(
            Path(__file__).parent
            / "analysis" / "fixtures" / "scalar_loop_violation.py"
        )
        assert main(["lint", "--self", fixture]) == 1
        assert "self/scalar-eval-in-loop" in capsys.readouterr().out

    def test_missing_target_errors(self, capsys):
        assert main(["lint"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_errors(self, capsys):
        assert main(["lint", "no-such-model"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_extra_positionals_without_self_error(self, capsys):
        assert main(["lint", "c2", "extra.py"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_flow_lint_repo_is_clean(self, capsys):
        assert main(["lint", "--flow"]) == 0
        assert "flow-lint" in capsys.readouterr().out

    def test_flow_lint_fixture_fails(self, capsys):
        from pathlib import Path

        fixture = str(
            Path(__file__).parent
            / "analysis" / "fixtures" / "flow_unit_violation.py"
        )
        assert main(["lint", "--flow", fixture]) == 2
        assert "flow/unit-mismatch" in capsys.readouterr().out

    def test_self_lint_includes_flow_rules(self, capsys):
        from pathlib import Path

        fixture = str(
            Path(__file__).parent
            / "analysis" / "fixtures" / "flow_unit_violation.py"
        )
        assert main(["lint", "--self", fixture]) == 2
        assert "flow/unit-mismatch" in capsys.readouterr().out

    def test_sarif_format(self, capsys):
        import json

        assert main(["lint", "gpt-neo-2.7b", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert any(
            r["ruleId"] == "shape/vocab-divisible" for r in run["results"]
        )

    def test_sarif_format_flow(self, capsys):
        import json
        from pathlib import Path

        fixture = str(
            Path(__file__).parent
            / "analysis" / "fixtures" / "flow_unit_violation.py"
        )
        assert main(["lint", "--flow", fixture, "--format", "sarif"]) == 2
        [run] = json.loads(capsys.readouterr().out)["runs"]
        [result] = run["results"]
        assert result["ruleId"] == "flow/unit-mismatch"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startColumn"] >= 1


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestRun:
    def test_basic_sweep_passes(self, capsys):
        assert main(["run", "fig14", "table2"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "2/2 experiments" in out

    def test_unknown_id_errors(self, capsys):
        assert main(["run", "fig999"]) == 2
        assert "unknown experiment id" in capsys.readouterr().err

    def test_resume_requires_journal(self, capsys):
        assert main(["run", "fig14", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_persistent_fault_fails_sweep(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"site": "runner.experiment", '
            '"match": "fig5", "times": 0}]}'
        )
        assert main(["run", "fig14", "fig5", "--inject-faults", str(plan)]) == 1
        out = capsys.readouterr().out
        assert "chaos mode" in out
        assert "ERROR" in out and "FaultInjectionError" in out
        assert "injected fault(s) fired" in out

    def test_transient_fault_absorbed_by_retry(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"site": "runner.experiment", '
            '"match": "fig5", "times": 1}]}'
        )
        assert main(
            ["run", "fig14", "fig5", "--inject-faults", str(plan),
             "--retries", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 attempts" in out
        assert "chaos: 1 injected fault(s) fired" in out

    def test_journal_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"site": "runner.experiment", '
            '"match": "fig5", "times": 0}]}'
        )
        assert main(
            ["run", "fig14", "fig5", "--journal", str(journal),
             "--inject-faults", str(plan)]
        ) == 1
        capsys.readouterr()

        # Second invocation without faults: fig14 restored, fig5 re-run.
        assert main(
            ["run", "fig14", "fig5", "--journal", str(journal), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "resuming:" in out
        assert "[restored]" in out
        assert "1 experiment(s) restored from journal, 1 executed" in out

    def test_bad_fault_plan_errors(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"faults": [{"site": "x", "kind": "nuke"}]}')
        assert main(["run", "fig14", "--inject-faults", str(plan)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_timeout_flag(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"site": "runner.experiment", "match": "fig5", '
            '"kind": "delay", "delay_s": 5.0, "times": 0}]}'
        )
        assert main(
            ["run", "fig5", "--inject-faults", str(plan),
             "--timeout", "0.3"]
        ) == 1
        out = capsys.readouterr().out
        assert "TIMEOUT" in out and "TaskTimeoutError" in out


class TestCalibrateResume:
    def _write_csv(self, tmp_path):
        from repro.gpu.gemm_model import GemmModel

        gen = GemmModel("A100", bw_efficiency=0.70)
        rows = ["m,n,k,latency_s"]
        for m, n, k in [(2048, 2048, 64), (4096, 4096, 128), (2048, 2048, 80)]:
            rows.append(f"{m},{n},{k},{gen.latency(m, n, k)}")
        path = tmp_path / "meas.csv"
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_resume_requires_journal(self, tmp_path, capsys):
        path = self._write_csv(tmp_path)
        assert main(["calibrate", str(path), "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_journal_then_resume_skips_fits(self, tmp_path, capsys):
        path = self._write_csv(tmp_path)
        journal = tmp_path / "cal.jsonl"
        assert main(["calibrate", str(path), "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(
            ["calibrate", str(path), "--journal", str(journal), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "resuming:" in out
        assert "2 completed unit(s)" in out
        assert "bw_efficiency" in out


class TestObservability:
    def test_run_with_trace_streams_jsonl(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(["run", "fig14", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"span(s) written to {trace}" in out
        lines = trace.read_text().splitlines()
        assert lines
        names = {json.loads(line)["name"] for line in lines}
        assert "runner.experiment" in names
        assert "task.attempt" in names

    def test_run_with_metrics_prints_registry(self, capsys):
        assert main(["run", "fig14", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "runner.experiments" in out
        assert "tasks.attempts.ok" in out

    def test_traced_chaos_run_then_report(self, tmp_path, capsys):
        """The acceptance loop: trace a fault-injected journaled sweep,
        then `repro report trace.jsonl` aggregates it without error."""
        trace = tmp_path / "trace.jsonl"
        journal = tmp_path / "sweep.jsonl"
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"site": "runner.experiment", '
            '"match": "fig5", "times": 1}]}'
        )
        assert main(
            ["run", "fig14", "fig5", "--inject-faults", str(plan),
             "--retries", "2", "--journal", str(journal),
             "--trace", str(trace), "--metrics"]
        ) == 0
        capsys.readouterr()

        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        for phase in ("task", "runner", "fault", "journal"):
            assert phase in out, f"phase {phase!r} missing from report"
        assert "1 task(s) retried" in out
        assert "injected firing(s)" in out
        assert "checkpoint append(s)" in out

    def test_report_trace_honors_output_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "fig14", "--trace", str(trace)]) == 0
        capsys.readouterr()
        target = tmp_path / "report.txt"
        assert main(["report", str(trace), "--output", str(target)]) == 0
        assert "per-phase breakdown" in target.read_text()

    def test_report_missing_trace_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_bench_quick_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench-trace.jsonl"
        assert main(
            ["bench", "--quick", "--output", "-", "--trace", str(trace)]
        ) == 0
        assert trace.exists()
        assert "span(s) written" in capsys.readouterr().out

    def test_tracing_left_uninstalled_after_run(self, tmp_path):
        from repro.observability import current_recorder, tracing_enabled

        assert main(["run", "fig14", "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert not tracing_enabled()
        assert current_recorder() is None


class TestFigureGolden:
    def test_update_golden_writes_snapshot(self, tmp_path, capsys):
        import json

        assert main(
            ["figure", "fig14", "--update-golden", "--golden-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote golden snapshot" in out
        snap = json.loads((tmp_path / "fig14.json").read_text())
        assert snap["experiment"] == "fig14"
        assert snap["checksums"]
