"""Golden-regression wall: headline experiments must match snapshots.

The snapshots beside this file are generated with::

    repro figure <id> --update-golden

and pin the ranked winners plus per-column checksums of each headline
experiment.  Any numeric drift in the model fails here with a diff
naming the column (or winner) that moved.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.compare import CheckResult
from repro.harness.golden import (
    GOLDEN_EXPERIMENTS,
    compare_snapshot,
    load_snapshot,
    rank_column,
    snapshot_experiment,
    write_snapshot,
)
from repro.harness.results import ResultTable
from repro.harness.runner import ExperimentReport, run_experiment

GOLDEN_DIR = Path(__file__).parent


@pytest.mark.parametrize("exp_id", GOLDEN_EXPERIMENTS)
def test_headline_experiment_matches_golden(exp_id):
    stored = load_snapshot(exp_id, GOLDEN_DIR)
    report = run_experiment(exp_id)
    diffs = compare_snapshot(stored, report)
    assert not diffs, (
        f"golden regression in {exp_id} "
        f"(refresh with 'repro figure {exp_id} --update-golden' if "
        "intentional):\n" + "\n".join(f"  - {d}" for d in diffs)
    )


# -- comparator unit tests --------------------------------------------------------


def _report(tflops=(150.0, 200.0, 120.0)) -> ExperimentReport:
    table = ResultTable("demo", ["shape", "tflops", "latency_ms"])
    for i, v in enumerate(tflops):
        table.add(f"s{i}", v, 1000.0 / v)
    return ExperimentReport(
        id="demo",
        title="demo experiment",
        paper_ref="Fig 0",
        table=table,
        check=CheckResult(passed=True, details="ok"),
    )


def test_snapshot_self_compares_clean():
    report = _report()
    assert compare_snapshot(snapshot_experiment(report), report) == []


def test_rank_column_prefers_throughput():
    report = _report()
    assert rank_column(report.table) == ("tflops", False)
    snap = snapshot_experiment(report)
    assert snap["ranked_by"] == "tflops"
    assert snap["winners"][0]["shape"] == "s1"  # 200 TFLOP/s wins


def test_rank_column_falls_back_to_latency_minimize():
    table = ResultTable("t", ["x", "latency_ms"])
    table.add("a", 2.0)
    table.add("b", 1.0)
    assert rank_column(table) == ("latency_ms", True)


def test_numeric_drift_names_the_column():
    stored = snapshot_experiment(_report())
    drifted = _report(tflops=(150.0, 200.0, 121.0))
    diffs = compare_snapshot(stored, drifted)
    assert diffs
    assert any("'tflops'" in d and "checksum" in d for d in diffs)
    # latency_ms derives from tflops, so it must be flagged too
    assert any("'latency_ms'" in d for d in diffs)


def test_winner_flip_reports_the_ranked_rows():
    stored = snapshot_experiment(_report())
    flipped = _report(tflops=(250.0, 200.0, 120.0))  # s0 now beats s1
    diffs = compare_snapshot(stored, flipped)
    assert any("winner #1" in d for d in diffs)


def test_changed_columns_short_circuits():
    stored = snapshot_experiment(_report())
    report = _report()
    report.table.columns[-1] = "renamed"
    diffs = compare_snapshot(stored, report)
    assert len(diffs) == 1 and "columns changed" in diffs[0]


def test_row_count_and_check_flip_are_reported():
    report = _report()
    stored = snapshot_experiment(report)
    shrunk = _report(tflops=(150.0, 200.0))
    shrunk.check = CheckResult(passed=False, details="broke")
    diffs = compare_snapshot(stored, shrunk)
    assert any("row count" in d for d in diffs)
    assert any("check flipped" in d for d in diffs)


def test_model_version_mismatch_leads_the_diff(monkeypatch):
    stored = snapshot_experiment(_report())
    stored["model_version"] = "0:stale"
    diffs = compare_snapshot(stored, _report())
    assert diffs and "model_version changed" in diffs[0]
    assert "--update-golden" in diffs[0]


def test_write_and_load_roundtrip(tmp_path):
    report = _report()
    path = write_snapshot(report, tmp_path)
    assert path == tmp_path / "demo.json"
    assert load_snapshot("demo", tmp_path) == snapshot_experiment(report)


def test_missing_snapshot_says_how_to_generate(tmp_path):
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError, match="--update-golden"):
        load_snapshot("fig999", tmp_path)
