"""Tests for the decode batching analyzer."""

import pytest

from repro.core.config import get_model
from repro.errors import ConfigError
from repro.inference.batching import BatchingAnalyzer


@pytest.fixture(scope="module")
def analyzer():
    return BatchingAnalyzer("A100-80GB")


@pytest.fixture(scope="module")
def cfg():
    return get_model("pythia-2.8b", microbatch=1)


class TestPoint:
    def test_fields(self, analyzer, cfg):
        pt = analyzer.point(cfg, batch=4)
        assert pt.batch == 4
        assert pt.per_token_ms > 0
        assert pt.tokens_per_s == pytest.approx(4 / (pt.per_token_ms / 1e3))

    def test_invalid_batch_raises(self, analyzer, cfg):
        with pytest.raises(ConfigError):
            analyzer.point(cfg, batch=0)


class TestSweep:
    def test_power_of_two_grid(self, analyzer, cfg):
        points = analyzer.sweep(cfg, max_batch=64)
        assert [p.batch for p in points] == [1, 2, 4, 8, 16, 32, 64]

    def test_throughput_monotone_in_batch(self, analyzer, cfg):
        points = analyzer.sweep(cfg, max_batch=64)
        tps = [p.tokens_per_s for p in points]
        assert tps == sorted(tps)

    def test_batching_amortizes_weights(self, analyzer, cfg):
        # Early doublings nearly double throughput: the weight stream
        # is shared across the batch.
        points = {p.batch: p for p in analyzer.sweep(cfg, max_batch=8)}
        assert points[2].tokens_per_s > 1.7 * points[1].tokens_per_s

    def test_per_token_latency_rises_with_batch(self, analyzer, cfg):
        points = analyzer.sweep(cfg, max_batch=64)
        assert points[-1].per_token_ms > points[0].per_token_ms

    def test_per_stream_throughput_falls(self, analyzer, cfg):
        points = analyzer.sweep(cfg, max_batch=64)
        assert points[-1].throughput_per_stream < points[0].throughput_per_stream


class TestFeasibility:
    def test_small_model_allows_big_batches(self, analyzer):
        small = get_model("pythia-410m", microbatch=1)
        assert analyzer.max_feasible_batch(small) >= 64

    def test_long_context_shrinks_feasible_batch(self, analyzer, cfg):
        short = analyzer.max_feasible_batch(cfg, context_len=512)
        long = analyzer.max_feasible_batch(cfg, context_len=16384)
        assert long < short

    def test_oversized_model_returns_zero(self):
        analyzer = BatchingAnalyzer("A100")  # 40 GB
        big = get_model("llama2-70b", microbatch=1)
        assert analyzer.max_feasible_batch(big) == 0


class TestKnee:
    def test_knee_is_on_grid(self, analyzer, cfg):
        knee = analyzer.knee(cfg)
        assert knee >= 1 and (knee & (knee - 1)) == 0  # power of two

    def test_longer_context_earlier_knee(self, analyzer, cfg):
        # More per-sequence KV traffic -> batching pays off less, knee
        # arrives no later.
        short = analyzer.knee(cfg, context_len=256)
        long = analyzer.knee(cfg, context_len=8192)
        assert long <= short

    def test_bad_threshold_raises(self, analyzer, cfg):
        with pytest.raises(ConfigError):
            analyzer.knee(cfg, threshold=2.5)
