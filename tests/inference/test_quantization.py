"""Tests for weight-only quantized inference."""

import pytest

from repro.core.config import get_model
from repro.errors import ConfigError
from repro.inference.quantization import SCHEMES, QuantizedInferenceModel


@pytest.fixture(scope="module")
def model():
    return QuantizedInferenceModel("A100")


@pytest.fixture(scope="module")
def cfg():
    return get_model("pythia-2.8b")


class TestDecodeStep:
    def test_fp16_scheme_matches_weight_bytes(self, model, cfg, a100):
        step = model.decode_step(cfg, 512, scheme="fp16")
        expected = cfg.param_count() * 2 / (a100.mem_bw_bytes_per_s() * 0.82)
        assert step.weight_s == pytest.approx(expected)
        assert step.dequant_s == 0.0

    def test_int8_halves_weight_traffic(self, model, cfg):
        fp16 = model.decode_step(cfg, 512, scheme="fp16")
        int8 = model.decode_step(cfg, 512, scheme="int8")
        assert int8.weight_s == pytest.approx(fp16.weight_s / 2)
        assert int8.dequant_s > 0

    def test_int4_quarter_traffic(self, model, cfg):
        fp16 = model.decode_step(cfg, 512, scheme="fp16")
        int4 = model.decode_step(cfg, 512, scheme="int4")
        assert int4.weight_s == pytest.approx(fp16.weight_s / 4)

    def test_kv_cache_unchanged(self, model, cfg):
        # W*A16 schemes keep the KV cache fp16.
        fp16 = model.decode_step(cfg, 1024, scheme="fp16")
        int8 = model.decode_step(cfg, 1024, scheme="int8")
        assert int8.kv_cache_s == fp16.kv_cache_s

    def test_unknown_scheme_raises(self, model, cfg):
        with pytest.raises(ConfigError, match="unknown scheme"):
            model.decode_step(cfg, 512, scheme="fp8")

    def test_invalid_context_raises(self, model, cfg):
        with pytest.raises(ConfigError):
            model.decode_step(cfg, 0)


class TestSpeedup:
    def test_int8_speedup_below_2x(self, model, cfg):
        # KV cache + launch overhead dilute the 2x weight saving.
        s = model.speedup_vs_fp16(cfg, 512, "int8")
        assert 1.2 < s < 2.0

    def test_int4_beats_int8(self, model, cfg):
        assert model.speedup_vs_fp16(cfg, 512, "int4") > model.speedup_vs_fp16(
            cfg, 512, "int8"
        )

    def test_long_context_dilutes_speedup(self, model, cfg):
        # At huge contexts the (unquantized) KV cache dominates.
        short = model.speedup_vs_fp16(cfg, 256, "int8")
        long = model.speedup_vs_fp16(cfg, 32768, "int8")
        assert long < short


class TestMemoryHeadroom:
    def test_quantization_extends_context(self, model):
        cfg = get_model("gpt3-6.7b", microbatch=1)
        fp16_ctx = model.max_context_fitting(cfg, "fp16")
        int8_ctx = model.max_context_fitting(cfg, "int8")
        assert int8_ctx > fp16_ctx

    def test_oversized_model_returns_zero(self, model):
        cfg = get_model("llama2-70b", microbatch=1)
        assert model.max_context_fitting(cfg, "fp16") == 0

    def test_schemes_table(self):
        assert SCHEMES == {"fp16": 16, "int8": 8, "int4": 4}
