"""Tests for the prefill/decode inference latency model."""

import pytest

from repro.core.config import get_model
from repro.errors import ConfigError
from repro.inference.latency import InferenceModel


@pytest.fixture(scope="module")
def model():
    return InferenceModel("A100")


@pytest.fixture(scope="module")
def cfg():
    return get_model("pythia-1b")


class TestPrefill:
    def test_reuses_forward_gemms(self, model, cfg):
        # Sec VII-C claim 1: prefill latency == the forward-pass latency
        # of the same config (same underlying GEMMs).
        pre = model.prefill(cfg)
        assert pre.latency_s == pytest.approx(model.layer_model.model_latency(cfg))

    def test_shorter_prompt_faster(self, model, cfg):
        assert model.prefill(cfg, 128).latency_s < model.prefill(cfg, 2048).latency_s

    def test_tokens_per_s(self, model, cfg):
        pre = model.prefill(cfg, 512)
        assert pre.tokens_per_s == pytest.approx(pre.tokens / pre.latency_s)

    def test_bad_prompt_raises(self, model, cfg):
        with pytest.raises(ConfigError):
            model.prefill(cfg, 0)


class TestDecode:
    def test_components_positive(self, model, cfg):
        step = model.decode_step(cfg, 512)
        assert step.weight_s > 0
        assert step.kv_cache_s > 0
        assert step.overhead_s > 0
        assert step.gemm_s > 0
        assert step.latency_s > 0

    def test_weight_streaming_floor(self, model, cfg, a100):
        # Decode can never beat reading every weight once.
        step = model.decode_step(cfg, 512)
        weight_bytes = cfg.param_count() * 2
        floor = weight_bytes / a100.mem_bw_bytes_per_s()
        assert step.latency_s > floor

    def test_kv_cache_grows_with_context(self, model, cfg):
        short = model.decode_step(cfg, 128)
        long = model.decode_step(cfg, 4096)
        assert long.kv_cache_s > short.kv_cache_s
        assert long.latency_s > short.latency_s

    def test_overhead_scales_with_layers(self, model):
        shallow = get_model("pythia-1b")     # 16 layers
        deep = get_model("pythia-410m")      # 24 layers
        assert model.decode_step(deep, 512).overhead_s > model.decode_step(
            shallow, 512
        ).overhead_s

    def test_tokens_per_s(self, model, cfg):
        step = model.decode_step(cfg, 512)
        assert step.tokens_per_s == pytest.approx(1.0 / step.latency_s)

    def test_bad_context_raises(self, model, cfg):
        with pytest.raises(ConfigError):
            model.decode_step(cfg, 0)


class TestGenerate:
    def test_total_is_prefill_plus_decode(self, model, cfg):
        total = model.generate_latency(cfg, prompt_len=128, new_tokens=64)
        pre = model.prefill(cfg.with_overrides(microbatch=1), prompt_len=128)
        assert total > pre.latency_s
        per_token = (total - pre.latency_s) / 64
        step = model.decode_step(cfg, context_len=128 + 32)
        assert per_token == pytest.approx(step.latency_s, rel=0.05)

    def test_more_tokens_longer(self, model, cfg):
        a = model.generate_latency(cfg, new_tokens=32)
        b = model.generate_latency(cfg, new_tokens=256)
        assert b > a

    def test_bad_tokens_raises(self, model, cfg):
        with pytest.raises(ConfigError):
            model.generate_latency(cfg, new_tokens=0)


class TestShapeSensitivity:
    def test_bigger_models_slower(self, model):
        small = model.per_token_ms(get_model("pythia-160m"))
        big = model.per_token_ms(get_model("pythia-6.9b"))
        assert big > 5 * small

    def test_efficient_training_shape_infers_efficiently(self, model):
        # Sec VII-C claim: the same shape pathologies transfer from
        # training to inference.  Per *parameter*, the well-shaped
        # Pythia-1B decodes faster than the deep, narrow 410M.
        p410 = get_model("pythia-410m")
        p1b = get_model("pythia-1b")
        ms_per_gparam_410 = model.per_token_ms(p410) / (p410.param_count() / 1e9)
        ms_per_gparam_1b = model.per_token_ms(p1b) / (p1b.param_count() / 1e9)
        assert ms_per_gparam_1b < ms_per_gparam_410
