"""Tests for the Pythia suite and the Fig 13 trend analysis."""

import pytest

from repro.errors import ExperimentError
from repro.inference.pythia import (
    OFF_TREND_EXPECTED,
    PYTHIA_SUITE,
    TrendPoint,
    pythia_configs,
    run_suite,
    trend_analysis,
)


class TestSuite:
    def test_size_ordered(self):
        configs = pythia_configs()
        params = [c.param_count() for c in configs]
        assert params == sorted(params)

    def test_suite_members(self):
        assert "pythia-410m" in PYTHIA_SUITE
        assert "pythia-1b" in PYTHIA_SUITE
        assert len(PYTHIA_SUITE) == 8


class TestTrendAnalysis:
    def synthetic(self, slope=1.0, n=6):
        rows = []
        for i in range(n):
            params = 10**8 * 2**i
            rows.append((f"m{i}", params, 0.001 * params**slope / 1e5))
        return rows

    def test_perfect_power_law_zero_residuals(self):
        points = trend_analysis(self.synthetic())
        for p in points:
            assert p.residual == pytest.approx(0.0, abs=1e-9)
            assert not p.off_trend

    def test_outlier_detected(self):
        rows = self.synthetic()
        name, params, lat = rows[3]
        rows[3] = (name, params, lat * 1.5)
        points = trend_analysis(rows, fit_exclude=[name])
        flagged = {p.name for p in points if p.off_trend}
        assert flagged == {name}
        assert [p for p in points if p.name == name][0].residual > 0

    def test_fit_exclude_does_not_drop_points(self):
        points = trend_analysis(self.synthetic(), fit_exclude=["m0"])
        assert len(points) == 6

    def test_too_few_models_raises(self):
        with pytest.raises(ExperimentError):
            trend_analysis(self.synthetic(n=2))

    def test_too_few_after_exclusion_raises(self):
        with pytest.raises(ExperimentError):
            trend_analysis(self.synthetic(n=4), fit_exclude=["m0", "m1"])

    def test_nonpositive_latency_raises(self):
        rows = self.synthetic()
        rows[0] = ("m0", rows[0][1], -1.0)
        with pytest.raises(ExperimentError):
            trend_analysis(rows)


class TestFig13Reproduction:
    def test_off_trend_pair_and_signs(self):
        points = {p.name: p for p in run_suite()}
        # Paper: 410M slower than trend, 1B faster than trend.
        assert points["pythia-410m"].residual > 0.05
        assert points["pythia-1b"].residual < -0.05

    def test_off_trend_pair_most_extreme(self):
        points = run_suite()
        on_trend = [p for p in points if p.name not in OFF_TREND_EXPECTED]
        off_trend = [p for p in points if p.name in OFF_TREND_EXPECTED]
        max_on = max(abs(p.residual) for p in on_trend)
        assert all(abs(p.residual) > max_on for p in off_trend)

    def test_trend_point_properties(self):
        tp = TrendPoint(name="x", params=10**9, latency_ms=11.0, predicted_ms=10.0)
        assert tp.residual == pytest.approx(0.0953, rel=0.01)
        assert tp.off_trend
