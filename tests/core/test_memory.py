"""Tests for the per-GPU memory accounting."""

import pytest

from repro.core.config import get_model
from repro.core.memory import (
    MemoryBudget,
    activation_bytes_per_layer,
    inference_bytes,
    max_microbatch,
    training_bytes,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def cfg():
    return get_model("gpt3-2.7b", microbatch=1)


class TestActivations:
    def test_flash_removes_attention_term(self, cfg):
        plain = activation_bytes_per_layer(cfg)
        flash = activation_bytes_per_layer(cfg, flash_attention=True)
        assert flash < plain
        s, b, a = cfg.seq_len, cfg.microbatch, cfg.num_heads
        assert plain - flash == pytest.approx(5.0 * a * s * s * b)

    def test_tp_divides(self, cfg):
        sharded = cfg.with_overrides(tp_degree=4)
        assert activation_bytes_per_layer(sharded) == pytest.approx(
            activation_bytes_per_layer(cfg) / 4
        )

    def test_scales_with_microbatch(self, cfg):
        b4 = cfg.with_overrides(microbatch=4)
        assert activation_bytes_per_layer(b4) == pytest.approx(
            4 * activation_bytes_per_layer(cfg)
        )


class TestTraining:
    def test_adam_states_dominate_small_batch(self, cfg):
        usage = training_bytes(cfg)
        # 2.65B params x 16 B = ~42 GB of states.
        assert usage.weights_and_optimizer == pytest.approx(
            cfg.param_count() * 16, rel=1e-6
        )
        assert usage.total > 40e9

    def test_sharding_reduces_footprint(self, cfg):
        full = training_bytes(cfg).total
        sharded = training_bytes(cfg.with_overrides(tp_degree=4), pipeline_stages=2).total
        assert sharded < full / 4

    def test_recompute_shrinks_activations(self, cfg):
        big = cfg.with_overrides(microbatch=8)
        plain = training_bytes(big).activations
        recomp = training_bytes(big, recompute_activations=True).activations
        assert recomp < plain / 5

    def test_invalid_stages_raise(self, cfg):
        with pytest.raises(ConfigError):
            training_bytes(cfg, pipeline_stages=0)


class TestInference:
    def test_weights_fp16(self, cfg):
        usage = inference_bytes(cfg, context_len=2048)
        assert usage.weights_and_optimizer == pytest.approx(cfg.param_count() * 2)

    def test_kv_cache_grows_with_context(self, cfg):
        short = inference_bytes(cfg, context_len=512).kv_cache
        long = inference_bytes(cfg, context_len=4096).kv_cache
        assert long == pytest.approx(8 * short)

    def test_gqa_shrinks_kv(self):
        gqa = get_model("llama2-70b", microbatch=1)
        mha = gqa.with_overrides(num_kv_heads=64)
        assert inference_bytes(gqa, 4096).kv_cache == pytest.approx(
            inference_bytes(mha, 4096).kv_cache / 8
        )

    def test_invalid_context_raises(self, cfg):
        with pytest.raises(ConfigError):
            inference_bytes(cfg, context_len=0)

    def test_window_caps_kv_footprint(self):
        mistral = get_model("mistral-7b", microbatch=1)
        at_window = inference_bytes(mistral, context_len=4096).kv_cache
        beyond = inference_bytes(mistral, context_len=65536).kv_cache
        assert beyond == pytest.approx(at_window)


class TestBudget:
    def test_for_gpu(self):
        budget = MemoryBudget.for_gpu("A100")
        assert budget.capacity_bytes == pytest.approx(40e9)
        assert budget.usable_bytes < budget.capacity_bytes

    def test_fits(self, cfg):
        tiny = MemoryBudget(capacity_bytes=1e9)
        assert not tiny.fits(training_bytes(cfg))

    def test_27b_needs_sharding_on_a100_40(self, cfg):
        # The classic reality: a 2.7B model's Adam states alone exceed
        # one 40 GB A100 at any microbatch.
        budget = MemoryBudget.for_gpu("A100")
        assert max_microbatch(cfg, budget) == 0
        assert max_microbatch(cfg.with_overrides(tp_degree=4), budget, pipeline_stages=2) >= 1

    def test_max_microbatch_monotone_in_memory(self, cfg):
        sharded = cfg.with_overrides(tp_degree=8)
        small = max_microbatch(sharded, MemoryBudget.for_gpu("A100"), pipeline_stages=4)
        big = max_microbatch(
            sharded, MemoryBudget.for_gpu("A100-80GB"), pipeline_stages=4
        )
        assert big >= small >= 1

    def test_recompute_allows_bigger_batch(self, cfg):
        sharded = cfg.with_overrides(tp_degree=8)
        budget = MemoryBudget.for_gpu("A100")
        plain = max_microbatch(sharded, budget, pipeline_stages=4)
        recomp = max_microbatch(
            sharded, budget, pipeline_stages=4, recompute_activations=True
        )
        assert recomp > plain
