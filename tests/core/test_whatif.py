"""Tests for the what-if sensitivity analyzer."""

import pytest

from repro.core.config import get_model
from repro.core.memory import MemoryBudget
from repro.core.whatif import WhatIfAnalyzer


@pytest.fixture(scope="module")
def analyzer():
    return WhatIfAnalyzer("A100")


class TestKnobs:
    def test_heads_is_top_knob_for_gpt3_27b(self, analyzer):
        # The paper's whole case study: for this model the head count is
        # the payoff.
        ranked = analyzer.rank(get_model("gpt3-2.7b"))
        assert ranked[0].knob == "heads"
        assert ranked[0].speedup > 1.15
        assert "a: 32 ->" in ranked[0].best_move

    def test_vocab_knob_for_unpadded_model(self, analyzer):
        cfg = get_model("gpt-neo-2.7b")  # v = 50257
        sens = {s.knob: s for s in analyzer.rank(cfg)}
        assert sens["vocabulary"].speedup > 1.0
        assert "50304" in sens["vocabulary"].best_move

    def test_vocab_knob_noop_when_aligned(self, analyzer):
        sens = {s.knob: s for s in analyzer.rank(get_model("gpt3-2.7b"))}
        assert sens["vocabulary"].speedup == 1.0

    def test_swiglu_knob_only_for_swiglu_models(self, analyzer):
        classic = {s.knob: s for s in analyzer.rank(get_model("gpt3-2.7b"))}
        assert classic["swiglu_width"].best_move == "not a SwiGLU model"

    def test_microbatch_respects_memory_budget(self):
        # A 2.7B model cannot double its batch on a 40GB card (its Adam
        # states alone don't fit), so the knob must report the gate.
        tight = WhatIfAnalyzer("A100", memory_budget=MemoryBudget(1e9))
        sens = {s.knob: s for s in tight.rank(get_model("gpt3-2.7b"))}
        assert sens["microbatch"].speedup == 1.0
        assert "memory budget" in sens["microbatch"].best_move

    def test_microbatch_helps_when_memory_allows(self):
        roomy = WhatIfAnalyzer("A100", memory_budget=MemoryBudget(10e12))
        cfg = get_model("gpt3-2.7b", microbatch=1)
        sens = {s.knob: s for s in roomy.rank(cfg)}
        assert sens["microbatch"].speedup > 1.0


class TestRanking:
    def test_sorted_descending(self, analyzer):
        ranked = analyzer.rank(get_model("gpt-neo-2.7b"))
        speedups = [s.speedup for s in ranked]
        assert speedups == sorted(speedups, reverse=True)

    def test_all_knobs_present(self, analyzer):
        knobs = {s.knob for s in analyzer.rank(get_model("gpt3-2.7b"))}
        assert knobs == {"heads", "vocabulary", "microbatch", "hidden", "swiglu_width"}

    def test_speedups_never_below_one(self, analyzer):
        # Each knob reports its best move or "keep as is" (1.0).
        for s in analyzer.rank(get_model("c2")):
            assert s.speedup >= 1.0

    def test_report_text(self, analyzer):
        text = analyzer.report(get_model("gpt3-2.7b"))
        assert "heads" in text and "A100" in text

    def test_worthwhile_flag(self, analyzer):
        ranked = analyzer.rank(get_model("gpt3-2.7b"))
        best = ranked[0]
        assert best.worthwhile
        assert "not worthwhile" not in best.describe()
