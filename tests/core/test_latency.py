"""Tests for the layer/model latency composition."""

import pytest

from repro.core.config import get_model
from repro.core.latency import GEMM_COMPONENTS, LatencyBreakdown, LayerLatencyModel


@pytest.fixture(scope="module")
def model():
    return LayerLatencyModel("A100")


class TestLatencyBreakdown:
    def test_add_and_total(self):
        bd = LatencyBreakdown()
        bd.add("a", 1.0)
        bd.add("b", 2.0)
        bd.add("a", 0.5)
        assert bd.total_s == pytest.approx(3.5)
        assert bd.components["a"] == pytest.approx(1.5)

    def test_merge_multiplies(self):
        a = LatencyBreakdown()
        a.add("x", 1.0)
        a.flops = 10
        b = LatencyBreakdown()
        b.merge(a, times=3)
        assert b.components["x"] == pytest.approx(3.0)
        assert b.flops == 30

    def test_gemm_fraction(self):
        bd = LatencyBreakdown()
        bd.add("qkv_transform", 3.0)
        bd.add("softmax", 1.0)
        assert bd.gemm_fraction == pytest.approx(0.75)

    def test_proportions_sum_to_one(self, model, medium_config):
        props = model.layer_breakdown(medium_config).proportions()
        assert sum(props.values()) == pytest.approx(1.0)

    def test_summary_text(self, model, medium_config):
        text = model.layer_breakdown(medium_config).summary()
        assert "GEMM share" in text and "total" in text


class TestLayerComposition:
    def test_contains_all_classic_components(self, model, medium_config):
        bd = model.layer_breakdown(medium_config)
        expected_gemms = {
            "qkv_transform",
            "attention_score",
            "attention_over_value",
            "attention_projection",
            "mlp_h_to_4h",
            "mlp_4h_to_h",
        }
        assert expected_gemms <= set(bd.components)
        assert {"layernorm", "softmax", "residual", "activation"} <= set(bd.components)

    def test_rotary_adds_component(self, model):
        cfg = get_model("pythia-1b")
        assert "rotary" in model.layer_breakdown(cfg).components

    def test_swiglu_has_three_mlp_gemms(self, model):
        bd = model.layer_breakdown(get_model("llama2-7b"))
        assert {"mlp_gate", "mlp_up", "mlp_down"} <= set(bd.components)

    def test_flops_match_gemm_mapping(self, model, medium_config):
        from repro.core.gemms import layer_gemms

        bd = model.layer_breakdown(medium_config)
        assert bd.flops == sum(op.flops for op in layer_gemms(medium_config))

    def test_layer_latency_positive(self, model, medium_config):
        assert model.layer_latency(medium_config) > 0


class TestFlashVariant:
    def test_flash_replaces_attention_components(self, medium_config):
        flash = LayerLatencyModel("A100", flash_attention=True)
        bd = flash.layer_breakdown(medium_config)
        assert "flash_attention" in bd.components
        assert "attention_score" not in bd.components
        assert "softmax" not in bd.components

    def test_flash_is_faster_for_long_sequences(self, medium_config):
        base = LayerLatencyModel("A100").layer_latency(medium_config)
        flash = LayerLatencyModel("A100", flash_attention=True).layer_latency(
            medium_config
        )
        assert flash < base

    def test_flash_component_counts_as_gemm(self):
        assert "flash_attention" in GEMM_COMPONENTS


class TestModelComposition:
    def test_model_includes_logit_and_embedding(self, model, medium_config):
        bd = model.model_breakdown(medium_config)
        assert "logit" in bd.components
        assert "embedding" in bd.components

    def test_model_latency_scales_with_layers(self, model, medium_config):
        shallow = medium_config.with_overrides(num_layers=12)
        deep = medium_config.with_overrides(num_layers=24)
        ratio = model.model_latency(deep) / model.model_latency(shallow)
        assert 1.7 < ratio < 2.05

    def test_tokens_per_second(self, model, medium_config):
        tps = model.tokens_per_second(medium_config)
        assert tps == pytest.approx(
            medium_config.tokens_per_microbatch / model.model_latency(medium_config)
        )

    def test_mfu_in_unit_interval(self, model, medium_config):
        assert 0.0 < model.mfu(medium_config) < 1.0

    def test_larger_model_higher_mfu(self, model):
        # Bigger GEMMs use the GPU better — the paper's Sec I point.
        small = get_model("pythia-160m")
        large = get_model("gpt3-6.7b")
        assert model.mfu(large) > model.mfu(small)


class TestShapeSensitivity:
    """The headline behaviours the latency model must reproduce."""

    def test_c1_slower_than_default(self, model):
        assert model.layer_latency(get_model("c1")) > model.layer_latency(
            get_model("gpt3-2.7b")
        )

    def test_recommended_retune_faster(self, model):
        # Sec VI-B: decreasing heads to 20 speeds up GPT-3 2.7B.
        base = get_model("gpt3-2.7b")
        retuned = base.with_overrides(num_heads=20)
        speedup = model.model_latency(base) / model.model_latency(retuned)
        assert speedup > 1.10

    def test_tp_reduces_per_rank_latency(self, model):
        base = get_model("gpt3-6.7b")
        t4 = base.with_overrides(tp_degree=4)
        assert model.layer_latency(t4) < model.layer_latency(base)
