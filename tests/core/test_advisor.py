"""Tests for the shape advisor (the paper's case-study methodology)."""

import pytest

from repro.core.advisor import ShapeAdvisor
from repro.core.config import get_model
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def advisor():
    return ShapeAdvisor("A100")


class TestGPT3Retune:
    """The Sec VI-B marquee case: fixing GPT-3 2.7B's h/a = 80."""

    def test_best_proposal_speedup_in_paper_band(self, advisor):
        best = advisor.best(get_model("gpt3-2.7b"))
        assert best is not None
        # Paper claims 1.18x end-to-end, up to 39% single-layer.
        assert 1.10 <= best.speedup <= 1.60

    def test_best_proposal_reduces_heads(self, advisor):
        best = advisor.best(get_model("gpt3-2.7b"))
        assert best.config.num_heads < 32
        assert best.config.head_dim > 80

    def test_head_retunes_keep_params_exact(self, advisor):
        for prop in advisor.propose(get_model("gpt3-2.7b")):
            if "retune heads" in prop.rationale:
                assert prop.param_ratio == pytest.approx(1.0)

    def test_paper_suggested_a20_is_proposed(self, advisor):
        heads = {p.config.num_heads for p in advisor.propose(get_model("gpt3-2.7b"))}
        assert 20 in heads  # the fix the paper's text recommends

    def test_proposals_sorted_fastest_first(self, advisor):
        props = advisor.propose(get_model("gpt3-2.7b"))
        lats = [p.latency_s for p in props]
        assert lats == sorted(lats)


class TestVocabPadding:
    def test_unaligned_vocab_gets_padding_proposal(self, advisor):
        props = advisor.propose(get_model("gpt-neo-2.7b"))  # v = 50257
        vocab_props = [p for p in props if "pad vocabulary" in p.rationale]
        assert len(vocab_props) == 1
        assert vocab_props[0].config.vocab_size == 50304
        assert vocab_props[0].speedup > 1.0

    def test_aligned_vocab_gets_none(self, advisor):
        props = advisor.propose(get_model("gpt3-2.7b"))  # v = 50304
        assert not any("pad vocabulary" in p.rationale for p in props)


class TestSwiGLUCandidates:
    def test_swiglu_model_gets_dff_proposals(self, advisor):
        props = advisor.propose(get_model("llama2-7b"), max_param_increase=0.02)
        assert any("SwiGLU" in p.rationale for p in props)

    def test_classic_model_gets_no_dff_proposals(self, advisor):
        props = advisor.propose(get_model("gpt3-2.7b"))
        assert not any("SwiGLU" in p.rationale for p in props)


class TestConstraints:
    def test_param_budget_enforced(self, advisor):
        for prop in advisor.propose(get_model("gpt-neo-2.7b"), max_param_increase=0.01):
            assert prop.param_ratio <= 1.01 + 1e-9

    def test_negative_budget_raises(self, advisor):
        with pytest.raises(ConfigError):
            advisor.propose(get_model("gpt3-2.7b"), max_param_increase=-0.1)

    def test_top_limits_count(self, advisor):
        assert len(advisor.propose(get_model("gpt3-2.7b"), top=2)) <= 2

    def test_widen_candidate_controllable(self, advisor):
        cfg = get_model("gpt3-2.7b").with_overrides(hidden_size=2500, num_heads=20)
        # Rounding h up to 2560 with a 32 -> 31 layer compensation still
        # grows params ~1.6%, so allow a wider budget here.
        with_widen = advisor.propose(
            cfg, include_widen=True, top=20, max_param_increase=0.05
        )
        without = advisor.propose(
            cfg, include_widen=False, top=20, max_param_increase=0.05
        )
        assert any("widen h" in p.rationale for p in with_widen)
        assert not any("widen h" in p.rationale for p in without)

    def test_proposal_describe(self, advisor):
        best = advisor.best(get_model("gpt3-2.7b"))
        text = best.describe()
        assert "speedup" in text and "params" in text
