"""Tests for the trace profiler (executed ops -> modelled kernel time)."""

import numpy as np
import pytest

from repro.core.profile import TraceProfiler
from repro.errors import ExperimentError
from repro.transformer.backward import loss_and_gradients
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace


@pytest.fixture(scope="module")
def traced_forward():
    model = DecoderModel(
        vocab_size=512,
        max_seq=32,
        hidden_size=128,
        num_heads=8,
        num_layers=2,
        rng=np.random.default_rng(0),
    )
    trace = OpTrace()
    ids = np.random.default_rng(1).integers(0, 512, size=(32, 2))
    model.forward(ids, trace)
    return model, trace


class TestProfile:
    def test_covers_every_module(self, traced_forward):
        _, trace = traced_forward
        profiler = TraceProfiler("A100")
        modules = {p.module for p in profiler.profile(trace)}
        assert modules == set(trace.modules())

    def test_calls_and_flops_aggregate(self, traced_forward):
        _, trace = traced_forward
        profiles = {p.module: p for p in TraceProfiler("A100").profile(trace)}
        assert profiles["qkv_transform"].calls == 2  # one per layer
        assert profiles["logit"].calls == 1
        total_flops = sum(p.flops for p in profiles.values())
        assert total_flops == trace.flops()

    def test_sorted_by_latency(self, traced_forward):
        _, trace = traced_forward
        profiles = TraceProfiler("A100").profile(trace)
        lats = [p.latency_s for p in profiles]
        assert lats == sorted(lats, reverse=True)

    def test_total_latency_positive(self, traced_forward):
        _, trace = traced_forward
        assert TraceProfiler("A100").total_latency_s(trace) > 0

    def test_empty_trace_raises(self):
        with pytest.raises(ExperimentError):
            TraceProfiler("A100").profile(OpTrace())

    def test_table_shares_sum_to_one(self, traced_forward):
        _, trace = traced_forward
        table = TraceProfiler("A100").as_table(trace)
        assert sum(table.column("share")) == pytest.approx(1.0)

    def test_faster_gpu_profiles_faster(self, traced_forward):
        _, trace = traced_forward
        a100 = TraceProfiler("A100").total_latency_s(trace)
        h100 = TraceProfiler("H100").total_latency_s(trace)
        assert h100 < a100


class TestTrainingProfile:
    def test_backward_modules_appear(self):
        model = DecoderModel(
            vocab_size=64,
            max_seq=8,
            hidden_size=16,
            num_heads=2,
            num_layers=1,
            rng=np.random.default_rng(0),
        )
        trace = OpTrace()
        loss_and_gradients(model, np.random.default_rng(1).integers(0, 64, (8, 2)), trace)
        modules = {p.module for p in TraceProfiler("A100").profile(trace)}
        assert "qkv_transform.dgrad" in modules
        assert "mlp_h_to_4h.wgrad" in modules
