"""Tests for the Table II operator -> GEMM mapping."""

import pytest

from repro.core.config import TransformerConfig, get_model
from repro.core.gemms import (
    TransformerGemm,
    layer_gemm_flops,
    layer_gemms,
    logit_gemm,
    model_gemms,
)
from repro.errors import ParallelismError


@pytest.fixture
def cfg():
    return get_model("gpt3-2.7b")  # b=4, s=2048, h=2560, a=32


class TestLayerGemms:
    def test_classic_layer_has_six_operators(self, cfg):
        ops = layer_gemms(cfg)
        assert [op.module for op in ops] == [
            "qkv_transform",
            "attention_score",
            "attention_over_value",
            "attention_projection",
            "mlp_h_to_4h",
            "mlp_4h_to_h",
        ]

    def test_table2_shapes(self, cfg):
        shapes = {op.module: op for op in layer_gemms(cfg)}
        bs, h, a, s = 8192, 2560, 32, 2048
        assert shapes["qkv_transform"].shape_tuple() == (1, bs, h, 3 * h)
        assert shapes["attention_score"].shape_tuple() == (4 * a, s, h // a, s)
        assert shapes["attention_over_value"].shape_tuple() == (4 * a, s, s, h // a)
        assert shapes["attention_projection"].shape_tuple() == (1, bs, h, h)
        assert shapes["mlp_h_to_4h"].shape_tuple() == (1, bs, h, 4 * h)
        assert shapes["mlp_4h_to_h"].shape_tuple() == (1, bs, 4 * h, h)

    def test_tp_divides_per_gpu_shapes(self, cfg):
        sharded = cfg.with_overrides(tp_degree=4)
        shapes = {op.module: op for op in layer_gemms(sharded)}
        assert shapes["qkv_transform"].n == 3 * 2560 // 4
        assert shapes["attention_score"].batch == 4 * 32 // 4
        assert shapes["attention_projection"].k == 2560 // 4
        assert shapes["mlp_h_to_4h"].n == 4 * 2560 // 4

    def test_swiglu_layer_has_seven_operators(self):
        cfg = get_model("llama2-7b")
        mods = [op.module for op in layer_gemms(cfg)]
        assert mods[-3:] == ["mlp_gate", "mlp_up", "mlp_down"]
        assert len(mods) == 7

    def test_infeasible_tp_raises(self, cfg):
        with pytest.raises(ParallelismError):
            layer_gemms(cfg.with_overrides(tp_degree=3))

    def test_bmm_shape_conversion(self, cfg):
        score = layer_gemms(cfg)[1]
        bmm = score.bmm_shape()
        assert (bmm.batch, bmm.m, bmm.k, bmm.n) == score.shape_tuple()


class TestFlopsConsistency:
    def test_layer_gemm_flops_match_paper_formula(self, cfg):
        # GEMM flops of one layer must equal 24bsh^2 + 4bs^2h.
        from repro.core.formulas import forward_flops_per_layer

        got = layer_gemm_flops(cfg)
        expected = forward_flops_per_layer(
            cfg.microbatch, cfg.seq_len, cfg.hidden_size
        )
        assert got == expected

    def test_tp_conserves_total_flops(self, cfg):
        base = layer_gemm_flops(cfg)
        for t in (2, 4, 8):
            assert layer_gemm_flops(cfg.with_overrides(tp_degree=t)) == base

    def test_score_and_aov_equal_flops(self, cfg):
        ops = {op.module: op for op in layer_gemms(cfg)}
        assert ops["attention_score"].flops == ops["attention_over_value"].flops


class TestModelGemms:
    def test_count(self, cfg):
        assert len(model_gemms(cfg)) == 6 * cfg.num_layers + 1

    def test_logit_last(self, cfg):
        assert model_gemms(cfg)[-1].module == "logit"

    def test_logit_shape(self, cfg):
        op = logit_gemm(cfg)
        assert op.shape_tuple() == (1, 8192, 2560, 50304)
        assert not op.is_bmm
