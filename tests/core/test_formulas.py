"""Tests for the closed-form parameter/FLOP/memory formulas."""

import pytest
from hypothesis import given, strategies as st

from repro.core import formulas
from repro.errors import ConfigError


class TestParamCount:
    def test_paper_formula(self):
        h, L, v, s = 64, 3, 256, 32
        assert formulas.param_count(h, L, v, s) == (
            12 * h * h * L + 13 * h * L + (v + s) * h
        )

    def test_approx_is_leading_term(self):
        h, L = 2560, 32
        exact = formulas.param_count(h, L, 50304, 2048)
        approx = formulas.param_count_approx(h, L)
        assert approx == 12 * h * h * L
        # The embedding term (v+s)h is ~5% at 2.7B scale.
        assert approx == pytest.approx(exact, rel=0.06)

    def test_config_formula_reduces_to_paper(self):
        h, L, v, s = 64, 3, 256, 32
        assert formulas.param_count_config(
            h, L, v, s, d_ff=4 * h, mlp_matrices=2
        ) == formulas.param_count(h, L, v, s)

    def test_swiglu_variant(self):
        h, L, d = 64, 2, 160
        got = formulas.param_count_config(h, L, 256, 0, d_ff=d, mlp_matrices=3)
        per_layer = 4 * h * h + 4 * h + 3 * h * d + 4 * h
        assert got == L * per_layer + 256 * h

    def test_bad_mlp_matrices_raises(self):
        with pytest.raises(ConfigError):
            formulas.param_count_config(64, 2, 256, 32, d_ff=256, mlp_matrices=4)

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigError):
            formulas.param_count(0, 1, 1, 1)
        with pytest.raises(ConfigError):
            formulas.param_count_config(64, 2, 256, -1, d_ff=256)

    @given(
        st.integers(min_value=1, max_value=1 << 14),
        st.integers(min_value=1, max_value=128),
    )
    def test_monotone_in_h_and_L(self, h, L):
        base = formulas.param_count(h, L, 1024, 128)
        assert formulas.param_count(h + 1, L, 1024, 128) > base
        assert formulas.param_count(h, L + 1, 1024, 128) > base


class TestFlops:
    def test_paper_per_layer_identity(self):
        # 24bsh^2 (1 + s/6h) == 24bsh^2 + 4bs^2h.
        b, s, h = 4, 2048, 2560
        lhs = formulas.forward_flops_per_layer(b, s, h)
        rhs = int(24 * b * s * h * h * (1 + s / (6 * h)))
        assert lhs == rhs

    def test_general_reduces_to_paper(self):
        b, s, h = 2, 64, 32
        assert formulas.forward_flops_per_layer_general(
            b, s, h, d_ff=4 * h, mlp_matrices=2
        ) == formulas.forward_flops_per_layer(b, s, h)

    def test_model_adds_logit_gemm(self):
        b, s, h, L, v = 2, 64, 32, 3, 256
        per_layer = formulas.forward_flops_per_layer(b, s, h)
        assert formulas.forward_flops_model(b, s, h, L, v) == (
            L * per_layer + 2 * b * s * h * v
        )

    def test_training_flops_3x_forward(self):
        h, L, s = 64, 2, 128
        fwd_per_token = formulas.forward_flops_per_layer(1, s, h) * L // s
        assert formulas.training_flops_per_token(h, L, s) == 3 * fwd_per_token


class TestMemory:
    def test_weight_memory(self):
        assert formulas.weight_memory_bytes(1000, 2) == 2000

    def test_kv_cache(self):
        assert formulas.kv_cache_bytes(2, 128, 64, 4) == 2 * 2 * 128 * 64 * 4 * 2

    def test_activation_memory_positive_and_scales(self):
        a = formulas.activation_memory_bytes(1, 128, 64, 4)
        b = formulas.activation_memory_bytes(2, 128, 64, 4)
        assert b == 2 * a > 0

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigError):
            formulas.kv_cache_bytes(0, 128, 64, 4)
