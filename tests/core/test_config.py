"""Tests for TransformerConfig and the model-preset registry."""

import numpy as np
import pytest

from repro.core.config import TransformerConfig, get_model, list_models
from repro.errors import ConfigError
from repro.transformer.model import DecoderModel


class TestValidation:
    def test_h_divisible_by_a_required(self):
        with pytest.raises(ConfigError):
            TransformerConfig(name="x", hidden_size=100, num_heads=3, num_layers=1)

    def test_positive_dims_required(self):
        with pytest.raises(ConfigError):
            TransformerConfig(name="x", hidden_size=0, num_heads=1, num_layers=1)
        with pytest.raises(ConfigError):
            TransformerConfig(name="x", hidden_size=64, num_heads=1, num_layers=-1)

    def test_non_int_rejected(self):
        with pytest.raises(ConfigError):
            TransformerConfig(name="x", hidden_size=64.0, num_heads=1, num_layers=1)

    def test_unknown_mlp_kind_rejected(self):
        with pytest.raises(ConfigError):
            TransformerConfig(
                name="x", hidden_size=64, num_heads=1, num_layers=1, mlp_kind="moe"
            )


class TestDerived:
    def test_head_dim_and_pow2(self):
        cfg = get_model("gpt3-2.7b")
        assert cfg.head_dim == 80
        assert cfg.head_dim_pow2 == 16

    def test_d_ff_classic_default(self, medium_config):
        assert medium_config.d_ff == 4 * medium_config.hidden_size
        assert medium_config.mlp_matrices == 2

    def test_d_ff_swiglu_default(self):
        cfg = TransformerConfig(
            name="x", hidden_size=48, num_heads=4, num_layers=1, mlp_kind="swiglu"
        )
        assert cfg.d_ff == 128
        assert cfg.mlp_matrices == 3

    def test_d_ff_override(self):
        cfg = TransformerConfig(
            name="x",
            hidden_size=48,
            num_heads=4,
            num_layers=1,
            mlp_kind="swiglu",
            intermediate_size=160,
        )
        assert cfg.d_ff == 160

    def test_tokens_per_microbatch(self, medium_config):
        assert medium_config.tokens_per_microbatch == 4 * 2048

    def test_with_overrides_star_suffix(self, medium_config):
        alt = medium_config.with_overrides(num_heads=32)
        assert alt.name == medium_config.name + "*"
        assert alt.num_heads == 32
        assert medium_config.num_heads == 16

    def test_describe_mentions_key_dims(self, medium_config):
        text = medium_config.describe()
        assert "h=2048" in text and "h/a=128" in text


class TestParamCount:
    def test_matches_numpy_model(self, small_config):
        cfg = small_config
        model = DecoderModel(
            vocab_size=cfg.vocab_size,
            max_seq=cfg.seq_len,
            hidden_size=cfg.hidden_size,
            num_heads=cfg.num_heads,
            num_layers=cfg.num_layers,
            rng=np.random.default_rng(0),
        )
        # cfg.param_count excludes the final norm, like the paper.
        assert cfg.param_count() == model.param_count(include_final_norm=False)

    def test_swiglu_param_count_matches_numpy_model(self):
        cfg = TransformerConfig(
            name="x",
            hidden_size=48,
            num_heads=4,
            num_layers=2,
            vocab_size=96,
            seq_len=16,
            mlp_kind="swiglu",
            intermediate_size=128,
        )
        model = DecoderModel(
            vocab_size=96,
            max_seq=16,
            hidden_size=48,
            num_heads=4,
            num_layers=2,
            mlp_kind="swiglu",
            intermediate_size=128,
        )
        # The NumPy classic block carries biases the SwiGLU one doesn't;
        # the config formula accounts for that too.
        assert cfg.param_count() == model.param_count(include_final_norm=False)

    def test_gpt3_2_7b_is_about_2_7b(self):
        assert get_model("gpt3-2.7b").param_count() == pytest.approx(2.7e9, rel=0.05)

    def test_c1_c2_params_equal_default(self):
        # The whole point of Fig 1: equal parameters, different speed.
        base = get_model("gpt3-2.7b").param_count()
        assert get_model("c1").param_count() == base
        assert get_model("c2").param_count() == base

    def test_wide_variant_doubles_params(self):
        # Sec VI-B: "increasing the hidden dimension to 4096 doubles the
        # number of parameters to 6.7 billion".
        wide = get_model("gpt3-2.7b-wide").param_count()
        assert wide == pytest.approx(2 * get_model("gpt3-2.7b").param_count(), rel=0.3)
        assert wide == pytest.approx(6.7e9, rel=0.05)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_model("GPT3-2.7B").name == "gpt3-2.7b"

    def test_aliases(self):
        assert get_model("gpt3-2.7b-c2").name == "c2"

    def test_unknown_raises(self):
        with pytest.raises(ConfigError, match="known:"):
            get_model("gpt5")

    def test_override_via_get_model(self):
        cfg = get_model("gpt3-2.7b", microbatch=8)
        assert cfg.microbatch == 8
        assert cfg.name == "gpt3-2.7b"

    def test_list_sorted_by_params(self):
        models = list_models()
        params = [m.param_count() for m in models]
        assert params == sorted(params)

    def test_pythia_suite_registered(self):
        for name in ("pythia-70m", "pythia-410m", "pythia-1b", "pythia-12b"):
            assert get_model(name).positional == "rotary"

    def test_pythia_off_trend_shapes(self):
        # The Fig 13 mechanism is in the published shapes themselves.
        p410 = get_model("pythia-410m")
        p1b = get_model("pythia-1b")
        assert p410.num_layers > p1b.num_layers
        assert p410.num_heads > p1b.num_heads
        assert p410.hidden_size < p1b.hidden_size

    def test_llama2_swiglu_sizes(self):
        assert get_model("llama2-7b").d_ff == 11008
        assert get_model("llama2-70b").d_ff == 28672

    def test_passthrough(self, medium_config):
        assert get_model(medium_config) is medium_config
