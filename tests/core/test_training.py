"""Tests for the training-step latency model."""

import pytest

from repro.core.config import get_model
from repro.core.gemms import backward_gemms_for, layer_gemms, training_gemms
from repro.core.training import TrainingStepModel
from repro.errors import ConfigError
from repro.parallelism.comm import CommModel


@pytest.fixture(scope="module")
def model():
    return TrainingStepModel("A100")


@pytest.fixture(scope="module")
def cfg():
    return get_model("gpt3-2.7b")


class TestBackwardGemms:
    def test_shapes_are_transposes(self):
        op = layer_gemms(get_model("gpt3-2.7b"))[0]  # QKV (bs, h)x(h, 3h)
        dgrad, wgrad = backward_gemms_for(op)
        assert (dgrad.m, dgrad.k, dgrad.n) == (op.m, op.n, op.k)
        assert (wgrad.m, wgrad.k, wgrad.n) == (op.k, op.m, op.n)

    def test_equal_flops(self):
        for op in layer_gemms(get_model("gpt3-2.7b")):
            for bop in backward_gemms_for(op):
                assert bop.flops == op.flops

    def test_training_gemms_3x_count_and_flops(self, cfg):
        fwd_ops = layer_gemms(cfg) * cfg.num_layers
        train_ops = training_gemms(cfg)
        assert len(train_ops) == 3 * (len(fwd_ops) + 1)
        fwd_flops = sum(op.flops for op in fwd_ops)
        train_flops = sum(op.flops for op in train_ops)
        logit_flops = train_ops[-3].flops
        assert train_flops == 3 * (fwd_flops + logit_flops)


class TestStep:
    def test_components_positive(self, model, cfg):
        step = model.step(cfg)
        assert step.forward_s > 0
        assert step.backward_s > 0
        assert step.optimizer_s > 0
        assert step.allreduce_s == 0.0
        assert step.total_s == pytest.approx(
            step.forward_s + step.backward_s + step.optimizer_s
        )

    def test_backward_roughly_2x_forward(self, model, cfg):
        step = model.step(cfg)
        assert 1.5 <= step.backward_to_forward_ratio <= 2.8

    def test_grad_accumulation_scales_compute_not_optimizer(self, model, cfg):
        one = model.step(cfg, grad_accumulation=1)
        four = model.step(cfg, grad_accumulation=4)
        assert four.forward_s == pytest.approx(4 * one.forward_s)
        assert four.optimizer_s == pytest.approx(one.optimizer_s)
        assert four.tokens == 4 * one.tokens

    def test_data_parallel_adds_allreduce(self, model, cfg):
        dp = model.step(cfg, data_parallel=8, comm=CommModel(bw_bytes_s=300e9))
        assert dp.allreduce_s > 0

    def test_invalid_args_raise(self, model, cfg):
        with pytest.raises(ConfigError):
            model.step(cfg, grad_accumulation=0)

    def test_tflops_below_peak(self, model, cfg, a100):
        step = model.step(cfg)
        assert 0 < step.tflops < a100.matrix_peak_tflops(model.dtype)


class TestTrainingShapeSensitivity:
    """The 'trained almost 20% faster' claim, end-to-end."""

    def test_retuned_27b_trains_faster(self, model, cfg):
        retuned = cfg.with_overrides(num_heads=20)
        speedup = model.speedup(cfg, retuned)
        # Paper: ~1.18x; our band mirrors the forward-pass one.
        assert 1.08 <= speedup <= 1.6

    def test_c1_trains_slower(self, model, cfg):
        assert model.speedup(cfg, get_model("c1")) < 1.0

    def test_alignment_hits_backward_too(self, model):
        # The backward GEMMs inherit the forward's misalignment: the
        # h/a=80 shape's four attention backward GEMMs are jointly
        # slower than h/a=64's at equal total FLOPs.
        base = get_model("gpt3-2.7b")
        aligned = base.with_overrides(num_heads=40)  # h/a = 64
        bwd_base = model.backward_breakdown(base)
        bwd_aligned = model.backward_breakdown(aligned)

        def attention_bwd_s(bd):
            return sum(
                v
                for k, v in bd.components.items()
                if k.startswith(("attention_score", "attention_over_value"))
            )

        assert attention_bwd_s(bwd_aligned) < attention_bwd_s(bwd_base)

    def test_flash_training_faster_than_unfused(self, cfg):
        plain = TrainingStepModel("A100").step(cfg)
        flash = TrainingStepModel("A100", flash_attention=True).step(cfg)
        assert flash.total_s < plain.total_s
