"""Tests for the latency-proportion analyses (Figs 2 and 11, Sec I)."""

import pytest

from repro.core.breakdown import (
    LARGE_CONFIG,
    MEDIUM_CONFIG,
    component_proportions,
    dominant_gemms,
    gemm_proportions,
    gemm_share,
    gemm_share_sweep,
)


class TestComponentProportions:
    def test_sum_to_one(self):
        props = component_proportions(MEDIUM_CONFIG)
        assert sum(props.values()) == pytest.approx(1.0)

    def test_mlp_among_largest(self):
        props = component_proportions(MEDIUM_CONFIG)
        top3 = sorted(props, key=lambda k: -props[k])[:3]
        assert "mlp_h_to_4h" in top3 or "mlp_4h_to_h" in top3


class TestGemmShare:
    def test_medium_in_paper_band(self):
        # Paper: 68.3% for medium models.
        assert 0.55 <= gemm_share(MEDIUM_CONFIG) <= 0.80

    def test_large_in_paper_band(self):
        # Paper: 94.9% for large models; our pointwise model keeps a
        # slightly fatter non-GEMM remainder.
        assert 0.80 <= gemm_share(LARGE_CONFIG) <= 0.99

    def test_share_grows_with_size(self):
        assert gemm_share(LARGE_CONFIG) > gemm_share(MEDIUM_CONFIG)

    def test_sweep_monotone_overall(self):
        rows = gemm_share_sweep([1024, 4096, 12288])
        shares = [share for _, share in rows]
        assert shares[0] < shares[-1]

    def test_sweep_returns_requested_points(self):
        rows = gemm_share_sweep([2048, 4096])
        assert [h for h, _ in rows] == [2048, 4096]


class TestGemmProportions:
    def test_fractions_of_gemm_time_sum_to_one(self):
        props = gemm_proportions(LARGE_CONFIG)
        assert sum(props.values()) == pytest.approx(1.0)

    def test_qkv_and_mlp_dominate_large_models(self):
        # Fig 11 / Sec VI-A.
        props = gemm_proportions(LARGE_CONFIG)
        dominant = (
            props["qkv_transform"] + props["mlp_h_to_4h"] + props["mlp_4h_to_h"]
        )
        assert dominant > 0.55

    def test_aov_smallest_in_large_models(self):
        props = gemm_proportions(LARGE_CONFIG)
        assert props["attention_over_value"] == min(props.values())

    def test_dominant_gemms_helper(self):
        top = dominant_gemms(LARGE_CONFIG, top=3)
        assert len(top) == 3
        assert "attention_over_value" not in top
