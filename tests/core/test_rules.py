"""Tests for the Sec VI-B sizing-rule diagnostics engine."""

import pytest

from repro.core.config import TransformerConfig, get_model
from repro.core.rules import (
    Diagnostic,
    RuleEngine,
    Severity,
    rule_head_dim,
    rule_heads_per_tp,
    rule_hidden_per_tp,
    rule_microbatch,
    rule_pipeline_divisibility,
    rule_tokens_pow2,
    rule_tp_minimal,
    rule_vocab_divisible,
    rule_wave_quantization,
)
from repro.gpu.specs import get_gpu


@pytest.fixture(scope="module")
def gpu():
    return get_gpu("A100")


def only(diags):
    assert len(diags) == 1
    return diags[0]


class TestVocabRule:
    def test_aligned_ok(self, gpu):
        cfg = get_model("gpt3-2.7b")  # v = 50304
        assert only(rule_vocab_divisible(cfg, gpu)).severity == Severity.OK

    def test_gpt2_vocab_warns_and_suggests_50304(self, gpu):
        cfg = get_model("gpt-neo-2.7b")  # v = 50257
        diag = only(rule_vocab_divisible(cfg, gpu))
        assert diag.severity == Severity.WARNING
        assert "50304" in diag.suggestion


class TestHeadDimRule:
    def test_aligned_64_ok(self, gpu):
        cfg = get_model("c2")  # h/a = 64
        assert only(rule_head_dim(cfg, gpu)).severity == Severity.OK

    def test_gpt3_2_7b_warns(self, gpu):
        # The paper's marquee example: h/a = 80, pow2 = 16.
        cfg = get_model("gpt3-2.7b")
        diag = only(rule_head_dim(cfg, gpu))
        assert diag.severity == Severity.WARNING
        assert "80" in diag.message

    def test_sub_grain_is_error(self, gpu):
        cfg = TransformerConfig(name="x", hidden_size=132, num_heads=33, num_layers=1)
        assert only(rule_head_dim(cfg, gpu)).severity == Severity.ERROR


class TestTPRules:
    def test_h_over_t_pow2(self, gpu):
        cfg = get_model("gpt3-2.7b", tp_degree=8)  # 2560/8 = 320 = 64*5
        assert only(rule_hidden_per_tp(cfg, gpu)).severity == Severity.OK

    def test_h_not_divisible_by_t_is_error(self, gpu):
        cfg = TransformerConfig(
            name="x", hidden_size=2560, num_heads=32, num_layers=1, tp_degree=6
        )
        assert only(rule_hidden_per_tp(cfg, gpu)).severity == Severity.ERROR

    def test_ba_over_t_integer(self, gpu):
        ok = get_model("gpt3-2.7b", tp_degree=4)
        assert only(rule_heads_per_tp(ok, gpu)).severity == Severity.OK

    def test_ba_over_t_fractional_is_error(self, gpu):
        cfg = TransformerConfig(
            name="x",
            hidden_size=25,
            num_heads=5,
            num_layers=1,
            microbatch=1,
            tp_degree=3,
        )
        assert only(rule_heads_per_tp(cfg, gpu)).severity == Severity.ERROR

    def test_tp_minimal_info(self, gpu):
        assert only(
            rule_tp_minimal(get_model("gpt3-2.7b", tp_degree=8), gpu)
        ).severity == Severity.INFO
        assert only(
            rule_tp_minimal(get_model("gpt3-2.7b"), gpu)
        ).severity == Severity.OK


class TestOtherRules:
    def test_tokens_pow2_ok_for_pow2_seq(self, gpu):
        assert only(rule_tokens_pow2(get_model("gpt3-2.7b"), gpu)).severity == Severity.OK

    def test_odd_microbatch_fine_with_pow2_seq(self, gpu):
        # Sec VI-B: b itself needs no divisibility because s provides it.
        cfg = get_model("gpt3-2.7b", microbatch=3)
        assert only(rule_tokens_pow2(cfg, gpu)).severity == Severity.OK

    def test_small_microbatch_info(self, gpu):
        cfg = get_model("gpt3-2.7b", microbatch=1)
        assert only(rule_microbatch(cfg, gpu)).severity == Severity.INFO

    def test_pipeline_divisibility(self, gpu):
        cfg = get_model("gpt3-2.7b")  # L = 32
        ok = only(rule_pipeline_divisibility(cfg, gpu, pipeline_stages=8))
        assert ok.severity == Severity.OK
        warn = only(rule_pipeline_divisibility(cfg, gpu, pipeline_stages=5))
        assert warn.severity == Severity.WARNING

    def test_wave_quantization_reports_dense_gemms(self, gpu):
        diags = rule_wave_quantization(get_model("gpt3-2.7b"), gpu)
        # 4 dense layer GEMMs + logit; BMMs skipped.
        assert len(diags) == 5
        assert all(d.rule == "wave_quantization" for d in diags)


class TestEngine:
    def test_check_sorted_worst_first(self):
        engine = RuleEngine("A100")
        diags = engine.check(get_model("gpt-neo-2.7b"))
        sev = [d.severity for d in diags]
        assert sev == sorted(sev, reverse=True)

    def test_worst_severity(self):
        engine = RuleEngine("A100")
        assert engine.worst(get_model("gpt3-2.7b")) == Severity.WARNING
        assert engine.worst(get_model("c2")) <= Severity.INFO

    def test_report_contains_config_and_gpu(self):
        engine = RuleEngine("V100")
        text = engine.report(get_model("gpt3-2.7b"))
        assert "V100" in text and "gpt3-2.7b" in text

    def test_diagnostic_str(self):
        d = Diagnostic("r", Severity.WARNING, "msg", suggestion="fix it")
        assert "WARNING" in str(d) and "fix it" in str(d)
