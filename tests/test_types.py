"""Tests for repro.types: dtypes, time estimates, throughput math."""

import pytest

from repro.types import DType, TimeEstimate, teraflops


class TestDType:
    def test_bytes(self):
        assert DType.FP16.bytes == 2
        assert DType.BF16.bytes == 2
        assert DType.FP32.bytes == 4
        assert DType.FP64.bytes == 8
        assert DType.INT8.bytes == 1

    def test_bits(self):
        assert DType.FP16.bits == 16
        assert DType.FP32.bits == 32

    def test_is_half(self):
        assert DType.FP16.is_half
        assert DType.BF16.is_half
        assert not DType.FP32.is_half
        assert not DType.INT8.is_half

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("fp16", DType.FP16),
            ("FP16", DType.FP16),
            ("half", DType.FP16),
            ("float16", DType.FP16),
            ("bfloat16", DType.BF16),
            ("bf16", DType.BF16),
            ("float", DType.FP32),
            ("single", DType.FP32),
            ("float32", DType.FP32),
            ("double", DType.FP64),
            ("float64", DType.FP64),
            ("int8", DType.INT8),
            ("tf32", DType.TF32),
            ("  fp16  ", DType.FP16),
        ],
    )
    def test_parse_strings(self, name, expected):
        assert DType.parse(name) is expected

    def test_parse_passthrough(self):
        assert DType.parse(DType.BF16) is DType.BF16

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            DType.parse("fp13")


class TestTimeEstimate:
    def test_bound_compute(self):
        t = TimeEstimate(total_s=2.0, compute_s=1.5, memory_s=0.5)
        assert t.bound == "compute"

    def test_bound_memory(self):
        t = TimeEstimate(total_s=2.0, compute_s=0.5, memory_s=1.5)
        assert t.bound == "memory"

    def test_add_accumulates_fields(self):
        a = TimeEstimate(1.0, 0.6, 0.4, 0.1)
        b = TimeEstimate(2.0, 1.0, 1.0, 0.2)
        c = a + b
        assert c.total_s == pytest.approx(3.0)
        assert c.compute_s == pytest.approx(1.6)
        assert c.memory_s == pytest.approx(1.4)
        assert c.overhead_s == pytest.approx(0.3)


class TestTeraflops:
    def test_conversion(self):
        assert teraflops(2e12, 1.0) == pytest.approx(2.0)
        assert teraflops(1e12, 0.5) == pytest.approx(2.0)

    def test_nonpositive_duration_raises(self):
        with pytest.raises(ValueError):
            teraflops(1e12, 0.0)
        with pytest.raises(ValueError):
            teraflops(1e12, -1.0)
