"""Tests for calibration: fitters must recover generating constants."""

import pytest

from repro.calibration.fit import (
    MeasuredGemm,
    fit_bw_efficiency,
    fit_efficiency_floor,
    synthetic_samples,
)
from repro.errors import CalibrationError
from repro.gpu import alignment
from repro.gpu.gemm_model import GemmModel


class TestMeasuredGemm:
    def test_valid(self):
        m = MeasuredGemm(m=128, n=128, k=128, latency_s=1e-5)
        assert m.batch == 1

    def test_invalid_raises(self):
        with pytest.raises(CalibrationError):
            MeasuredGemm(m=0, n=128, k=128, latency_s=1e-5)
        with pytest.raises(CalibrationError):
            MeasuredGemm(m=128, n=128, k=128, latency_s=0.0)


class TestBwFit:
    def test_recovers_generating_value(self):
        # Generate 'measurements' from a model with bw_eff = 0.70 and
        # check the fitter finds it.
        target = 0.70
        gen = GemmModel("A100", bw_efficiency=target)
        samples = [
            MeasuredGemm(m, n, k, gen.latency(m, n, k))
            for m, n, k in [(2048, 2048, 64), (4096, 4096, 128), (2048, 2048, 80)]
        ]
        result = fit_bw_efficiency(samples)
        assert result.value == pytest.approx(target, abs=0.02)
        assert result.rms_rel_error < 0.05
        assert result.samples == 3

    def test_too_few_samples_raises(self):
        with pytest.raises(CalibrationError):
            fit_bw_efficiency([MeasuredGemm(128, 128, 128, 1e-5)])


class TestFloorFit:
    def test_runs_and_restores_global(self):
        original = alignment._EFF_AT_MIN
        samples = synthetic_samples()
        result = fit_efficiency_floor(samples)
        assert alignment._EFF_AT_MIN == original
        assert 0.2 <= result.value <= 0.95

    def test_self_consistent_fit_near_current_value(self):
        # Fitting against the model's own outputs should land near the
        # current constant.
        samples = synthetic_samples()
        result = fit_efficiency_floor(samples)
        assert result.value == pytest.approx(alignment._EFF_AT_MIN, abs=0.1)
        assert result.rms_rel_error < 0.05

    def test_too_few_samples_raises(self):
        with pytest.raises(CalibrationError):
            fit_efficiency_floor(synthetic_samples()[:1])


class TestSyntheticSamples:
    def test_deterministic_without_noise(self):
        a = synthetic_samples(noise=0.0)
        b = synthetic_samples(noise=0.0)
        assert [s.latency_s for s in a] == [s.latency_s for s in b]

    def test_noise_perturbs(self):
        a = synthetic_samples(noise=0.0)
        b = synthetic_samples(noise=0.1, seed=7)
        assert [s.latency_s for s in a] != [s.latency_s for s in b]

    def test_noisy_fit_still_converges(self):
        result = fit_bw_efficiency(synthetic_samples(noise=0.03, seed=11))
        assert 0.4 <= result.value <= 1.0


class TestRunCalibration:
    def _journal(self, tmp_path, resume=False):
        from repro.resilience.checkpoint import SweepJournal

        return SweepJournal(
            tmp_path / "cal.jsonl", sweep_id="calibrate", resume=resume
        )

    def test_runs_all_fitters(self):
        from repro.calibration.fit import run_calibration

        results = run_calibration(synthetic_samples())
        assert [r.name for r in results] == [
            "bw_efficiency", "alignment_efficiency_floor",
        ]

    def test_resume_skips_completed_fits(self, tmp_path):
        from repro.calibration.fit import run_calibration

        samples = synthetic_samples()
        journal = self._journal(tmp_path)
        first = run_calibration(samples, journal=journal)
        assert journal.completed() == {
            "bw_efficiency", "alignment_efficiency_floor",
        }

        # Resume: both fits are reconstructed from the checkpoint, so
        # the fitters never run — even poisoned samples don't matter.
        resumed = self._journal(tmp_path, resume=True)
        second = run_calibration([], journal=resumed)
        assert [r.name for r in second] == [r.name for r in first]
        assert [r.value for r in second] == [r.value for r in first]
        assert [r.samples for r in second] == [r.samples for r in first]

    def test_partial_journal_runs_only_missing_fit(self, tmp_path):
        from repro.calibration.fit import run_calibration

        samples = synthetic_samples()
        journal = self._journal(tmp_path)
        journal.record(
            "bw_efficiency", "ok",
            payload={"value": 0.5, "rms_rel_error": 0.01, "samples": 3},
        )
        resumed = self._journal(tmp_path, resume=True)
        results = run_calibration(samples, journal=resumed)
        by_name = {r.name: r for r in results}
        assert by_name["bw_efficiency"].value == 0.5  # restored, not re-fit
        assert resumed.completed() == {
            "bw_efficiency", "alignment_efficiency_floor",
        }

    def test_injected_fault_surfaces_from_fit(self, tmp_path):
        from repro.calibration.fit import run_calibration
        from repro.errors import FaultInjectionError
        from repro.resilience import FaultPlan, FaultSpec, injected

        plan = FaultPlan([
            FaultSpec(site="calibration.fit", match="bw_efficiency"),
        ])
        with injected(plan):
            with pytest.raises(FaultInjectionError):
                run_calibration(synthetic_samples())
