"""Tests for the paper anchor records."""

import pytest

from repro.calibration.data import PAPER_ANCHORS, Anchor, get_anchor


class TestAnchors:
    def test_paper_values_inside_bands(self):
        for anchor in PAPER_ANCHORS:
            assert anchor.lo <= anchor.paper_value <= anchor.hi, anchor.key

    def test_check_inside(self):
        anchor = Anchor("k", "d", 1.0, 0.5, 1.5, "s")
        assert anchor.check(1.2)
        assert not anchor.check(1.6)
        assert not anchor.check(0.4)

    def test_expected_keys_present(self):
        keys = {a.key for a in PAPER_ANCHORS}
        assert {
            "gemm_share_medium",
            "gemm_share_large",
            "gpt3_27b_retune_speedup",
            "max_shape_speedup",
            "h100_a100_ratio",
        } <= keys

    def test_get_anchor(self):
        assert get_anchor("gemm_share_medium").paper_value == pytest.approx(0.683)
        with pytest.raises(KeyError):
            get_anchor("nope")

    def test_sources_cited(self):
        assert all(a.source for a in PAPER_ANCHORS)
